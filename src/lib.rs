//! Facade crate for the Chameleon reproduction workspace.
//!
//! Re-exports every member crate under a short module name so examples and
//! downstream users can depend on a single package:
//!
//! ```
//! use chameleon_repro::tensor::Prng;
//!
//! let mut rng = Prng::new(1);
//! let _ = rng.next_u64();
//! ```
//!
//! See the workspace `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-module map.

#![forbid(unsafe_code)]

pub use chameleon_core as core;
pub use chameleon_faults as faults;
pub use chameleon_fleet as fleet;
pub use chameleon_hw as hw;
pub use chameleon_nn as nn;
pub use chameleon_replay as replay;
pub use chameleon_runtime as runtime;
pub use chameleon_serve as serve;
pub use chameleon_simtest as simtest;
pub use chameleon_stream as stream;
pub use chameleon_tensor as tensor;
