//! Method shootout: every continual-learning strategy in the workspace on
//! one synthetic benchmark, printed as a live leaderboard — a fast sanity
//! check of the Table I orderings (the full table runs via
//! `chameleon-bench`).
//!
//! ```sh
//! cargo run --release --example method_shootout [core50|openloris]
//! ```

use std::time::Instant;

use chameleon_repro::core::{
    Chameleon, ChameleonConfig, Der, DerConfig, Er, EwcConfig, EwcPlusPlus, Finetune, Gss,
    GssConfig, Joint, JointConfig, LatentReplay, Lwf, LwfConfig, ModelConfig, Slda, SldaConfig,
    Strategy, Trainer,
};
use chameleon_repro::stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn main() {
    let spec = match std::env::args().nth(1).as_deref() {
        Some("openloris") => DatasetSpec::openloris(),
        _ => DatasetSpec::core50(),
    };
    let scenario = DomainIlScenario::generate(&spec, 99);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    println!(
        "shootout on {} ({} classes × {} domains, single seed)\n",
        spec.name, spec.num_classes, spec.num_domains
    );

    let contestants: Vec<(&str, Box<dyn Strategy>)> = vec![
        (
            "JOINT (upper bound)",
            Box::new(Joint::new(&model, JointConfig::default(), 1)),
        ),
        (
            "Finetuning (lower bound)",
            Box::new(Finetune::new(&model, 1)),
        ),
        (
            "EWC++",
            Box::new(EwcPlusPlus::new(&model, EwcConfig::default(), 1)),
        ),
        ("LwF", Box::new(Lwf::new(&model, LwfConfig::default(), 1))),
        (
            "SLDA",
            Box::new(Slda::new(&model, SldaConfig::default(), 1)),
        ),
        (
            "GSS (500)",
            Box::new(Gss::new(&model, GssConfig::new(500), 1)),
        ),
        ("ER (500)", Box::new(Er::new(&model, 500, 1))),
        (
            "DER (500)",
            Box::new(Der::new(&model, DerConfig::new(500), 1)),
        ),
        (
            "Latent Replay (500)",
            Box::new(LatentReplay::new(&model, 500, 1)),
        ),
        (
            "Chameleon (10+100)",
            Box::new(Chameleon::new(&model, ChameleonConfig::default(), 1)),
        ),
    ];

    let mut results = Vec::new();
    for (name, mut strategy) in contestants {
        let started = Instant::now();
        let report = trainer.run(&scenario, strategy.as_mut(), 1);
        println!(
            "  {:<26} Acc_all {:5.1} %   memory {:>6.1} MB   ({:.1}s)",
            name,
            report.acc_all,
            report.memory_overhead_mb,
            started.elapsed().as_secs_f32()
        );
        results.push((name, report.acc_all, report.memory_overhead_mb));
    }

    results.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite accuracies"));
    println!("\nleaderboard (accuracy / memory):");
    for (rank, (name, acc, mb)) in results.iter().enumerate() {
        println!(
            "  {}. {:<26} {:5.1} %  @ {:>6.1} MB",
            rank + 1,
            name,
            acc,
            mb
        );
    }
}
