//! Quickstart: train Chameleon on a small synthetic Domain-IL stream and
//! print its accuracy against the naive finetuning lower bound.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chameleon_repro::core::{Chameleon, ChameleonConfig, Finetune, ModelConfig, Trainer};
use chameleon_repro::stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn main() {
    // A miniature CORe50-style benchmark: 10 classes observed under 4
    // successive domains (backgrounds/lighting), one pass, batch size 10.
    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 42);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    println!(
        "dataset: {} — {} classes × {} domains, {} training samples",
        spec.name,
        spec.num_classes,
        spec.num_domains,
        spec.train_len()
    );

    // Chameleon: 10-sample on-chip short-term store + 60-sample off-chip
    // long-term store, the paper's dual-memory replay.
    let config = ChameleonConfig {
        long_term_capacity: 60,
        ..ChameleonConfig::default()
    };
    let mut chameleon = Chameleon::new(&model, config, 1);
    let report = trainer.run(&scenario, &mut chameleon, 1);
    println!(
        "Chameleon   : Acc_all {:5.1} %  (memory {:.1} MB nominal)",
        report.acc_all, report.memory_overhead_mb
    );
    println!(
        "  per-domain accuracy: {:?}",
        report
            .per_domain
            .iter()
            .map(|a| format!("{a:.0}"))
            .collect::<Vec<_>>()
    );

    // The lower bound: single-pass finetuning with no replay forgets
    // earlier domains.
    let mut finetune = Finetune::new(&model, 1);
    let ft = trainer.run(&scenario, &mut finetune, 1);
    println!("Finetuning  : Acc_all {:5.1} %  (no replay)", ft.acc_all);
    println!(
        "  per-domain accuracy: {:?}",
        ft.per_domain
            .iter()
            .map(|a| format!("{a:.0}"))
            .collect::<Vec<_>>()
    );

    println!(
        "\nreplay advantage: {:+.1} accuracy points",
        report.acc_all - ft.acc_all
    );
}
