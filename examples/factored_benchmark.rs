//! Factored benchmark: run Chameleon on the OpenLORIS scenario with its
//! real environmental-factor structure (illumination / occlusion / clutter
//! / pixel-size at three levels) and report which conditions are hardest,
//! plus the backward-transfer (forgetting) score.
//!
//! ```sh
//! cargo run --release --example factored_benchmark
//! ```

use chameleon_repro::core::{backward_transfer, Chameleon, ChameleonConfig, ModelConfig, Trainer};
use chameleon_repro::stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn main() {
    let spec = DatasetSpec::openloris_factored();
    let scenario = DomainIlScenario::generate(&spec, 21);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());

    println!(
        "dataset: {} — {} classes, {} factored domains:",
        spec.name, spec.num_classes, spec.num_domains
    );
    for (domain, factor) in spec.factors.iter().enumerate() {
        println!("  domain {domain:2}: {factor}");
    }

    let mut learner = Chameleon::new(&model, ChameleonConfig::default(), 3);
    println!("\ntraining single-pass with per-domain evaluation…");
    let snapshots = trainer.run_with_domain_evals(&scenario, &mut learner, 3);
    let last = snapshots.last().expect("at least one domain");

    println!("\nfinal Acc_all: {:.1} %", last.acc_all);
    println!(
        "backward transfer (BWT): {:+.1} points",
        backward_transfer(&snapshots)
    );

    println!("\nper-condition accuracy at the end of training:");
    let mut ranked: Vec<(String, f32)> = spec
        .factors
        .iter()
        .enumerate()
        .map(|(d, f)| (f.to_string(), last.per_domain[d]))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (condition, acc) in &ranked {
        let bar = "#".repeat((acc / 4.0) as usize);
        println!("  {condition:<16} {acc:5.1} %  {bar}");
    }
    println!(
        "\nhardest condition: {} — heavy corruption of the object evidence is\n\
         exactly where replay quality matters most.",
        ranked.first().map(|(c, _)| c.as_str()).unwrap_or("?")
    );
}
