//! Edge deployment: record a strategy's operation/traffic trace at the
//! paper's hardware configuration (batch size one) and price it on the
//! three device models — a what-if tool for choosing a platform.
//!
//! ```sh
//! cargo run --release --example edge_deployment
//! ```

use chameleon_repro::core::{
    Chameleon, ChameleonConfig, LatentReplay, ModelConfig, Slda, SldaConfig, Strategy,
};
use chameleon_repro::hw::{
    Device, JetsonNano, NominalModel, SystolicAccelerator, Workload, Zcu102,
};
use chameleon_repro::stream::{DatasetSpec, DomainIlScenario, StreamConfig};

fn trace_workload(mut strategy: Box<dyn Strategy>, scenario: &DomainIlScenario) -> Workload {
    let stream = StreamConfig {
        batch_size: 1,
        ..StreamConfig::default()
    };
    for batch in scenario.domain_stream(0, &stream, 5) {
        strategy.observe(&batch);
    }
    Workload::from_trace(
        &strategy.trace().per_input().expect("observed inputs"),
        &NominalModel::mobilenet_v1(),
    )
}

fn main() {
    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 9);
    let model = ModelConfig::for_spec(&spec);

    let candidates: Vec<(&str, Box<dyn Strategy>)> = vec![
        (
            "Chameleon (Ms=10, Ml=100)",
            Box::new(Chameleon::new(&model, ChameleonConfig::default(), 1)),
        ),
        (
            "Latent Replay (1500)",
            Box::new(LatentReplay::new(&model, 1500, 1)),
        ),
        (
            "SLDA",
            Box::new(Slda::new(&model, SldaConfig::default(), 1)),
        ),
    ];

    let jetson = JetsonNano::new();
    let fpga = Zcu102::new();
    let tpu = SystolicAccelerator::new();

    println!("per-image training cost estimates (batch size 1):\n");
    for (name, strategy) in candidates {
        let w = trace_workload(strategy, &scenario);
        println!("{name}");
        println!(
            "  workload: {:.2} GMAC/image, {:.0} KB off-chip replay, {:.0} KB on-chip",
            w.total_macs() / 1e9,
            w.offchip_replay_bytes / 1e3,
            w.onchip_bytes / 1e3
        );
        for device in [&jetson as &dyn Device, &fpga, &tpu] {
            let cost = device.cost(&w);
            println!(
                "  {:<26} {:7.1} ms   {:6.3} J   (replay traffic {:.0} % of latency)",
                device.name(),
                cost.latency_ms,
                cost.energy_j,
                100.0 * cost.replay_traffic_fraction()
            );
        }
        println!();
    }

    let usage = fpga.resources();
    println!(
        "ZCU102 floorplan: {} DSP ({:.0} %), {} BRAM ({:.0} %), {} LUT ({:.0} %) — the\n\
         320 KB short-term store is the only replay state that fits on-chip,\n\
         which is exactly the asymmetry Chameleon exploits.",
        usage.dsp,
        usage.dsp_pct(),
        usage.bram,
        usage.bram_pct(),
        usage.lut,
        usage.lut_pct()
    );
}
