//! Personalization: the user-centric scenario Chameleon is designed for
//! (paper §III-C) — a stream heavily skewed toward a few *preferred*
//! classes whose identity changes midway, exercising the learning-window
//! recalibration of the preference tracker.
//!
//! ```sh
//! cargo run --release --example personalization
//! ```

use chameleon_repro::core::{Chameleon, ChameleonConfig, EvalReport, ModelConfig, Strategy};
use chameleon_repro::stream::{DatasetSpec, DomainIlScenario, PreferenceProfile, StreamConfig};

fn main() {
    let spec = DatasetSpec::core50();
    let scenario = DomainIlScenario::generate(&spec, 7);
    let model = ModelConfig::for_spec(&spec);

    // Figure-1 analogue: how far each class cluster moves across domains.
    let generator = scenario.generator();
    println!("domain shift of the synthetic CORe50 (Fig. 1 analogue):");
    for d in 1..4 {
        println!(
            "  domain {} → {}: mean cluster displacement {:.2}, context churn {:.0} %",
            d - 1,
            d,
            generator.domain_distance(d - 1, d),
            100.0 * generator.assignment_churn(d - 1, d)
        );
    }

    // The user mostly interacts with classes 0–4 early on, then switches
    // to classes 45–49 — e.g. a household robot handed a new set of
    // objects.
    let early: Vec<usize> = (0..5).collect();
    let late: Vec<usize> = (45..50).collect();
    let stream = StreamConfig {
        preference: PreferenceProfile::Shifting {
            early: early.clone(),
            late: late.clone(),
            boost: 10.0,
        },
        ..StreamConfig::default()
    };

    let config = ChameleonConfig {
        learning_window: 400, // recalibrate preferences every 400 images
        ..ChameleonConfig::default()
    };
    let mut chameleon = Chameleon::new(&model, config, 3);

    println!(
        "\nstreaming {} domains with shifting user preferences…",
        spec.num_domains
    );
    for domain in 0..spec.num_domains {
        for batch in scenario.domain_stream(domain, &stream, 11 + domain as u64) {
            chameleon.observe(&batch);
        }
        let prefs = chameleon.preferences();
        println!(
            "  after domain {domain:2}: tracker prefers {:?} (Δ = {:.2}, {} windows)",
            prefs.preferred(),
            prefs.delta(),
            prefs.windows_completed()
        );
    }

    let report = EvalReport::evaluate(&scenario, &chameleon);
    println!("\nfinal evaluation:");
    println!("  Acc_all              : {:5.1} %", report.acc_all);
    println!(
        "  early-preferred (0–4) : {:5.1} %",
        report.class_subset_accuracy(&early)
    );
    println!(
        "  late-preferred (45–49): {:5.1} %",
        report.class_subset_accuracy(&late)
    );
    println!(
        "  short-term store {}  /  long-term store {} samples",
        chameleon.short_term_len(),
        chameleon.long_term_len()
    );
    println!(
        "\nThe tracker's preferred set should have migrated from the early to the\n\
         late classes, and both preferred groups should score at or above the\n\
         overall average — the paper's personalization objective."
    );
}
