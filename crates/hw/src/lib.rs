//! Analytical edge-device cost models for the Chameleon reproduction.
//!
//! The paper's hardware evaluation (§IV-C, Tables II–III) measures per-image
//! training latency and energy on three platforms:
//!
//! * an NVIDIA **Jetson Nano** GPU ([`JetsonNano`], roofline model),
//! * a Xilinx **ZCU102** FPGA training accelerator ([`Zcu102`], 150 MHz,
//!   FP16, weight-streaming model, plus a [`ResourceModel`] reproducing
//!   Table III's DSP/BRAM/LUT utilization),
//! * an **EdgeTPU-like** 64×64 systolic accelerator at 400 MHz with BFP
//!   arithmetic ([`SystolicAccelerator`], modeled after uSystolic).
//!
//! None of that hardware is available here, so the models are *analytical*:
//! each strategy implementation in `chameleon-core` records architectural
//! event counts (trunk passes, head passes, on-/off-chip replay traffic,
//! covariance updates, matrix inversions) in a
//! [`StepTrace`](chameleon_core::StepTrace); this crate converts the
//! per-image averages into a [`Workload`] under the paper's *nominal*
//! MobileNetV1 shapes ([`NominalModel`]) and prices it with published
//! energy/latency constants ([`EnergyTable`], Horowitz 45 nm numbers).
//!
//! The first-order effects the paper's Table II rests on are all modeled:
//!
//! * raw-replay methods re-run the frozen trunk per replayed image,
//! * SLDA pays an `O(N³)` pseudo-inverse per image — the EdgeTPU row,
//! * off-chip replay pays DRAM energy and, at batch size one, forces
//!   *sequential* element processing whose repeated weight streaming is
//!   what separates Latent Replay from Chameleon on the FPGA,
//! * Chameleon's short-term store is served from on-chip SRAM at near-zero
//!   marginal cost.
//!
//! # Example
//!
//! ```
//! use chameleon_hw::{JetsonNano, Device, NominalModel, Workload};
//! use chameleon_core::StepTrace;
//!
//! let trace = StepTrace { inputs: 100, trunk_passes: 100, head_fwd_passes: 1100,
//!     head_bwd_passes: 1100, offchip_latent_reads: 1000, ..StepTrace::new() };
//! let per = trace.per_input().expect("non-empty");
//! let workload = Workload::from_trace(&per, &NominalModel::mobilenet_v1());
//! let cost = JetsonNano::new().cost(&workload);
//! assert!(cost.latency_ms > 0.0 && cost.energy_j > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfp;
mod cycle_device;
mod device;
mod energy;
mod fpga;
mod jetson;
pub mod memsim;
mod nominal;
pub mod sim;
mod systolic;
mod workload;

pub use bfp::BfpFormat;
pub use cycle_device::CycleSimDevice;
pub use device::{CostReport, Device};
pub use energy::EnergyTable;
pub use fpga::{FpgaConfig, ResourceModel, ResourceUsage, Zcu102};
pub use jetson::JetsonNano;
pub use nominal::NominalModel;
pub use systolic::SystolicAccelerator;
pub use workload::Workload;
