//! Cycle-level systolic-array simulator (uSystolic-style).
//!
//! The paper evaluates its EdgeTPU deployment with uSystolic-Sim, a
//! cycle-accurate simulator of a weight-stationary systolic array. This
//! module rebuilds that substrate: a tile-level cycle model of GEMMs on a
//! `rows × cols` PE array with double-buffered weight fill, an on-chip
//! scratchpad, and a DRAM bandwidth model — plus the MobileNetV1 layer
//! table ([`mobilenet_v1_workload`]) that turns the paper's network into
//! the GEMM stream the array actually executes (pointwise convolutions as
//! large GEMMs, depthwise convolutions as per-channel skinny GEMMs with
//! their characteristically poor utilization).
//!
//! # Example
//!
//! ```
//! use chameleon_hw::sim::{Gemm, SystolicSim, SystolicSimConfig};
//!
//! let sim = SystolicSim::new(SystolicSimConfig::edge_tpu());
//! let report = sim.gemm(&Gemm::new(1, 1024, 50)); // batch-1 classifier
//! assert!(report.utilization() < 0.10); // batch-1 starves the array
//! ```

use chameleon_tensor::Matrix;

/// One dense GEMM `C(M×N) = A(M×K) · B(K×N)` — the unit of work the array
/// schedules. Convolutions are lowered to GEMMs via im2col.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Gemm {
    /// Output rows (batch × spatial positions).
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output columns (output channels).
    pub n: usize,
}

impl Gemm {
    /// Creates a GEMM shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        assert!(m > 0 && k > 0 && n > 0, "GEMM dimensions must be non-zero");
        Self { m, k, n }
    }

    /// Multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        (self.m * self.k * self.n) as u64
    }

    /// The two backward GEMMs of a layer whose forward is `self`:
    /// `dX = dY·Wᵀ` (M×N·N×K) and `dW = Aᵀ·dY` (K×M·M×N).
    pub fn backward(&self) -> [Gemm; 2] {
        [
            Gemm::new(self.m, self.n, self.k),
            Gemm::new(self.k, self.m, self.n),
        ]
    }
}

/// Array and memory-system parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystolicSimConfig {
    /// PE array rows (reduction dimension of the resident weight tile).
    pub rows: usize,
    /// PE array columns (output dimension of the resident weight tile).
    pub cols: usize,
    /// Clock in MHz.
    pub clock_mhz: f64,
    /// On-chip scratchpad capacity in KiB.
    pub sram_kib: usize,
    /// DRAM bandwidth in GB/s.
    pub dram_gb_s: f64,
    /// Whether weight fill overlaps the previous tile's compute.
    pub double_buffered: bool,
    /// Bytes per weight value (BFP8 ≈ 1.06; fp16 = 2).
    pub weight_bytes: f64,
    /// Bytes per activation value.
    pub activation_bytes: f64,
    /// Cycles to stream one activation row through the array. A
    /// conventional binary array takes 1; the paper's platform is
    /// uSystolic, a *unary* ("byte-crawling") array whose rate-coded
    /// bit-serial streams take many cycles per row — 32 models its BFP8
    /// operating point and reproduces the paper's tens-of-ms per-image
    /// latencies.
    pub row_serialization: u64,
}

impl SystolicSimConfig {
    /// The paper's EdgeTPU-like configuration: 64×64 PEs, 400 MHz, 8 MB
    /// SRAM, BFP datatype.
    pub fn edge_tpu() -> Self {
        Self {
            rows: 64,
            cols: 64,
            clock_mhz: 400.0,
            sram_kib: 8 * 1024,
            dram_gb_s: 12.8,
            double_buffered: true,
            weight_bytes: 1.0625, // BFP8, 16-value blocks
            activation_bytes: 1.0625,
            row_serialization: 32,
        }
    }

    /// A conventional binary-parallel array (1 cycle per activation row) —
    /// the idealized upper bound the unary design trades against.
    pub fn binary_parallel() -> Self {
        Self {
            row_serialization: 1,
            ..Self::edge_tpu()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when a field is out of range.
    pub fn validate(&self) {
        assert!(
            self.rows > 0 && self.cols > 0,
            "array dimensions must be non-zero"
        );
        assert!(self.clock_mhz > 0.0, "clock must be positive");
        assert!(self.sram_kib > 0, "scratchpad must be non-empty");
        assert!(self.dram_gb_s > 0.0, "DRAM bandwidth must be positive");
        assert!(
            self.weight_bytes > 0.0 && self.activation_bytes > 0.0,
            "datatype sizes must be positive"
        );
        assert!(
            self.row_serialization > 0,
            "row serialization must be positive"
        );
    }
}

/// Cycle breakdown of one GEMM (or an accumulated stream of GEMMs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleReport {
    /// Cycles spent loading weight tiles into the array.
    pub fill_cycles: u64,
    /// Cycles streaming activations through the array (incl. pipeline
    /// skew).
    pub compute_cycles: u64,
    /// Cycles stalled on DRAM (traffic not hidden behind compute).
    pub dram_stall_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// MACs executed.
    pub macs: u64,
    /// Bytes moved over the DRAM interface.
    pub dram_bytes: u64,
}

impl CycleReport {
    /// Adds another report's counters.
    pub fn merge(&mut self, other: &CycleReport) {
        self.fill_cycles += other.fill_cycles;
        self.compute_cycles += other.compute_cycles;
        self.dram_stall_cycles += other.dram_stall_cycles;
        self.total_cycles += other.total_cycles;
        self.macs += other.macs;
        self.dram_bytes += other.dram_bytes;
    }

    /// Fraction of peak MAC throughput achieved.
    pub fn utilization_on(&self, rows: usize, cols: usize) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.total_cycles as f64 * (rows * cols) as f64)
    }

    /// Utilization on the default EdgeTPU array (convenience for docs).
    pub fn utilization(&self) -> f64 {
        self.utilization_on(64, 64)
    }

    /// Wall-clock latency at `clock_mhz`.
    pub fn latency_ms(&self, clock_mhz: f64) -> f64 {
        self.total_cycles as f64 / (clock_mhz * 1e6) * 1e3
    }
}

/// The tile-level simulator.
#[derive(Clone, Copy, Debug)]
pub struct SystolicSim {
    config: SystolicSimConfig,
}

impl SystolicSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SystolicSimConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystolicSimConfig {
        &self.config
    }

    /// Simulates one GEMM under a weight-stationary schedule.
    ///
    /// The weight matrix is tiled into `⌈K/rows⌉ × ⌈N/cols⌉` resident
    /// tiles. Per tile: `rows` fill cycles (overlapped with the previous
    /// tile's compute when double-buffered and the compute phase is long
    /// enough), then `M + rows + cols − 2` cycles to stream `M` activation
    /// rows through the skewed pipeline.
    ///
    /// DRAM traffic: all weights once (they never fit for training-scale
    /// layers anyway, and weight-stationary loads each tile exactly once),
    /// activations once per column-tile pass unless the `M×K` activation
    /// panel fits the scratchpad, outputs written once.
    pub fn gemm(&self, g: &Gemm) -> CycleReport {
        let c = &self.config;
        let tiles_k = g.k.div_ceil(c.rows) as u64;
        let tiles_n = g.n.div_ceil(c.cols) as u64;
        let tiles = tiles_k * tiles_n;

        let fill_per_tile = c.rows as u64;
        let compute_per_tile = g.m as u64 * c.row_serialization + (c.rows + c.cols - 2) as u64;

        let (fill_cycles, busy_cycles) = if c.double_buffered {
            // First fill is exposed; subsequent fills hide under compute
            // when compute ≥ fill.
            let exposed = fill_per_tile
                + (tiles - 1) * fill_per_tile.saturating_sub(compute_per_tile.min(fill_per_tile));
            let hidden_fill_shortfall =
                (tiles - 1) * fill_per_tile.saturating_sub(compute_per_tile);
            let _ = hidden_fill_shortfall;
            (exposed, exposed + tiles * compute_per_tile)
        } else {
            let fills = tiles * fill_per_tile;
            (fills, fills + tiles * compute_per_tile)
        };

        // DRAM traffic.
        let weight_bytes = (g.k * g.n) as f64 * c.weight_bytes;
        let act_panel_bytes = (g.m * g.k) as f64 * c.activation_bytes;
        let sram_bytes = (c.sram_kib * 1024) as f64;
        let act_passes = if act_panel_bytes <= sram_bytes {
            1.0
        } else {
            tiles_n as f64
        };
        let out_bytes = (g.m * g.n) as f64 * c.activation_bytes;
        let dram_bytes = weight_bytes + act_panel_bytes * act_passes + out_bytes;

        // Stall: traffic time not hidden behind the busy phase.
        let bytes_per_cycle = c.dram_gb_s * 1e9 / (c.clock_mhz * 1e6);
        let dram_cycles = (dram_bytes / bytes_per_cycle).ceil() as u64;
        let dram_stall_cycles = dram_cycles.saturating_sub(busy_cycles);

        let compute_cycles = tiles * compute_per_tile;
        CycleReport {
            fill_cycles,
            compute_cycles,
            dram_stall_cycles,
            total_cycles: busy_cycles + dram_stall_cycles,
            macs: g.macs(),
            dram_bytes: dram_bytes as u64,
        }
    }

    /// Simulates a stream of GEMMs (e.g. a whole network pass).
    pub fn run(&self, gemms: &[Gemm]) -> CycleReport {
        let mut total = CycleReport::default();
        for g in gemms {
            total.merge(&self.gemm(g));
        }
        total
    }

    /// Functional check: the schedule must compute the same values as a
    /// reference GEMM (the simulator is a *timing* model; this guards the
    /// shape bookkeeping by multiplying real matrices of the same shape).
    pub fn check_against_reference(&self, a: &Matrix, b: &Matrix) -> bool {
        let g = Gemm::new(a.rows(), a.cols(), b.cols());
        let report = self.gemm(&g);
        let c = a.matmul(b);
        report.macs == (c.rows() * c.cols() * a.cols()) as u64
    }
}

/// A named layer of the MobileNetV1 workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layer {
    /// Layer name, e.g. `"conv1"` or `"block7/pw"`.
    pub name: String,
    /// GEMMs this layer lowers to (depthwise = one skinny GEMM per
    /// channel-group).
    pub gemms: Vec<Gemm>,
}

impl Layer {
    /// Total MACs of the layer.
    pub fn macs(&self) -> u64 {
        self.gemms.iter().map(Gemm::macs).sum()
    }
}

/// The MobileNetV1 (width 1.0) layer stream at a given square input size,
/// lowered to GEMMs for `batch` images.
///
/// Depthwise 3×3 convolutions are lowered per 16-channel group (a common
/// mapping) into skinny `M×9×16` GEMMs whose low utilization on a 64×64
/// array is a genuine property of MobileNet on TPU-like hardware.
///
/// Returns `(frozen_trunk, trainable_tail)` split after `cut_block`
/// (the paper freezes through layer 21 and trains the rest).
///
/// # Panics
///
/// Panics if `input` is not divisible by 32 or `cut_block > 13`.
pub fn mobilenet_v1_workload(
    input: usize,
    batch: usize,
    cut_block: usize,
) -> (Vec<Layer>, Vec<Layer>) {
    assert!(input.is_multiple_of(32), "input must be divisible by 32");
    assert!(cut_block <= 13, "MobileNetV1 has 13 separable blocks");
    assert!(batch > 0, "batch must be positive");

    // (input channels, output channels, stride) of the 13 blocks.
    const BLOCKS: [(usize, usize, usize); 13] = [
        (32, 64, 1),
        (64, 128, 2),
        (128, 128, 1),
        (128, 256, 2),
        (256, 256, 1),
        (256, 512, 2),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 1024, 2),
        (1024, 1024, 1),
    ];

    let mut trunk = Vec::new();
    let mut tail = Vec::new();
    let mut spatial = input / 2; // conv1 stride 2

    // conv1: 3×3×3 → 32, stride 2.
    trunk.push(Layer {
        name: "conv1".into(),
        gemms: vec![Gemm::new(batch * spatial * spatial, 27, 32)],
    });

    for (i, &(in_c, out_c, stride)) in BLOCKS.iter().enumerate() {
        let block = i + 1;
        let out_spatial = spatial / stride;
        let m_dw = batch * out_spatial * out_spatial;
        // Depthwise: one GEMM per 16-channel group, K = 9 taps.
        let groups = in_c.div_ceil(16);
        let dw = Layer {
            name: format!("block{block}/dw"),
            gemms: (0..groups).map(|_| Gemm::new(m_dw, 9, 16)).collect(),
        };
        // Pointwise: the big GEMM.
        let pw = Layer {
            name: format!("block{block}/pw"),
            gemms: vec![Gemm::new(m_dw, in_c, out_c)],
        };
        let dest = if block <= cut_block {
            &mut trunk
        } else {
            &mut tail
        };
        dest.push(dw);
        dest.push(pw);
        spatial = out_spatial;
    }

    // Global average pool is negligible; classifier FC (1024 → 50).
    tail.push(Layer {
        name: "fc".into(),
        gemms: vec![Gemm::new(batch, 1024, 50)],
    });

    (trunk, tail)
}

/// Flattens layers to a GEMM stream.
pub fn gemm_stream(layers: &[Layer]) -> Vec<Gemm> {
    layers
        .iter()
        .flat_map(|l| l.gemms.iter().copied())
        .collect()
}

/// The backward GEMM stream of a set of layers (dX + dW per forward GEMM).
pub fn backward_stream(layers: &[Layer]) -> Vec<Gemm> {
    layers
        .iter()
        .flat_map(|l| l.gemms.iter().flat_map(|g| g.backward()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_tensor::Prng;

    #[test]
    fn single_tile_gemm_cycles_are_exact() {
        let sim = SystolicSim::new(SystolicSimConfig {
            dram_gb_s: 1e6, // effectively infinite: isolate the array
            ..SystolicSimConfig::binary_parallel()
        });
        let g = Gemm::new(100, 64, 64);
        let r = sim.gemm(&g);
        // One tile: fill 64, compute 100 + 64 + 64 − 2 = 226.
        assert_eq!(r.fill_cycles, 64);
        assert_eq!(r.compute_cycles, 226);
        assert_eq!(r.total_cycles, 64 + 226);
        assert_eq!(r.macs, 100 * 64 * 64);
    }

    #[test]
    fn multi_tile_fill_hides_under_compute_when_double_buffered() {
        let base = SystolicSimConfig {
            dram_gb_s: 1e6,
            ..SystolicSimConfig::binary_parallel()
        };
        let sim_db = SystolicSim::new(base);
        let sim_sb = SystolicSim::new(SystolicSimConfig {
            double_buffered: false,
            ..base
        });
        // 4 tiles (K=128, N=128), compute 226 ≥ fill 64 ⇒ 3 fills hidden.
        let g = Gemm::new(100, 128, 128);
        let db = sim_db.gemm(&g);
        let sb = sim_sb.gemm(&g);
        assert_eq!(db.fill_cycles, 64);
        assert_eq!(sb.fill_cycles, 4 * 64);
        assert!(db.total_cycles < sb.total_cycles);
    }

    #[test]
    fn batch1_utilization_is_terrible() {
        let sim = SystolicSim::new(SystolicSimConfig::binary_parallel());
        let g = Gemm::new(1, 1024, 1024);
        let r = sim.gemm(&g);
        assert!(
            r.utilization_on(64, 64) < 0.02,
            "batch-1 utilization {}",
            r.utilization_on(64, 64)
        );
        // Large batches recover utilization.
        let big = sim.gemm(&Gemm::new(4096, 1024, 1024));
        assert!(
            big.utilization_on(64, 64) > 0.5,
            "{}",
            big.utilization_on(64, 64)
        );
    }

    #[test]
    fn dram_stall_appears_at_low_bandwidth() {
        let fast = SystolicSim::new(SystolicSimConfig::edge_tpu());
        let slow = SystolicSim::new(SystolicSimConfig {
            dram_gb_s: 0.1,
            ..SystolicSimConfig::edge_tpu()
        });
        let g = Gemm::new(64, 1024, 1024);
        assert_eq!(fast.gemm(&g).dram_stall_cycles, 0);
        assert!(slow.gemm(&g).dram_stall_cycles > 0);
        assert!(slow.gemm(&g).total_cycles > fast.gemm(&g).total_cycles);
    }

    #[test]
    fn backward_gemms_triple_the_macs() {
        let g = Gemm::new(10, 64, 50);
        let [dx, dw] = g.backward();
        assert_eq!(dx.macs() + dw.macs(), 2 * g.macs());
    }

    #[test]
    fn mobilenet_macs_are_in_the_expected_range() {
        let (trunk, tail) = mobilenet_v1_workload(128, 1, 11);
        let trunk_macs: u64 = trunk.iter().map(Layer::macs).sum();
        let tail_macs: u64 = tail.iter().map(Layer::macs).sum();
        let total = trunk_macs + tail_macs;
        // MobileNetV1 at 128² ≈ 190 M MACs (±20 %).
        assert!(
            (150_000_000..240_000_000).contains(&total),
            "total MACs {total}"
        );
        // The frozen trunk dominates.
        assert!(
            trunk_macs > 3 * tail_macs,
            "trunk {trunk_macs} vs tail {tail_macs}"
        );
    }

    #[test]
    fn cut_block_moves_layers_between_trunk_and_tail() {
        let (t11, tail11) = mobilenet_v1_workload(128, 1, 11);
        let (t13, tail13) = mobilenet_v1_workload(128, 1, 13);
        assert!(t13.len() > t11.len());
        assert!(tail13.len() < tail11.len());
        // fc is always in the tail.
        assert!(tail13.iter().any(|l| l.name == "fc"));
    }

    #[test]
    fn depthwise_layers_have_poor_utilization() {
        let sim = SystolicSim::new(SystolicSimConfig::edge_tpu());
        let (trunk, _) = mobilenet_v1_workload(128, 1, 11);
        let dw = trunk
            .iter()
            .find(|l| l.name == "block7/dw")
            .expect("exists");
        let pw = trunk
            .iter()
            .find(|l| l.name == "block7/pw")
            .expect("exists");
        let dw_report = sim.run(&dw.gemms);
        let pw_report = sim.run(&pw.gemms);
        assert!(
            dw_report.utilization_on(64, 64) < pw_report.utilization_on(64, 64),
            "dw {} should underutilize vs pw {}",
            dw_report.utilization_on(64, 64),
            pw_report.utilization_on(64, 64)
        );
    }

    #[test]
    fn functional_reference_check() {
        let sim = SystolicSim::new(SystolicSimConfig::binary_parallel());
        let mut rng = Prng::new(0);
        let a = Matrix::randn(5, 7, &mut rng);
        let b = Matrix::randn(7, 3, &mut rng);
        assert!(sim.check_against_reference(&a, &b));
    }

    #[test]
    fn run_accumulates_layers() {
        let sim = SystolicSim::new(SystolicSimConfig::edge_tpu());
        let (trunk, tail) = mobilenet_v1_workload(128, 1, 11);
        let both = sim.run(&gemm_stream(&trunk));
        let t = sim.run(&gemm_stream(&tail));
        let all: Vec<Gemm> = gemm_stream(&trunk)
            .into_iter()
            .chain(gemm_stream(&tail))
            .collect();
        let combined = sim.run(&all);
        assert_eq!(combined.macs, both.macs + t.macs);
        assert_eq!(combined.total_cycles, both.total_cycles + t.total_cycles);
    }

    #[test]
    fn training_step_latency_is_tens_of_ms_at_batch_one() {
        // Cross-check the analytical EdgeTPU number (paper: Chameleon
        // 47 ms/image) with the cycle simulator: trunk fwd + 12 tail
        // fwd/bwd rows.
        let sim = SystolicSim::new(SystolicSimConfig::edge_tpu());
        let (trunk, tail) = mobilenet_v1_workload(128, 1, 11);
        let mut gemms = gemm_stream(&trunk);
        // 12 trained rows ≈ batch-12 tail fwd + bwd.
        let (_, tail12) = mobilenet_v1_workload(128, 12, 11);
        let _ = tail;
        gemms.extend(gemm_stream(&tail12));
        gemms.extend(backward_stream(&tail12));
        let report = sim.run(&gemms);
        let ms = report.latency_ms(400.0);
        // Paper (uSystolic unary platform): 47 ms/image for Chameleon.
        assert!((10.0..300.0).contains(&ms), "cycle-sim latency {ms} ms");
        // The binary-parallel upper bound is far faster.
        let binary = SystolicSim::new(SystolicSimConfig::binary_parallel());
        assert!(binary.run(&gemms).latency_ms(400.0) < ms / 4.0);
    }
}
