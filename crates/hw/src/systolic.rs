//! EdgeTPU-like systolic accelerator model (Table II EdgeTPU column).

use crate::{CostReport, Device, EnergyTable, Workload};

/// Cycle model of the custom TPU-like accelerator the paper evaluates with
/// uSystolic-Sim: a 64×64 weight-stationary PE array at 400 MHz with 8 MB
/// of on-chip SRAM and block-floating-point arithmetic.
///
/// Two effects dominate at batch size one:
///
/// * **array fill**: each weight tile takes `rows` cycles to load but then
///   processes only a single activation row, so sustained throughput is
///   roughly `peak / (rows + 1)` — the classic batch-1 systolic penalty,
/// * **pseudo-inverse mapping**: SLDA's Gauss–Jordan elimination has a
///   sequential pivot chain; only one row-elimination broadcast runs at a
///   time, so the paper's `O(N³)` matrix inverse uses a handful of lanes
///   (`inverse_lanes`) instead of the full array — this is exactly why the
///   paper measures SLDA 11.7× slower than Chameleon per image.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystolicAccelerator {
    /// PE array rows.
    pub rows: usize,
    /// PE array columns.
    pub cols: usize,
    /// Clock frequency in MHz (paper: 400).
    pub clock_mhz: f64,
    /// Effective parallel lanes available to the Gauss–Jordan inverse.
    pub inverse_lanes: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_gb_s: f64,
    /// Accelerator power in watts (used only for the energy estimate; the
    /// paper's Table II reports latency only for the EdgeTPU).
    pub power_w: f64,
    energy: EnergyTable,
}

impl SystolicAccelerator {
    /// Creates the model with the paper's configuration (64×64 PEs,
    /// 400 MHz).
    pub fn new() -> Self {
        Self {
            rows: 64,
            cols: 64,
            clock_mhz: 400.0,
            inverse_lanes: 10.0,
            dram_gb_s: 12.8,
            power_w: 2.0,
            energy: EnergyTable::horowitz_45nm(),
        }
    }

    /// Sustained GEMM throughput in MAC/s at batch size one.
    pub fn sustained_macs_per_s(&self) -> f64 {
        let peak = (self.rows * self.cols) as f64 * self.clock_mhz * 1e6;
        // Weight tile fill (rows cycles) amortized over one activation row.
        peak / (self.rows as f64 + 1.0)
    }
}

impl Default for SystolicAccelerator {
    fn default() -> Self {
        Self::new()
    }
}

impl Device for SystolicAccelerator {
    fn name(&self) -> &str {
        "EdgeTPU (64×64 systolic)"
    }

    fn cost(&self, w: &Workload) -> CostReport {
        // GEMM-shaped work (trunk + head) runs on the array.
        let gemm_macs = w.trunk_macs + w.head_macs;
        let gemm_ms = gemm_macs / self.sustained_macs_per_s() * 1e3;
        // Special (inverse/covariance) work is lane-limited.
        let special_ms = w.special_macs / (self.inverse_lanes * self.clock_mhz * 1e6) * 1e3;
        let compute_ms = gemm_ms + special_ms;
        let traffic_bytes = w.offchip_replay_bytes;
        let replay_traffic_ms = traffic_bytes / (self.dram_gb_s * 1e9) * 1e3;
        let latency_ms = compute_ms + replay_traffic_ms;
        let energy_j = self.power_w * latency_ms * 1e-3
            + self.energy.bfp_macs_j(gemm_macs)
            + self.energy.fp16_macs_j(w.special_macs)
            + self.energy.dram_j(traffic_bytes)
            + self.energy.sram_j(w.onchip_bytes);
        CostReport {
            latency_ms,
            energy_j,
            compute_ms,
            weight_stream_ms: 0.0,
            replay_traffic_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NominalModel;
    use chameleon_core::StepTrace;

    fn workload(t: StepTrace) -> Workload {
        Workload::from_trace(
            &t.per_input().expect("inputs"),
            &NominalModel::mobilenet_v1(),
        )
    }

    #[test]
    fn batch1_sustained_is_far_below_peak() {
        let acc = SystolicAccelerator::new();
        let peak = 64.0 * 64.0 * 400e6;
        assert!(acc.sustained_macs_per_s() < peak / 50.0);
    }

    #[test]
    fn slda_is_an_order_of_magnitude_slower_than_chameleon() {
        let acc = SystolicAccelerator::new();
        let chameleon = workload(StepTrace {
            inputs: 10,
            trunk_passes: 10,
            head_fwd_passes: 120,
            head_bwd_passes: 120,
            onchip_sample_reads: 100,
            onchip_sample_writes: 10,
            offchip_latent_reads: 10,
            offchip_latent_writes: 1,
            ..StepTrace::new()
        });
        let slda = workload(StepTrace {
            inputs: 1,
            trunk_passes: 1,
            covariance_updates: 1,
            matrix_inversions: 1,
            inversion_dim: 1024,
            ..StepTrace::new()
        });
        let ch = acc.cost(&chameleon);
        let sl = acc.cost(&slda);
        let ratio = sl.latency_ms / ch.latency_ms;
        // Paper: 554 ms vs 47 ms ⇒ 11.7×. Accept the same order.
        assert!(ratio > 5.0, "SLDA/Chameleon ratio {ratio}");
        assert!(
            ch.latency_ms > 10.0 && ch.latency_ms < 200.0,
            "{}",
            ch.latency_ms
        );
        assert!(
            sl.latency_ms > 200.0 && sl.latency_ms < 2000.0,
            "{}",
            sl.latency_ms
        );
    }

    #[test]
    fn inverse_dominates_slda_cost() {
        let acc = SystolicAccelerator::new();
        let slda = workload(StepTrace {
            inputs: 1,
            trunk_passes: 1,
            covariance_updates: 1,
            matrix_inversions: 1,
            inversion_dim: 1024,
            ..StepTrace::new()
        });
        let cost = acc.cost(&slda);
        // The O(N³) inverse should dwarf the trunk GEMM.
        assert!(cost.compute_ms > 0.9 * cost.latency_ms);
    }
}
