//! Device abstraction and cost reports.

use crate::Workload;

/// Per-image latency/energy estimate with a breakdown, the row format of
/// Table II.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostReport {
    /// End-to-end training latency per image, in milliseconds.
    pub latency_ms: f64,
    /// Energy per image, in joules.
    pub energy_j: f64,
    /// Latency share spent on compute (MACs).
    pub compute_ms: f64,
    /// Latency share spent streaming weights.
    pub weight_stream_ms: f64,
    /// Latency share spent moving replay data (the paper reports Latent
    /// Replay spending 44 % of FPGA latency here).
    pub replay_traffic_ms: f64,
}

impl CostReport {
    /// Fraction of latency spent on replay data movement.
    pub fn replay_traffic_fraction(&self) -> f64 {
        if self.latency_ms <= 0.0 {
            0.0
        } else {
            self.replay_traffic_ms / self.latency_ms
        }
    }
}

/// An edge-device cost model: prices a per-image [`Workload`].
pub trait Device {
    /// Human-readable device name as used in Table II.
    fn name(&self) -> &str;

    /// Estimates the per-image training cost of a workload.
    fn cost(&self, workload: &Workload) -> CostReport;
}
