//! Block floating point (BFP) arithmetic.
//!
//! The paper's EdgeTPU experiment "leverage[s] Block Floating Point (BFP)
//! datatype to compute the forward and backward pass" (§IV-C). BFP groups
//! values into blocks that share one exponent, storing per-value integer
//! mantissas — fixed-point datapath cost with floating-point dynamic range.
//!
//! [`BfpFormat`] implements fake-quantization (quantize → dequantize) so
//! training code can measure the accuracy impact of a given mantissa width
//! and block size, and the device models can price the narrower datapath.

use chameleon_tensor::Matrix;

/// A block-floating-point format: `block_size` values share one exponent,
/// each storing a signed mantissa of `mantissa_bits` bits (including sign).
///
/// # Example
///
/// ```
/// use chameleon_hw::BfpFormat;
///
/// let bfp8 = BfpFormat::new(8, 16);
/// let block = [1.0f32, 0.5, -0.25, 0.125];
/// let q = bfp8.quantize_block(&block);
/// // Values are representable losslessly at this width.
/// assert!(q.iter().zip(&block).all(|(a, b)| (a - b).abs() < 1e-2));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfpFormat {
    mantissa_bits: u8,
    block_size: usize,
}

impl BfpFormat {
    /// Creates a format with `mantissa_bits` (2–24, including the sign bit)
    /// and a block of `block_size` values sharing one exponent.
    ///
    /// # Panics
    ///
    /// Panics if `mantissa_bits` is outside `2..=24` or `block_size == 0`.
    pub fn new(mantissa_bits: u8, block_size: usize) -> Self {
        assert!(
            (2..=24).contains(&mantissa_bits),
            "mantissa bits must be in 2..=24"
        );
        assert!(block_size > 0, "block size must be positive");
        Self {
            mantissa_bits,
            block_size,
        }
    }

    /// The paper's EdgeTPU configuration: 8-bit mantissas, 16-value blocks.
    pub fn bfp8() -> Self {
        Self::new(8, 16)
    }

    /// Mantissa width in bits (including sign).
    pub fn mantissa_bits(&self) -> u8 {
        self.mantissa_bits
    }

    /// Values per shared exponent.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Storage bits per value, amortizing the shared 8-bit exponent.
    pub fn bits_per_value(&self) -> f64 {
        self.mantissa_bits as f64 + 8.0 / self.block_size as f64
    }

    /// Quantizes one block (any length ≤ block_size is accepted; longer
    /// slices are treated as a single block, which callers use for
    /// row-blocked layouts).
    ///
    /// The shared exponent is chosen so the largest magnitude fills the
    /// mantissa; all values are rounded to the resulting grid. Zero blocks
    /// and non-finite values pass through unchanged.
    pub fn quantize_block(&self, block: &[f32]) -> Vec<f32> {
        let max = block
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |a, b| a.max(b.abs()));
        if max == 0.0 {
            return block.to_vec();
        }
        // Signed mantissa range: ±(2^(m−1) − 1).
        let levels = ((1u32 << (self.mantissa_bits - 1)) - 1) as f32;
        // Power-of-two exponent so max ≤ levels · 2^e.
        let exponent = (max / levels).log2().ceil();
        let scale = exponent.exp2();
        block
            .iter()
            .map(|&v| {
                if !v.is_finite() {
                    v
                } else {
                    (v / scale).round().clamp(-levels, levels) * scale
                }
            })
            .collect()
    }

    /// Fake-quantizes an entire matrix row-major in `block_size` chunks.
    pub fn quantize_matrix(&self, m: &Matrix) -> Matrix {
        let mut out = m.clone();
        for chunk in out.as_mut_slice().chunks_mut(self.block_size) {
            let q = self.quantize_block(chunk);
            chunk.copy_from_slice(&q);
        }
        out
    }

    /// Fake-quantizes a slice in place.
    pub fn quantize_slice(&self, values: &mut [f32]) {
        for chunk in values.chunks_mut(self.block_size) {
            let q = self.quantize_block(chunk);
            chunk.copy_from_slice(&q);
        }
    }

    /// Root-mean-square quantization error over a matrix.
    pub fn rms_error(&self, m: &Matrix) -> f32 {
        let q = self.quantize_matrix(m);
        let n = m.as_slice().len() as f32;
        (m.as_slice()
            .iter()
            .zip(q.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / n)
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_tensor::Prng;

    #[test]
    fn zero_block_is_unchanged() {
        let f = BfpFormat::bfp8();
        assert_eq!(f.quantize_block(&[0.0, 0.0, 0.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn quantization_is_idempotent() {
        let f = BfpFormat::new(6, 8);
        let mut rng = Prng::new(0);
        let block: Vec<f32> = (0..8).map(|_| rng.randn()).collect();
        let once = f.quantize_block(&block);
        let twice = f.quantize_block(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn max_magnitude_is_preserved_within_one_step() {
        let f = BfpFormat::bfp8();
        let block = [3.7f32, -0.2, 0.01, 1.5];
        let q = f.quantize_block(&block);
        // The max element defines the exponent, so its relative error is
        // bounded by half a mantissa step.
        assert!((q[0] - 3.7).abs() / 3.7 < 2.0 / 127.0, "{}", q[0]);
    }

    #[test]
    fn small_values_next_to_large_lose_precision() {
        // The signature BFP failure mode: a tiny value sharing a block with
        // a huge one collapses to the shared grid.
        let f = BfpFormat::new(4, 4);
        let q = f.quantize_block(&[100.0, 0.001, 0.0, 0.0]);
        assert_eq!(q[1], 0.0, "tiny value should flush to zero at 4 bits");
    }

    #[test]
    fn wider_mantissas_reduce_error() {
        let mut rng = Prng::new(1);
        let m = Matrix::randn(16, 16, &mut rng);
        let e4 = BfpFormat::new(4, 16).rms_error(&m);
        let e8 = BfpFormat::new(8, 16).rms_error(&m);
        let e12 = BfpFormat::new(12, 16).rms_error(&m);
        assert!(e4 > e8, "{e4} vs {e8}");
        assert!(e8 > e12, "{e8} vs {e12}");
    }

    #[test]
    fn smaller_blocks_reduce_error() {
        // More shared exponents track local dynamic range better.
        let mut rng = Prng::new(2);
        let mut m = Matrix::randn(8, 32, &mut rng);
        // Inject scale diversity so block size matters.
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            if i % 7 == 0 {
                *v *= 50.0;
            }
        }
        let coarse = BfpFormat::new(8, 64).rms_error(&m);
        let fine = BfpFormat::new(8, 4).rms_error(&m);
        assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn bits_per_value_amortizes_exponent() {
        let f = BfpFormat::new(8, 16);
        assert!((f.bits_per_value() - 8.5).abs() < 1e-9);
        let g = BfpFormat::new(8, 4);
        assert!((g.bits_per_value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_values_pass_through() {
        let f = BfpFormat::bfp8();
        let q = f.quantize_block(&[1.0, f32::NAN, f32::INFINITY]);
        assert!(q[1].is_nan());
        assert!(q[2].is_infinite());
    }

    #[test]
    fn quantize_matrix_matches_slice_path() {
        let mut rng = Prng::new(3);
        let m = Matrix::randn(4, 8, &mut rng);
        let f = BfpFormat::new(6, 8);
        let qm = f.quantize_matrix(&m);
        let mut data = m.as_slice().to_vec();
        f.quantize_slice(&mut data);
        assert_eq!(qm.as_slice(), &data[..]);
    }

    #[test]
    #[should_panic(expected = "mantissa bits")]
    fn invalid_width_panics() {
        let _ = BfpFormat::new(1, 16);
    }
}
