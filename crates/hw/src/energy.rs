//! Energy constants (Horowitz, "Energy table for 45 nm process").

/// Per-event energy constants in picojoules, following the 45 nm numbers
/// the paper cites (Horowitz, reference \[12\]): DRAM access is roughly two orders of
/// magnitude more expensive than large-SRAM access, which more expensive
/// than a MAC — the asymmetry Chameleon's dual-buffer design exploits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyTable {
    /// One fp16 multiply-accumulate.
    pub mac_fp16_pj: f64,
    /// One 8-bit block-floating-point MAC (EdgeTPU-style).
    pub mac_bfp_pj: f64,
    /// One byte read/written in a large (MB-scale) on-chip SRAM.
    pub sram_pj_per_byte: f64,
    /// One byte transferred over the DRAM interface.
    pub dram_pj_per_byte: f64,
}

impl EnergyTable {
    /// The 45 nm reference numbers.
    ///
    /// * fp16 MAC ≈ 1.1 pJ (0.4 pJ multiply + add + register movement),
    /// * int8/BFP MAC ≈ 0.3 pJ,
    /// * large SRAM ≈ 1.25 pJ/byte (10 pJ per 64-bit word),
    /// * DRAM ≈ 163 pJ/byte (1.3–2.6 nJ per 128-bit burst word).
    pub fn horowitz_45nm() -> Self {
        Self {
            mac_fp16_pj: 1.1,
            mac_bfp_pj: 0.3,
            sram_pj_per_byte: 1.25,
            dram_pj_per_byte: 163.0,
        }
    }

    /// Energy (J) of `macs` fp16 MACs.
    pub fn fp16_macs_j(&self, macs: f64) -> f64 {
        macs * self.mac_fp16_pj * 1e-12
    }

    /// Energy (J) of `macs` BFP MACs.
    pub fn bfp_macs_j(&self, macs: f64) -> f64 {
        macs * self.mac_bfp_pj * 1e-12
    }

    /// Energy (J) of `bytes` moved through on-chip SRAM.
    pub fn sram_j(&self, bytes: f64) -> f64 {
        bytes * self.sram_pj_per_byte * 1e-12
    }

    /// Energy (J) of `bytes` moved over the DRAM interface.
    pub fn dram_j(&self, bytes: f64) -> f64 {
        bytes * self.dram_pj_per_byte * 1e-12
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self::horowitz_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_dwarfs_sram_dwarfs_mac() {
        let e = EnergyTable::horowitz_45nm();
        assert!(e.dram_pj_per_byte > 50.0 * e.sram_pj_per_byte);
        assert!(e.sram_pj_per_byte > e.mac_bfp_pj);
    }

    #[test]
    fn unit_conversions() {
        let e = EnergyTable::horowitz_45nm();
        // 1e12 fp16 MACs at 1.1 pJ = 1.1 J.
        assert!((e.fp16_macs_j(1e12) - 1.1).abs() < 1e-9);
        // 1 MB over DRAM ≈ 0.163 mJ.
        assert!((e.dram_j(1e6) - 163e-6).abs() < 1e-9);
    }
}
