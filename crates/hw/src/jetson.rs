//! Jetson Nano GPU model (Table II Jetson columns).

use crate::{CostReport, Device, EnergyTable, Workload};

/// Roofline-plus-overhead model of the Jetson Nano (128-core Maxwell,
/// 472 GFLOPS fp16, 25.6 GB/s LPDDR4, ~10 W module power).
///
/// Batch-1 online training keeps the GPU far from peak: the model uses a
/// sustained-efficiency factor (`compute_efficiency`, default 0.2 ⇒
/// ≈ 47 GMAC/s) calibrated to the paper's measured 33 ms/image for
/// Chameleon.
///
/// The paper notes it "could not take advantage of the on-chip L2 cache",
/// so Chameleon's short-term store lives in DRAM like everything else —
/// but it is a small contiguous (TLB/cache-friendly) region gathered in a
/// single transaction, whereas a multi-MB reservoir buffer produces
/// scattered accesses; the model charges `scattered_gather_ms` per replay
/// element fetched from a large off-chip buffer, the same sequential
/// element-processing behaviour measured on the FPGA.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JetsonNano {
    /// Peak fp16 throughput in GMAC/s.
    pub peak_gmacs: f64,
    /// Sustained fraction of peak at batch size one.
    pub compute_efficiency: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_gb_s: f64,
    /// Per-element cost of gathering a replay sample from a large
    /// scattered off-chip buffer (kernel launch + page-missing gather).
    pub scattered_gather_ms: f64,
    /// Fixed per-image framework overhead in ms.
    pub framework_overhead_ms: f64,
    /// Module power draw in watts.
    pub power_w: f64,
    energy: EnergyTable,
}

impl JetsonNano {
    /// Creates the model with paper-calibrated defaults.
    pub fn new() -> Self {
        Self {
            peak_gmacs: 236.0,
            compute_efficiency: 0.2,
            dram_gb_s: 25.6,
            scattered_gather_ms: 8.0,
            framework_overhead_ms: 1.0,
            power_w: 9.5,
            energy: EnergyTable::horowitz_45nm(),
        }
    }
}

impl Default for JetsonNano {
    fn default() -> Self {
        Self::new()
    }
}

impl Device for JetsonNano {
    fn name(&self) -> &str {
        "Jetson Nano"
    }

    fn cost(&self, w: &Workload) -> CostReport {
        let sustained = self.peak_gmacs * self.compute_efficiency * 1e9;
        let compute_ms = w.total_macs() / sustained * 1e3;
        let bulk_bytes = w.offchip_replay_bytes + w.onchip_bytes;
        let bandwidth_ms = bulk_bytes / (self.dram_gb_s * 1e9) * 1e3;
        let replay_traffic_ms = w.offchip_replay_elements * self.scattered_gather_ms + bandwidth_ms;
        let latency_ms =
            compute_ms.max(bandwidth_ms) + replay_traffic_ms + self.framework_overhead_ms;
        // The Nano's module power dominates; dynamic terms are added for
        // completeness but contribute little.
        let energy_j = self.power_w * latency_ms * 1e-3
            + self.energy.fp16_macs_j(w.total_macs())
            + self.energy.dram_j(bulk_bytes);
        CostReport {
            latency_ms,
            energy_j,
            compute_ms,
            weight_stream_ms: 0.0,
            replay_traffic_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NominalModel;
    use chameleon_core::StepTrace;

    fn workload(t: StepTrace) -> Workload {
        Workload::from_trace(
            &t.per_input().expect("inputs"),
            &NominalModel::mobilenet_v1(),
        )
    }

    fn chameleon() -> Workload {
        workload(StepTrace {
            inputs: 10,
            trunk_passes: 10,
            head_fwd_passes: 120,
            head_bwd_passes: 120,
            onchip_sample_reads: 100,
            onchip_sample_writes: 10,
            offchip_latent_reads: 10,
            offchip_latent_writes: 1,
            ..StepTrace::new()
        })
    }

    fn latent_replay() -> Workload {
        workload(StepTrace {
            inputs: 1,
            trunk_passes: 1,
            head_fwd_passes: 11,
            head_bwd_passes: 11,
            offchip_latent_reads: 10,
            offchip_latent_writes: 1,
            ..StepTrace::new()
        })
    }

    fn slda() -> Workload {
        workload(StepTrace {
            inputs: 1,
            trunk_passes: 1,
            covariance_updates: 1,
            matrix_inversions: 1,
            inversion_dim: 1024,
            ..StepTrace::new()
        })
    }

    #[test]
    fn table2_jetson_ordering_holds() {
        let gpu = JetsonNano::new();
        let ch = gpu.cost(&chameleon());
        let lr = gpu.cost(&latent_replay());
        let sl = gpu.cost(&slda());
        // Paper: Chameleon 33 ms < SLDA 69 ms < Latent Replay 115 ms.
        assert!(
            ch.latency_ms < sl.latency_ms,
            "{} vs {}",
            ch.latency_ms,
            sl.latency_ms
        );
        assert!(
            sl.latency_ms < lr.latency_ms,
            "{} vs {}",
            sl.latency_ms,
            lr.latency_ms
        );
        // Speedups in the paper's regime: 2.1× over SLDA... wait, the
        // paper reports up to 2.1× over SLDA and 3.5× over Latent Replay.
        let vs_lr = lr.latency_ms / ch.latency_ms;
        assert!(vs_lr > 1.8 && vs_lr < 8.0, "LR speedup {vs_lr}");
    }

    #[test]
    fn absolute_latencies_are_in_the_paper_regime() {
        let gpu = JetsonNano::new();
        let ch = gpu.cost(&chameleon());
        // Paper: 33 ms / 0.31 J per image; accept the right order of
        // magnitude from the analytical model.
        assert!(
            ch.latency_ms > 10.0 && ch.latency_ms < 120.0,
            "{}",
            ch.latency_ms
        );
        assert!(ch.energy_j > 0.05 && ch.energy_j < 1.5, "{}", ch.energy_j);
    }

    #[test]
    fn energy_tracks_latency() {
        let gpu = JetsonNano::new();
        let ch = gpu.cost(&chameleon());
        let lr = gpu.cost(&latent_replay());
        let latency_ratio = lr.latency_ms / ch.latency_ms;
        let energy_ratio = lr.energy_j / ch.energy_j;
        assert!((latency_ratio - energy_ratio).abs() < 0.5 * latency_ratio);
    }
}
