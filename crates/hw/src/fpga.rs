//! ZCU102 FPGA training-accelerator model (Table II FPGA columns,
//! Table III resources).

use crate::{CostReport, Device, EnergyTable, Workload};

/// Configuration of the FP16 training accelerator implemented on the
/// ZCU102 (paper §IV-C: Vitis-generated RTL, 150 MHz).
///
/// The performance constants are calibrated to the paper's measured
/// platform; each has a microarchitectural reading:
///
/// * `effective_gmacs` — sustained MAC throughput at batch size one.
///   Batch-1 training keeps the MAC array mostly idle waiting on weights;
///   7 GMAC/s ≈ 46 MACs/cycle effective out of a 32×32 array.
/// * `weight_stream_mb_s` — DRAM bandwidth of the word-wise AXI weight
///   stream (≈ 1 beat/cycle at 150 MHz).
/// * `weight_passes_per_update` — the trainable weights are streamed once
///   for the forward pass and twice for the backward (input-gradient and
///   weight-gradient) passes.
/// * **Sequential off-chip replay**: replay elements fetched from DRAM are
///   processed as they arrive, each re-streaming the trainable weights.
///   Rows resident on-chip (the incoming sample and Chameleon's short-term
///   store) are folded into a single batched update. This asymmetry —
///   which only a buffer that *fits on-chip* can exploit — is the
///   first-order mechanism behind the paper's 6.75× FPGA gap.
/// * `replay_word_cycles` — cycles per 32-bit word for replay-store
///   accesses (non-burst AXI round trips).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FpgaConfig {
    /// MAC array rows.
    pub mac_rows: usize,
    /// MAC array columns.
    pub mac_cols: usize,
    /// Clock frequency in MHz (paper: 150).
    pub clock_mhz: f64,
    /// Sustained compute throughput in GMAC/s at batch size one.
    pub effective_gmacs: f64,
    /// Weight-streaming DRAM bandwidth in MB/s.
    pub weight_stream_mb_s: f64,
    /// Full passes over the trainable weights per update.
    pub weight_passes_per_update: f64,
    /// Cycles per 32-bit word for off-chip replay-store accesses.
    pub replay_word_cycles: f64,
    /// Accelerator power draw in watts (PL domain).
    pub power_w: f64,
    /// On-chip weight buffer in KB.
    pub weight_buffer_kb: usize,
    /// On-chip activation working buffer in KB.
    pub activation_buffer_kb: usize,
    /// On-chip short-term replay store in KB (10 latents = 320 KB).
    pub short_term_buffer_kb: usize,
    /// Instruction/config memory in KB.
    pub instruction_buffer_kb: usize,
}

impl Default for FpgaConfig {
    fn default() -> Self {
        Self {
            mac_rows: 32,
            mac_cols: 32,
            clock_mhz: 150.0,
            effective_gmacs: 7.0,
            weight_stream_mb_s: 160.0,
            weight_passes_per_update: 3.0,
            replay_word_cycles: 100.0,
            power_w: 2.5,
            weight_buffer_kb: 2048,
            activation_buffer_kb: 456,
            short_term_buffer_kb: 320,
            instruction_buffer_kb: 20,
        }
    }
}

/// The ZCU102 device model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Zcu102 {
    config: FpgaConfig,
    energy: EnergyTable,
    /// Nominal trainable-weight bytes streamed per update group.
    head_weight_bytes: f64,
    /// Nominal frozen-trunk weight bytes (streamed once per image).
    trunk_weight_bytes: f64,
}

impl Zcu102 {
    /// Creates the model with default (paper-calibrated) parameters.
    pub fn new() -> Self {
        Self::with_config(FpgaConfig::default())
    }

    /// Creates the model with an explicit configuration (ablations).
    pub fn with_config(config: FpgaConfig) -> Self {
        Self {
            config,
            energy: EnergyTable::horowitz_45nm(),
            head_weight_bytes: 3_125_000.0 * 2.0,
            trunk_weight_bytes: 1_100_000.0 * 2.0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FpgaConfig {
        &self.config
    }

    /// Resource utilization of this configuration (Table III).
    pub fn resources(&self) -> ResourceUsage {
        ResourceModel::new(self.config).utilization()
    }
}

impl Default for Zcu102 {
    fn default() -> Self {
        Self::new()
    }
}

impl Device for Zcu102 {
    fn name(&self) -> &str {
        "ZCU102 FPGA"
    }

    fn cost(&self, w: &Workload) -> CostReport {
        let c = &self.config;
        let compute_ms = w.total_macs() / (c.effective_gmacs * 1e9) * 1e3;

        // Weight streaming: the trunk once per image; the trainable tail
        // once per update group. On-chip rows batch into one group;
        // every off-chip replay element is its own group.
        let update_groups = 1.0 + w.offchip_replay_elements;
        let weight_bytes = self.trunk_weight_bytes
            + update_groups * c.weight_passes_per_update * self.head_weight_bytes;
        let weight_stream_ms = weight_bytes / (c.weight_stream_mb_s * 1e6) * 1e3;

        // Replay-store traffic: word-wise AXI, `replay_word_cycles` per
        // 32-bit word. On-chip accesses are effectively free (wide BRAM).
        let words = w.offchip_replay_bytes / 4.0;
        let replay_traffic_ms = words * c.replay_word_cycles / (c.clock_mhz * 1e6) * 1e3;

        let latency_ms = compute_ms + weight_stream_ms + replay_traffic_ms;
        let energy_j = c.power_w * latency_ms * 1e-3
            + self.energy.fp16_macs_j(w.total_macs())
            + self.energy.dram_j(weight_bytes + w.offchip_replay_bytes)
            + self.energy.sram_j(w.onchip_bytes);
        CostReport {
            latency_ms,
            energy_j,
            compute_ms,
            weight_stream_ms,
            replay_traffic_ms,
        }
    }
}

/// Parametric ZCU102 resource estimator reproducing Table III.
///
/// Constants are calibrated so the default [`FpgaConfig`] reproduces the
/// paper's utilization (DSP 1164/2520, BRAM 632/656, LUT 169 428/233 707):
///
/// * DSPs: one per MAC array cell, two per row for accumulation trees, and
///   a fixed pool for address generation / the vector unit,
/// * BRAM: one 36 Kb block per 4.5 KB of on-chip buffer,
/// * LUTs: a fixed control base plus per-DSP glue and per-BRAM muxing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceModel {
    config: FpgaConfig,
}

/// Absolute and relative utilization of the three ZCU102 resource classes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceUsage {
    /// DSP48 slices used.
    pub dsp: usize,
    /// 36 Kb BRAM blocks used.
    pub bram: usize,
    /// LUTs used.
    pub lut: usize,
}

impl ResourceUsage {
    /// DSPs available on the ZCU102.
    pub const DSP_AVAILABLE: usize = 2520;
    /// BRAM blocks available on the ZCU102.
    pub const BRAM_AVAILABLE: usize = 656;
    /// LUTs available on the ZCU102.
    pub const LUT_AVAILABLE: usize = 233_707;

    /// DSP utilization percentage.
    pub fn dsp_pct(&self) -> f64 {
        100.0 * self.dsp as f64 / Self::DSP_AVAILABLE as f64
    }

    /// BRAM utilization percentage.
    pub fn bram_pct(&self) -> f64 {
        100.0 * self.bram as f64 / Self::BRAM_AVAILABLE as f64
    }

    /// LUT utilization percentage.
    pub fn lut_pct(&self) -> f64 {
        100.0 * self.lut as f64 / Self::LUT_AVAILABLE as f64
    }

    /// Whether the design fits the device.
    pub fn fits(&self) -> bool {
        self.dsp <= Self::DSP_AVAILABLE
            && self.bram <= Self::BRAM_AVAILABLE
            && self.lut <= Self::LUT_AVAILABLE
    }
}

impl ResourceModel {
    /// Creates the estimator for a configuration.
    pub fn new(config: FpgaConfig) -> Self {
        Self { config }
    }

    /// Estimated utilization.
    pub fn utilization(&self) -> ResourceUsage {
        let c = &self.config;
        let array = c.mac_rows * c.mac_cols;
        let dsp = array + 2 * c.mac_rows + 76;
        let buffer_kb = c.weight_buffer_kb
            + c.activation_buffer_kb
            + c.short_term_buffer_kb
            + c.instruction_buffer_kb;
        // One 36 Kb block holds 4.5 KB.
        let bram = (buffer_kb as f64 / 4.5).ceil() as usize;
        let lut = 10_288 + 115 * dsp + 40 * bram;
        ResourceUsage { dsp, bram, lut }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NominalModel;
    use chameleon_core::StepTrace;

    /// Per-image traces for the three methods in the paper's batch-1 FPGA
    /// configuration ("ten replay elements per incoming input").
    fn latent_replay_workload() -> Workload {
        let t = StepTrace {
            inputs: 1,
            trunk_passes: 1,
            head_fwd_passes: 11,
            head_bwd_passes: 11,
            offchip_latent_reads: 10,
            offchip_latent_writes: 1,
            ..StepTrace::new()
        };
        Workload::from_trace(
            &t.per_input().expect("inputs"),
            &NominalModel::mobilenet_v1(),
        )
    }

    fn chameleon_workload() -> Workload {
        let t = StepTrace {
            inputs: 10,
            trunk_passes: 10,
            head_fwd_passes: 120,
            head_bwd_passes: 120,
            onchip_sample_reads: 100,
            onchip_sample_writes: 10,
            offchip_latent_reads: 10,
            offchip_latent_writes: 1,
            ..StepTrace::new()
        };
        Workload::from_trace(
            &t.per_input().expect("inputs"),
            &NominalModel::mobilenet_v1(),
        )
    }

    #[test]
    fn chameleon_beats_latent_replay_by_severalfold() {
        let fpga = Zcu102::new();
        let lr = fpga.cost(&latent_replay_workload());
        let ch = fpga.cost(&chameleon_workload());
        let latency_ratio = lr.latency_ms / ch.latency_ms;
        let energy_ratio = lr.energy_j / ch.energy_j;
        // Paper: 6.75× latency, 7.07× energy. Our first-order model should
        // land in the same regime (≥ 3×).
        assert!(latency_ratio > 3.0, "latency ratio {latency_ratio}");
        assert!(energy_ratio > 3.0, "energy ratio {energy_ratio}");
        assert!(
            ch.latency_ms > 50.0 && ch.latency_ms < 2000.0,
            "{}",
            ch.latency_ms
        );
    }

    #[test]
    fn latent_replay_breakdown_shows_replay_traffic() {
        let fpga = Zcu102::new();
        let lr = fpga.cost(&latent_replay_workload());
        assert!(lr.replay_traffic_ms > 0.0);
        assert!(lr.replay_traffic_fraction() > 0.02);
        let ch = fpga.cost(&chameleon_workload());
        assert!(ch.replay_traffic_fraction() < lr.replay_traffic_fraction());
    }

    #[test]
    fn resources_match_table3() {
        let usage = Zcu102::new().resources();
        assert_eq!(usage.dsp, 1164);
        assert_eq!(usage.bram, 632);
        assert!(
            (usage.lut as i64 - 169_428).abs() < 2000,
            "lut {}",
            usage.lut
        );
        assert!((usage.dsp_pct() - 46.19).abs() < 0.1);
        assert!((usage.bram_pct() - 96.34).abs() < 0.5);
        assert!((usage.lut_pct() - 72.50).abs() < 1.0);
        assert!(usage.fits());
    }

    #[test]
    fn bigger_array_uses_more_resources() {
        let small = ResourceModel::new(FpgaConfig::default()).utilization();
        let big = ResourceModel::new(FpgaConfig {
            mac_rows: 64,
            mac_cols: 64,
            ..FpgaConfig::default()
        })
        .utilization();
        assert!(big.dsp > small.dsp);
        assert!(big.lut > small.lut);
        assert!(!big.fits(), "a 64×64 fp16 array should not fit the ZCU102");
    }
}
