//! A [`Device`] backed by the cycle-level systolic simulator.

use crate::sim::{
    backward_stream, gemm_stream, mobilenet_v1_workload, Gemm, SystolicSim, SystolicSimConfig,
};
use crate::{CostReport, Device, EnergyTable, Workload};

/// An EdgeTPU-like device whose latency comes from the cycle-level
/// uSystolic-style simulator rather than an analytical throughput constant:
/// the per-image workload is expanded back into the MobileNetV1 GEMM stream
/// (trunk passes, trained tail rows, SLDA's covariance/inverse kernels) and
/// scheduled tile-by-tile on the array.
///
/// This is the bottom-up cross-check of the analytical
/// [`SystolicAccelerator`](crate::SystolicAccelerator) used in Table II —
/// the two models agree within a small factor, which bounds how much the
/// Table II conclusions depend on modeling choices.
#[derive(Clone, Copy, Debug)]
pub struct CycleSimDevice {
    sim: SystolicSim,
    /// Effective parallel lanes for the Gauss–Jordan inverse (sequential
    /// pivot chain maps poorly onto the array).
    inverse_lanes: f64,
    energy: EnergyTable,
    power_w: f64,
}

impl CycleSimDevice {
    /// Creates the device with the paper's EdgeTPU configuration.
    pub fn new() -> Self {
        Self::with_config(SystolicSimConfig::edge_tpu())
    }

    /// Creates the device over an explicit array configuration.
    pub fn with_config(config: SystolicSimConfig) -> Self {
        Self {
            sim: SystolicSim::new(config),
            inverse_lanes: 10.0,
            energy: EnergyTable::horowitz_45nm(),
            power_w: 2.0,
        }
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &SystolicSim {
        &self.sim
    }

    /// Expands a per-image workload into the GEMM stream the array runs.
    fn gemms_for(&self, w: &Workload) -> Vec<Gemm> {
        let nominal_trunk = 150.0e6;
        let nominal_head_fwd = 36.0e6;
        let mut gemms = Vec::new();

        // Trunk forward passes (fractional passes round to the nearest
        // whole network evaluation; ≥1 whenever any trunk work happened).
        let trunk_passes =
            ((w.trunk_macs / nominal_trunk).round() as usize).max(usize::from(w.trunk_macs > 0.0));
        if trunk_passes > 0 {
            let (trunk, _) = mobilenet_v1_workload(128, trunk_passes, 11);
            gemms.extend(gemm_stream(&trunk));
        }

        // Trained tail rows: head MACs per image / per-row cost gives the
        // effective training batch (fwd is 1/3 of fwd+bwd at 1:2).
        let trained_rows = (w.head_macs / (3.0 * nominal_head_fwd)).round() as usize;
        if trained_rows > 0 {
            let (_, tail) = mobilenet_v1_workload(128, trained_rows, 11);
            gemms.extend(gemm_stream(&tail));
            gemms.extend(backward_stream(&tail));
        }
        gemms
    }
}

impl Default for CycleSimDevice {
    fn default() -> Self {
        Self::new()
    }
}

impl Device for CycleSimDevice {
    fn name(&self) -> &str {
        "EdgeTPU (cycle sim)"
    }

    fn cost(&self, w: &Workload) -> CostReport {
        let config = *self.sim.config();
        let report = self.sim.run(&self.gemms_for(w));
        let gemm_ms = report.latency_ms(config.clock_mhz);

        // Lane-limited special work (SLDA inverse + covariance updates).
        let special_ms = w.special_macs / (self.inverse_lanes * config.clock_mhz * 1e6) * 1e3;

        // Replay traffic not already accounted inside the GEMM stream.
        let replay_traffic_ms = w.offchip_replay_bytes / (config.dram_gb_s * 1e9) * 1e3;

        let latency_ms = gemm_ms + special_ms + replay_traffic_ms;
        let energy_j = self.power_w * latency_ms * 1e-3
            + self.energy.bfp_macs_j(report.macs as f64)
            + self.energy.fp16_macs_j(w.special_macs)
            + self
                .energy
                .dram_j(report.dram_bytes as f64 + w.offchip_replay_bytes)
            + self.energy.sram_j(w.onchip_bytes);
        CostReport {
            latency_ms,
            energy_j,
            compute_ms: gemm_ms + special_ms,
            weight_stream_ms: 0.0,
            replay_traffic_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NominalModel, SystolicAccelerator};
    use chameleon_core::StepTrace;

    fn workload(t: StepTrace) -> Workload {
        Workload::from_trace(
            &t.per_input().expect("inputs"),
            &NominalModel::mobilenet_v1(),
        )
    }

    fn chameleon() -> Workload {
        workload(StepTrace {
            inputs: 10,
            trunk_passes: 10,
            head_fwd_passes: 120,
            head_bwd_passes: 120,
            onchip_sample_reads: 100,
            onchip_sample_writes: 10,
            offchip_latent_reads: 10,
            offchip_latent_writes: 1,
            ..StepTrace::new()
        })
    }

    fn slda() -> Workload {
        workload(StepTrace {
            inputs: 1,
            trunk_passes: 1,
            covariance_updates: 1,
            matrix_inversions: 1,
            inversion_dim: 1024,
            ..StepTrace::new()
        })
    }

    #[test]
    fn cycle_sim_agrees_with_analytical_model_within_a_small_factor() {
        let analytical = SystolicAccelerator::new();
        let cycle = CycleSimDevice::new();
        let w = chameleon();
        let a = analytical.cost(&w).latency_ms;
        let c = cycle.cost(&w).latency_ms;
        let ratio = (a / c).max(c / a);
        assert!(
            ratio < 4.0,
            "models disagree: analytical {a} ms vs cycle {c} ms"
        );
    }

    #[test]
    fn slda_penalty_survives_the_cycle_model() {
        let cycle = CycleSimDevice::new();
        let ch = cycle.cost(&chameleon());
        let sl = cycle.cost(&slda());
        assert!(
            sl.latency_ms > 4.0 * ch.latency_ms,
            "SLDA {} vs Chameleon {}",
            sl.latency_ms,
            ch.latency_ms
        );
    }

    #[test]
    fn more_trained_rows_cost_more_cycles() {
        let cycle = CycleSimDevice::new();
        let small = workload(StepTrace {
            inputs: 1,
            trunk_passes: 1,
            head_fwd_passes: 2,
            head_bwd_passes: 2,
            ..StepTrace::new()
        });
        let large = workload(StepTrace {
            inputs: 1,
            trunk_passes: 1,
            head_fwd_passes: 20,
            head_bwd_passes: 20,
            ..StepTrace::new()
        });
        assert!(cycle.cost(&large).latency_ms > cycle.cost(&small).latency_ms);
    }

    #[test]
    fn empty_workload_costs_nothing() {
        let cycle = CycleSimDevice::new();
        let report = cycle.cost(&Workload::default());
        assert_eq!(report.latency_ms, 0.0);
    }
}
