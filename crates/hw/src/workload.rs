//! Per-image workload derived from a strategy trace.

use chameleon_core::PerInputTrace;

use crate::NominalModel;

/// Average per-image work of a continual-learning method under the nominal
/// MobileNetV1 shapes — the quantity each [`Device`](crate::Device) prices.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Workload {
    /// Frozen-trunk MACs per image (new input + raw-replay re-extraction).
    pub trunk_macs: f64,
    /// Trainable-head MACs per image (forward + backward over all trained
    /// rows).
    pub head_macs: f64,
    /// Method-specific MACs per image (SLDA covariance + pseudo-inverse).
    pub special_macs: f64,
    /// Bytes served from the on-chip replay store per image.
    pub onchip_bytes: f64,
    /// Bytes of replay data crossing the DRAM interface per image.
    pub offchip_replay_bytes: f64,
    /// Replay elements fetched from off-chip memory per image (drives the
    /// sequential-processing penalty on weight-streaming devices).
    pub offchip_replay_elements: f64,
    /// Replay elements served on-chip per image.
    pub onchip_replay_elements: f64,
    /// Samples trained per image (incoming + replay rows).
    pub trained_rows: f64,
}

impl Workload {
    /// Builds the per-image workload from a recorded per-input trace.
    pub fn from_trace(per: &PerInputTrace, model: &NominalModel) -> Self {
        let head_rows = per.head_fwd_passes.max(per.head_bwd_passes);
        Self {
            trunk_macs: per.trunk_passes * model.trunk_macs,
            head_macs: per.head_fwd_passes * model.head_fwd_macs
                + per.head_bwd_passes * model.head_bwd_macs,
            special_macs: per.covariance_updates * model.covariance_update_macs()
                + per.matrix_inversions * model.inverse_macs(),
            onchip_bytes: (per.onchip_sample_reads + per.onchip_sample_writes) * model.latent_bytes,
            offchip_replay_bytes: (per.offchip_latent_reads + per.offchip_latent_writes)
                * model.latent_bytes
                + (per.offchip_raw_reads + per.offchip_raw_writes) * model.raw_bytes,
            offchip_replay_elements: per.offchip_latent_reads + per.offchip_raw_reads,
            onchip_replay_elements: per.onchip_sample_reads,
            trained_rows: head_rows,
        }
    }

    /// Total MACs per image.
    pub fn total_macs(&self) -> f64 {
        self.trunk_macs + self.head_macs + self.special_macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_core::StepTrace;

    fn latent_replay_like_trace() -> PerInputTrace {
        // 1 input, 10 off-chip latent replays per image, 11 trained rows.
        StepTrace {
            inputs: 10,
            trunk_passes: 10,
            head_fwd_passes: 110,
            head_bwd_passes: 110,
            offchip_latent_reads: 100,
            offchip_latent_writes: 10,
            ..StepTrace::new()
        }
        .per_input()
        .expect("non-empty")
    }

    #[test]
    fn workload_scales_with_trace() {
        let m = NominalModel::mobilenet_v1();
        let w = Workload::from_trace(&latent_replay_like_trace(), &m);
        assert!((w.trunk_macs - m.trunk_macs).abs() < 1.0);
        assert!((w.head_macs - 11.0 * (m.head_fwd_macs + m.head_bwd_macs)).abs() < 1.0);
        assert!((w.offchip_replay_elements - 10.0).abs() < 1e-9);
        assert!((w.offchip_replay_bytes - 11.0 * m.latent_bytes).abs() < 1.0);
        assert_eq!(w.special_macs, 0.0);
        assert!((w.trained_rows - 11.0).abs() < 1e-9);
    }

    #[test]
    fn slda_trace_prices_inverse() {
        let m = NominalModel::mobilenet_v1();
        let per = StepTrace {
            inputs: 5,
            trunk_passes: 5,
            covariance_updates: 5,
            matrix_inversions: 5,
            inversion_dim: 1024,
            ..StepTrace::new()
        }
        .per_input()
        .expect("non-empty");
        let w = Workload::from_trace(&per, &m);
        assert!(
            w.special_macs > 2.0e9,
            "inverse should dominate: {}",
            w.special_macs
        );
        assert_eq!(w.head_macs, 0.0);
    }

    #[test]
    fn raw_replay_counts_raw_bytes() {
        let m = NominalModel::mobilenet_v1();
        let per = StepTrace {
            inputs: 1,
            offchip_raw_reads: 10,
            ..StepTrace::new()
        }
        .per_input()
        .expect("non-empty");
        let w = Workload::from_trace(&per, &m);
        assert!((w.offchip_replay_bytes - 10.0 * m.raw_bytes).abs() < 1.0);
    }
}
