//! Memory-hierarchy simulator: scratchpad partitions + a DRAM timing model.
//!
//! The paper's argument rests on the asymmetry between a small on-chip
//! SRAM and a large off-chip DRAM. This module models that hierarchy one
//! level deeper than the bandwidth constants in the device models:
//!
//! * [`Scratchpad`] — a capacity-budgeted on-chip memory with named
//!   partitions (weight buffer, activation buffer, the short-term replay
//!   store). Allocation failure is exactly the "replay buffer does not fit
//!   on-chip" condition that motivates the dual-memory design.
//! * [`DramModel`] — a single-bank open-page DRAM timing model: accesses
//!   that hit the open row pay only CAS latency; row misses pay
//!   precharge + activate. Sequential streams (weights) hit the row buffer
//!   almost always; *scattered replay fetches from a multi-MB buffer miss
//!   almost always* — the microarchitectural reason random replay reads are
//!   more expensive per byte than their size suggests.
//! * [`MemoryHierarchy`] — glues the two together and prices replay fetch
//!   patterns ([`AccessPattern`]).
//!
//! # Example
//!
//! ```
//! use chameleon_hw::memsim::{AccessPattern, MemoryHierarchy};
//!
//! let mut hierarchy = MemoryHierarchy::zcu102();
//! // Latent Replay: ten 32 KiB samples scattered across a 48 MB buffer.
//! let scattered = hierarchy.replay_fetch(10, 32 * 1024, AccessPattern::Scattered { seed: 1 });
//! let mut hierarchy2 = MemoryHierarchy::zcu102();
//! let streamed = hierarchy2.replay_fetch(10, 32 * 1024, AccessPattern::Sequential { start: 0 });
//! assert!(scattered > streamed);
//! ```

use std::collections::BTreeMap;

use chameleon_replay::StorePlacement;
use chameleon_tensor::Prng;

/// Error returned when a scratchpad partition cannot be allocated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocatePartitionError {
    /// Partition that failed.
    pub name: String,
    /// Requested bytes.
    pub requested: usize,
    /// Bytes still free.
    pub available: usize,
}

impl std::fmt::Display for AllocatePartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partition `{}` needs {} bytes but only {} remain on-chip",
            self.name, self.requested, self.available
        )
    }
}

impl std::error::Error for AllocatePartitionError {}

/// A capacity-budgeted on-chip memory with named partitions.
#[derive(Clone, Debug)]
pub struct Scratchpad {
    capacity: usize,
    partitions: BTreeMap<String, usize>,
}

impl Scratchpad {
    /// Creates a scratchpad of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "scratchpad capacity must be positive");
        Self {
            capacity,
            partitions: BTreeMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes not yet reserved.
    pub fn available(&self) -> usize {
        self.capacity - self.partitions.values().sum::<usize>()
    }

    /// Reserves a named partition.
    ///
    /// # Errors
    ///
    /// Returns [`AllocatePartitionError`] when the remaining capacity is
    /// insufficient or the name is taken.
    pub fn allocate(&mut self, name: &str, bytes: usize) -> Result<(), AllocatePartitionError> {
        if self.partitions.contains_key(name) || bytes > self.available() {
            return Err(AllocatePartitionError {
                name: name.to_string(),
                requested: bytes,
                available: self.available(),
            });
        }
        self.partitions.insert(name.to_string(), bytes);
        Ok(())
    }

    /// Releases a partition, returning its size.
    pub fn free(&mut self, name: &str) -> Option<usize> {
        self.partitions.remove(name)
    }

    /// Size of a partition, if present.
    pub fn partition(&self, name: &str) -> Option<usize> {
        self.partitions.get(name).copied()
    }

    /// Partition names in deterministic order.
    pub fn partition_names(&self) -> Vec<&str> {
        self.partitions.keys().map(String::as_str).collect()
    }
}

/// Access statistics of the DRAM model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Bursts that hit the open row.
    pub row_hits: u64,
    /// Bursts whose precharge + activate stalled the requester.
    pub row_misses: u64,
    /// Row misses whose activate was hidden behind a predictable stream
    /// (bank-interleaved prefetch).
    pub hidden_misses: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total cycles spent in DRAM.
    pub cycles: u64,
}

impl DramStats {
    /// Row-buffer hit rate over all bursts.
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Open-page DRAM timing model with bank-interleaved prefetch (DDR-class
/// default timings at the accelerator clock).
///
/// The model distinguishes *predictable* accesses (streaming: the next
/// address is known, so the controller activates the next row in another
/// bank while the current one drains — the miss is hidden) from
/// *data-dependent* accesses (a replay sample's address comes from the
/// sampling RNG at request time, so nothing can be activated early and
/// the full precharge + activate latency stalls the requester).
#[derive(Clone, Debug)]
pub struct DramModel {
    /// Row-buffer size in bytes (2 KiB typical).
    pub row_bytes: usize,
    /// Burst granularity in bytes (64 B).
    pub burst_bytes: usize,
    /// Cycles to transfer one burst once the row is open.
    pub cas_cycles: u64,
    /// Extra cycles on an exposed row miss (precharge + activate).
    pub row_miss_cycles: u64,
    /// Banks available for interleaved prefetch.
    pub banks: usize,
    open_rows: Vec<Option<u64>>,
    /// Transfer cycles accumulated since the last miss — the window a
    /// predictable next-row activate can hide under.
    overlap_credit: u64,
    stats: DramStats,
}

impl DramModel {
    /// DDR4-ish timings as seen from a 150 MHz accelerator: CAS ≈ 4
    /// cycles per 64 B burst in-page, ~18 extra on an exposed row miss,
    /// 8 banks.
    pub fn ddr4() -> Self {
        Self {
            row_bytes: 2048,
            burst_bytes: 64,
            cas_cycles: 4,
            row_miss_cycles: 18,
            banks: 8,
            open_rows: vec![None; 8],
            overlap_credit: 0,
            stats: DramStats::default(),
        }
    }

    /// Performs one contiguous access; returns the cycles it took.
    /// `prefetchable` marks addresses the controller knew in advance
    /// (streaming weights/outputs) — their row misses can hide behind the
    /// preceding transfer. Data-dependent fetches must pass `false`.
    pub fn access(&mut self, addr: u64, bytes: usize, prefetchable: bool) -> u64 {
        let mut cycles = 0;
        let mut offset = 0usize;
        let mut first_burst = true;
        while offset < bytes {
            let burst_addr = addr + offset as u64;
            let row = burst_addr / self.row_bytes as u64;
            let bank = (row % self.banks as u64) as usize;
            if self.open_rows[bank] == Some(row) {
                self.stats.row_hits += 1;
                cycles += self.cas_cycles;
                self.overlap_credit =
                    (self.overlap_credit + self.cas_cycles).min(self.row_miss_cycles);
            } else {
                // Within one contiguous access, bursts after the first are
                // sequential and therefore predictable regardless of how
                // the access itself was addressed.
                let predictable = prefetchable || !first_burst;
                if predictable && self.overlap_credit >= self.row_miss_cycles {
                    self.stats.hidden_misses += 1;
                    cycles += self.cas_cycles;
                } else {
                    self.stats.row_misses += 1;
                    cycles += self.cas_cycles + self.row_miss_cycles;
                }
                self.open_rows[bank] = Some(row);
                self.overlap_credit = 0;
            }
            first_burst = false;
            offset += self.burst_bytes;
        }
        self.stats.bytes += bytes as u64;
        self.stats.cycles += cycles;
        cycles
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }
}

/// Soft-error (single-event-upset) rates of the two memory levels, in
/// expected bit flips per stored bit per stream tick (one tick = one
/// streamed sample).
///
/// The asymmetry mirrors the hierarchy itself: off-chip DRAM retains data
/// by charge on capacitors and accumulates retention/disturb errors at a
/// much higher rate than the flip-flop-based on-chip BRAM, so Chameleon's
/// DRAM-resident long-term store sees more upsets per resident sample than
/// the on-chip short-term store. Absolute magnitudes here are knobs for
/// fault-injection sweeps, not field-measured FIT rates; only the SRAM/DRAM
/// ratio is meant to be physically suggestive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoftErrorModel {
    /// Upsets per stored bit per tick in on-chip SRAM/BRAM.
    pub sram_flips_per_bit_per_tick: f64,
    /// Upsets per stored bit per tick in off-chip DRAM.
    pub dram_flips_per_bit_per_tick: f64,
}

impl SoftErrorModel {
    /// DRAM-to-SRAM upset-rate ratio used by the device defaults.
    pub const DRAM_TO_SRAM_RATIO: f64 = 16.0;

    /// A perfectly reliable memory system (no upsets).
    pub fn none() -> Self {
        Self {
            sram_flips_per_bit_per_tick: 0.0,
            dram_flips_per_bit_per_tick: 0.0,
        }
    }

    /// Baseline rates for the ZCU102-class hierarchy: a nominal DRAM rate
    /// with SRAM [`SoftErrorModel::DRAM_TO_SRAM_RATIO`]× lower.
    pub fn zcu102() -> Self {
        Self::from_dram_rate(1e-8)
    }

    /// Builds a model from a DRAM upset rate, deriving the SRAM rate via
    /// the fixed [`SoftErrorModel::DRAM_TO_SRAM_RATIO`].
    pub fn from_dram_rate(dram_flips_per_bit_per_tick: f64) -> Self {
        Self {
            sram_flips_per_bit_per_tick: dram_flips_per_bit_per_tick / Self::DRAM_TO_SRAM_RATIO,
            dram_flips_per_bit_per_tick,
        }
    }

    /// Scales both rates by `factor` (accelerated-aging sweeps).
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            sram_flips_per_bit_per_tick: self.sram_flips_per_bit_per_tick * factor,
            dram_flips_per_bit_per_tick: self.dram_flips_per_bit_per_tick * factor,
        }
    }

    /// Whether both rates are exactly zero.
    pub fn is_zero(&self) -> bool {
        self.sram_flips_per_bit_per_tick == 0.0 && self.dram_flips_per_bit_per_tick == 0.0
    }
}

/// Where replay samples are read from within their buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPattern {
    /// Samples laid out back-to-back starting at `start` (streaming).
    Sequential {
        /// Base address of the stream.
        start: u64,
    },
    /// Samples at uniformly random offsets in the buffer (reservoir reads).
    Scattered {
        /// Seed of the address stream.
        seed: u64,
    },
}

/// The two-level hierarchy: an on-chip scratchpad (1 cycle/word, modeled
/// as free next to DRAM) and the DRAM model.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    /// The on-chip scratchpad.
    pub scratchpad: Scratchpad,
    /// The off-chip DRAM.
    pub dram: DramModel,
    /// Size of the off-chip replay region scattered reads land in.
    pub replay_region_bytes: u64,
}

impl MemoryHierarchy {
    /// The ZCU102 configuration: 2.8 MB of BRAM scratchpad, DDR4, and a
    /// 48 MB off-chip replay region (Latent Replay's 1500-sample buffer).
    pub fn zcu102() -> Self {
        Self {
            scratchpad: Scratchpad::new(2_844 * 1024),
            dram: DramModel::ddr4(),
            replay_region_bytes: 48 * 1024 * 1024,
        }
    }

    /// Fetches `n` replay samples of `bytes_per_sample` from DRAM under the
    /// given pattern; returns total DRAM cycles. On-chip fetches cost no
    /// DRAM cycles by definition — call nothing for them.
    pub fn replay_fetch(
        &mut self,
        n: usize,
        bytes_per_sample: usize,
        pattern: AccessPattern,
    ) -> u64 {
        let mut cycles = 0;
        match pattern {
            AccessPattern::Sequential { start } => {
                for i in 0..n {
                    cycles += self.dram.access(
                        start + (i * bytes_per_sample) as u64,
                        bytes_per_sample,
                        true,
                    );
                }
            }
            AccessPattern::Scattered { seed } => {
                let mut rng = Prng::new(seed);
                let slots = (self.replay_region_bytes / bytes_per_sample as u64).max(1);
                for _ in 0..n {
                    let slot = rng.below(slots as usize) as u64;
                    // The slot index is produced by the sampling RNG at
                    // request time: the controller cannot prefetch it.
                    cycles +=
                        self.dram
                            .access(slot * bytes_per_sample as u64, bytes_per_sample, false);
                }
            }
        }
        cycles
    }

    /// Whether a replay store of `bytes` can be placed on-chip next to the
    /// accelerator's own partitions.
    pub fn replay_store_fits_on_chip(&self, bytes: usize) -> bool {
        bytes <= self.scratchpad.available()
    }

    /// Where a replay store of `bytes` physically lives on this device:
    /// on-chip if it fits in the scratchpad, off-chip otherwise. This is
    /// the same placement decision the traffic model prices, and the one
    /// that selects a store's soft-error rate under fault injection.
    pub fn placement_for_store(&self, bytes: usize) -> StorePlacement {
        if self.replay_store_fits_on_chip(bytes) {
            StorePlacement::OnChipSram
        } else {
            StorePlacement::OffChipDram
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratchpad_allocates_and_frees() {
        let mut s = Scratchpad::new(1000);
        s.allocate("weights", 600).expect("fits");
        assert_eq!(s.available(), 400);
        let err = s.allocate("acts", 500).expect_err("too big");
        assert_eq!(err.available, 400);
        assert!(err.to_string().contains("acts"));
        assert_eq!(s.free("weights"), Some(600));
        assert_eq!(s.available(), 1000);
        assert!(s.partition("weights").is_none());
    }

    #[test]
    fn duplicate_partition_is_rejected() {
        let mut s = Scratchpad::new(100);
        s.allocate("a", 10).expect("fits");
        assert!(s.allocate("a", 10).is_err());
        assert_eq!(s.partition_names(), vec!["a"]);
    }

    #[test]
    fn sequential_access_hits_the_row_buffer() {
        let mut dram = DramModel::ddr4();
        // 2 KiB = one row = 32 bursts: 1 exposed miss + 31 hits.
        dram.access(0, 2048, true);
        let stats = dram.stats();
        assert_eq!(stats.row_misses, 1);
        assert_eq!(stats.row_hits, 31);
        assert!(stats.hit_rate() > 0.95);
    }

    #[test]
    fn long_stream_hides_row_misses_behind_prefetch() {
        let mut dram = DramModel::ddr4();
        // 16 KiB stream = 8 rows: first miss exposed, the rest hidden.
        dram.access(0, 16 * 1024, true);
        let stats = dram.stats();
        assert_eq!(stats.row_misses, 1);
        assert_eq!(stats.hidden_misses, 7);
    }

    #[test]
    fn strided_dependent_access_misses_every_row() {
        let mut dram = DramModel::ddr4();
        for i in 0..16 {
            dram.access(i * 4096, 64, false); // fresh row, data-dependent
        }
        let stats = dram.stats();
        assert_eq!(stats.row_misses, 16);
        assert_eq!(stats.row_hits, 0);
        assert_eq!(stats.hidden_misses, 0);
    }

    #[test]
    fn cycle_arithmetic_is_exact() {
        let mut dram = DramModel::ddr4();
        // One 128-byte dependent access in a fresh row: exposed miss burst
        // (4+18) + in-row hit (4).
        let cycles = dram.access(0, 128, false);
        assert_eq!(cycles, 22 + 4);
    }

    #[test]
    fn scattered_replay_costs_more_than_streamed() {
        let mut scattered = MemoryHierarchy::zcu102();
        let mut streamed = MemoryHierarchy::zcu102();
        let a = scattered.replay_fetch(10, 32 * 1024, AccessPattern::Scattered { seed: 3 });
        let b = streamed.replay_fetch(10, 32 * 1024, AccessPattern::Sequential { start: 0 });
        assert!(a > b, "scattered {a} should exceed streamed {b}");
        // The stream pays one exposed miss in total; scattered pays one
        // per data-dependent sample fetch.
        assert_eq!(streamed.dram.stats().row_misses, 1);
        assert!(scattered.dram.stats().row_misses >= 9);
    }

    #[test]
    fn short_term_store_fits_but_long_term_does_not() {
        let mut h = MemoryHierarchy::zcu102();
        // Accelerator partitions first (Table III configuration).
        h.scratchpad.allocate("weights", 2048 * 1024).expect("fits");
        h.scratchpad
            .allocate("activations", 456 * 1024)
            .expect("fits");
        // Chameleon's 10-latent short-term store fits…
        assert!(h.replay_store_fits_on_chip(10 * 32 * 1024));
        // …but even the smallest Table I long-term buffer does not.
        assert!(!h.replay_store_fits_on_chip(100 * 32 * 1024));
    }

    #[test]
    fn soft_error_model_keeps_hierarchy_asymmetry() {
        let m = SoftErrorModel::zcu102();
        assert!(m.dram_flips_per_bit_per_tick > m.sram_flips_per_bit_per_tick);
        let scaled = m.scaled(100.0);
        assert!(
            (scaled.dram_flips_per_bit_per_tick / m.dram_flips_per_bit_per_tick - 100.0).abs()
                < 1e-9
        );
        assert_eq!(
            scaled.dram_flips_per_bit_per_tick / scaled.sram_flips_per_bit_per_tick,
            SoftErrorModel::DRAM_TO_SRAM_RATIO
        );
        assert!(SoftErrorModel::none().is_zero());
        assert!(!m.is_zero());
    }

    #[test]
    fn replay_fetch_accounts_bytes() {
        let mut h = MemoryHierarchy::zcu102();
        h.replay_fetch(5, 1024, AccessPattern::Sequential { start: 0 });
        assert_eq!(h.dram.stats().bytes, 5 * 1024);
    }
}
