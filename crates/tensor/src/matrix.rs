//! Row-major dense `f32` matrix.

use crate::Prng;

/// A dense, row-major `f32` matrix.
///
/// The type is intentionally small: it provides exactly the operations the
/// training loop and the SLDA baseline need, with shape checks on every
/// binary operation. All storage is a single contiguous `Vec<f32>`.
///
/// # Example
///
/// ```
/// use chameleon_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or the input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix with entries drawn from a standard normal
    /// distribution scaled by `1/sqrt(cols)` (Glorot-like fan-in scaling is
    /// left to callers; this is the raw `N(0, 1)` fill).
    pub fn randn(rows: usize, cols: usize, rng: &mut Prng) -> Self {
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.randn();
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = value;
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: ({}x{}) · ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // memory in both `rhs` and `out`.
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ · ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &a_ki) in a_row.iter().enumerate() {
                if a_ki == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ki * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: ({}x{}) · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let dot: f32 = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
                out.data[i * rhs.rows + j] = dot;
            }
        }
        out
    }

    /// In-place `self += alpha * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Self) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "axpy shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiply `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Adds `vector` (length = `cols`) to every row — a broadcast bias add.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, vector: &[f32]) {
        assert_eq!(vector.len(), self.cols, "broadcast length must equal cols");
        for r in 0..self.rows {
            for (a, &b) in self.row_mut(r).iter_mut().zip(vector) {
                *a += b;
            }
        }
    }

    /// Sums the rows into a single `cols`-length vector.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Builds a matrix by stacking equal-length row vectors.
    ///
    /// Returns `None` when `rows` is empty or the lengths disagree.
    pub fn try_from_row_iter<'a, I>(rows: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut data = Vec::new();
        let mut cols = None;
        let mut count = 0usize;
        for row in rows {
            match cols {
                None => cols = Some(row.len()),
                Some(c) if c != row.len() => return None,
                _ => {}
            }
            data.extend_from_slice(row);
            count += 1;
        }
        let cols = cols?;
        if cols == 0 || count == 0 {
            return None;
        }
        Some(Self {
            rows: count,
            cols,
            data,
        })
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4}", self.get(r, c))?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Matrix::zeros(0, 4);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = Prng::new(1);
        let a = Matrix::randn(5, 3, &mut rng);
        let b = Matrix::randn(5, 4, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transposed().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!(close(*x, *y), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = Prng::new(2);
        let a = Matrix::randn(4, 6, &mut rng);
        let b = Matrix::randn(3, 6, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transposed());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!(close(*x, *y), "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut rng = Prng::new(3);
        let a = Matrix::randn(7, 2, &mut rng);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&v| close(v, 2.0)));
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_rows_reduces_correctly() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.sum_rows(), vec![9.0, 12.0]);
    }

    #[test]
    fn try_from_row_iter_rejects_ragged_input() {
        let rows: Vec<&[f32]> = vec![&[1.0, 2.0], &[3.0]];
        assert!(Matrix::try_from_row_iter(rows).is_none());
    }

    #[test]
    fn try_from_row_iter_stacks_rows() {
        let rows: Vec<&[f32]> = vec![&[1.0, 2.0], &[3.0, 4.0]];
        let m = Matrix::try_from_row_iter(rows).expect("valid rows");
        assert_eq!(m, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    }

    #[test]
    fn frobenius_norm_of_unit_row() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!(close(m.frobenius_norm(), 5.0));
    }

    #[test]
    fn display_renders_without_panicking() {
        let m = Matrix::randn(10, 10, &mut Prng::new(0));
        let s = format!("{m}");
        assert!(s.contains("Matrix 10x10"));
    }
}
