//! Small dense linear algebra: regularized inversion for the SLDA baseline.
//!
//! SLDA (Hayes & Kanan, 2020) maintains a running shared covariance matrix
//! `Σ` over latent features and classifies with weights `W = Λ · μ` where
//! `Λ = [(1-ε)Σ + εI]⁻¹`. The paper highlights that this (pseudo-)inverse is
//! the dominant `O(N³)` cost that makes SLDA slow on edge devices — the
//! operation count of [`invert_regularized`] is exactly what
//! `chameleon-hw` prices when reproducing Table II's EdgeTPU row.

use crate::Matrix;

/// Error returned when a matrix cannot be inverted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvertMatrixError {
    /// Pivot column where elimination failed.
    pub pivot: usize,
}

impl std::fmt::Display for InvertMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at pivot column {}", self.pivot)
    }
}

impl std::error::Error for InvertMatrixError {}

/// Inverts `(1-shrinkage)·A + shrinkage·I` by Gauss–Jordan elimination with
/// partial pivoting.
///
/// The shrinkage term is SLDA's standard ridge regularizer; with
/// `shrinkage > 0` the blended matrix is well-conditioned for any positive
/// semi-definite `A`, so in practice this never fails for covariance inputs.
///
/// Returns the inverse together with the number of fused multiply-adds
/// performed, which the hardware model uses as the operation count of the
/// pseudo-inverse.
///
/// # Errors
///
/// Returns [`InvertMatrixError`] when a pivot underflows (singular input and
/// `shrinkage == 0`).
///
/// # Panics
///
/// Panics if `A` is not square.
///
/// # Example
///
/// ```
/// use chameleon_tensor::{linalg, Matrix};
///
/// # fn main() -> Result<(), linalg::InvertMatrixError> {
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let (inv, _macs) = linalg::invert_regularized(&a, 0.0)?;
/// let product = a.matmul(&inv);
/// assert!((product.get(0, 0) - 1.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn invert_regularized(a: &Matrix, shrinkage: f32) -> Result<(Matrix, u64), InvertMatrixError> {
    assert_eq!(
        a.rows(),
        a.cols(),
        "invert_regularized requires a square matrix"
    );
    let n = a.rows();
    let mut macs: u64 = 0;

    // Augmented [M | I] working copy in f64 for pivoting stability.
    let mut work = vec![0.0f64; n * 2 * n];
    for r in 0..n {
        for c in 0..n {
            let blended = (1.0 - shrinkage) * a.get(r, c) + if r == c { shrinkage } else { 0.0 };
            work[r * 2 * n + c] = f64::from(blended);
        }
        work[r * 2 * n + n + r] = 1.0;
    }

    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        for r in col + 1..n {
            if work[r * 2 * n + col].abs() > work[pivot_row * 2 * n + col].abs() {
                pivot_row = r;
            }
        }
        let pivot = work[pivot_row * 2 * n + col];
        if pivot.abs() < 1e-12 {
            return Err(InvertMatrixError { pivot: col });
        }
        if pivot_row != col {
            for c in 0..2 * n {
                work.swap(col * 2 * n + c, pivot_row * 2 * n + c);
            }
        }
        // Normalize pivot row.
        let inv_pivot = 1.0 / pivot;
        for c in 0..2 * n {
            work[col * 2 * n + c] *= inv_pivot;
        }
        macs += 2 * n as u64;
        // Eliminate the column from every other row.
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = work[r * 2 * n + col];
            if factor == 0.0 {
                continue;
            }
            for c in 0..2 * n {
                work[r * 2 * n + c] -= factor * work[col * 2 * n + c];
            }
            macs += 2 * n as u64;
        }
    }

    let mut inv = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            inv.set(r, c, work[r * 2 * n + n + c] as f32);
        }
    }
    Ok((inv, macs))
}

/// Rank-1 symmetric update `A += alpha · (x · xᵀ)` used by SLDA's running
/// covariance.
///
/// # Panics
///
/// Panics if `A` is not square or `x.len() != A.rows()`.
pub fn rank1_update(a: &mut Matrix, alpha: f32, x: &[f32]) {
    assert_eq!(a.rows(), a.cols(), "rank1_update requires a square matrix");
    assert_eq!(
        x.len(),
        a.rows(),
        "vector length must match matrix dimension"
    );
    let n = x.len();
    for r in 0..n {
        let xr = x[r];
        if xr == 0.0 {
            continue;
        }
        let row = a.row_mut(r);
        for (c, &xc) in x.iter().enumerate() {
            row[c] += alpha * xr * xc;
        }
    }
}

/// Matrix–vector product `A · x`.
///
/// # Panics
///
/// Panics if `x.len() != A.cols()`.
pub fn matvec(a: &Matrix, x: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), a.cols(), "matvec length mismatch");
    a.iter_rows()
        .map(|row| row.iter().zip(x).map(|(r, v)| r * v).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prng;

    #[test]
    fn inverse_of_identity_is_identity() {
        let i = Matrix::identity(4);
        let (inv, _) = invert_regularized(&i, 0.0).expect("identity is invertible");
        for r in 0..4 {
            for c in 0..4 {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((inv.get(r, c) - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let mut rng = Prng::new(3);
        // Build a well-conditioned SPD matrix A = B·Bᵀ + I.
        let b = Matrix::randn(6, 6, &mut rng);
        let mut a = b.matmul_nt(&b);
        for i in 0..6 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let (inv, macs) = invert_regularized(&a, 0.0).expect("SPD is invertible");
        let prod = a.matmul(&inv);
        for r in 0..6 {
            for c in 0..6 {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((prod.get(r, c) - want).abs() < 1e-3, "({r},{c})");
            }
        }
        assert!(macs > 0);
    }

    #[test]
    fn singular_matrix_errors_without_shrinkage() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = invert_regularized(&a, 0.0).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn shrinkage_rescues_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let (inv, _) = invert_regularized(&a, 1e-2).expect("ridge makes it invertible");
        assert!(inv.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mac_count_scales_cubically() {
        let a8 = Matrix::identity(8);
        let a16 = Matrix::identity(16);
        let (_, m8) = invert_regularized(&a8, 0.0).unwrap();
        let (_, m16) = invert_regularized(&a16, 0.0).unwrap();
        // Identity skips eliminations, but normalization alone is O(n²);
        // dense matrices reach O(n³). Check monotone growth at least.
        assert!(m16 > m8);
        let mut rng = Prng::new(1);
        let d8 = Matrix::randn(8, 8, &mut rng).matmul_nt(&Matrix::identity(8));
        let d16 = Matrix::randn(16, 16, &mut rng).matmul_nt(&Matrix::identity(16));
        let (_, dm8) = invert_regularized(&d8, 0.5).unwrap();
        let (_, dm16) = invert_regularized(&d16, 0.5).unwrap();
        let ratio = dm16 as f64 / dm8 as f64;
        assert!(ratio > 6.0, "expected ~8x growth, got {ratio}");
    }

    #[test]
    fn rank1_update_matches_outer_product() {
        let mut a = Matrix::zeros(3, 3);
        rank1_update(&mut a, 2.0, &[1.0, 0.0, -1.0]);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 2), -2.0);
        assert_eq!(a.get(2, 2), 2.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Prng::new(5);
        let a = Matrix::randn(4, 3, &mut rng);
        let x = [1.0, -2.0, 0.5];
        let via_matmul = a.matmul(&Matrix::from_vec(3, 1, x.to_vec()));
        let via_matvec = matvec(&a, &x);
        for (m, v) in via_matmul.as_slice().iter().zip(&via_matvec) {
            assert!((m - v).abs() < 1e-5);
        }
    }
}
