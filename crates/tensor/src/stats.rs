//! Online statistics used by the experiment harness.
//!
//! Table I of the paper reports mean ± standard deviation over ten runs;
//! [`RunningMoments`] (Welford's algorithm) and [`MeanStd`] provide that
//! aggregation without storing the per-run values.

/// Welford online mean/variance accumulator.
///
/// # Example
///
/// ```
/// use chameleon_tensor::stats::RunningMoments;
///
/// let mut m = RunningMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert!((m.mean() - 5.0).abs() < 1e-6);
/// assert!((m.population_std() - 2.0).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f32) {
        self.count += 1;
        let x = f64::from(x);
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f32 {
        self.mean as f32
    }

    /// Population variance (divides by `n`; 0.0 for fewer than 2 samples).
    pub fn population_variance(&self) -> f32 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64) as f32
        }
    }

    /// Sample variance (divides by `n-1`; 0.0 for fewer than 2 samples).
    pub fn sample_variance(&self) -> f32 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64) as f32
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f32 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f32 {
        self.sample_variance().sqrt()
    }

    /// Collapses the accumulator into a [`MeanStd`] (sample std).
    pub fn to_mean_std(self) -> MeanStd {
        MeanStd {
            mean: self.mean(),
            std: self.sample_std(),
            runs: self.count,
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

impl FromIterator<f32> for RunningMoments {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let mut m = Self::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

/// A `mean ± std` summary over `runs` repetitions, as printed in Table I.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanStd {
    /// Mean over the runs.
    pub mean: f32,
    /// Sample standard deviation over the runs.
    pub std: f32,
    /// Number of runs aggregated.
    pub runs: u64,
}

impl MeanStd {
    /// Summarizes a slice of run results.
    pub fn from_samples(samples: &[f32]) -> Self {
        samples
            .iter()
            .copied()
            .collect::<RunningMoments>()
            .to_mean_std()
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.std)
    }
}

/// Fixed-width histogram over `[low, high)` with saturating edge bins,
/// used by the examples to visualize score distributions.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    low: f32,
    high: f32,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `low >= high`.
    pub fn new(low: f32, high: f32, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(low < high, "histogram range must be non-empty");
        Self {
            low,
            high,
            bins: vec![0; bins],
        }
    }

    /// Records one observation; out-of-range values clamp to the edge bins.
    pub fn push(&mut self, x: f32) {
        let n = self.bins.len();
        let t = (x - self.low) / (self.high - self.low);
        let idx = ((t * n as f32).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.bins[idx] += 1;
    }

    /// Bucket counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Renders a one-line sparkline (`▁▂▃▄▅▆▇█`) of the bucket counts.
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return GLYPHS[0].to_string().repeat(self.bins.len());
        }
        self.bins
            .iter()
            .map(|&b| GLYPHS[((b * 7) / max) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_mean_and_var() {
        let xs = [1.0f32, 2.5, -3.0, 4.0, 0.0, 2.0];
        let m: RunningMoments = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!((m.mean() - mean).abs() < 1e-6);
        assert!((m.population_variance() - var).abs() < 1e-5);
    }

    #[test]
    fn empty_moments_are_zero() {
        let m = RunningMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.sample_std(), 0.0);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut m = RunningMoments::new();
        m.push(5.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.mean(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut a: RunningMoments = xs[..3].iter().copied().collect();
        let b: RunningMoments = xs[3..].iter().copied().collect();
        a.merge(&b);
        let all: RunningMoments = xs.iter().copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-6);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-5);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0f32, 2.0];
        let mut a: RunningMoments = xs.iter().copied().collect();
        let before = a;
        a.merge(&RunningMoments::new());
        assert_eq!(a, before);
        let mut e = RunningMoments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn mean_std_formats_like_table1() {
        let ms = MeanStd {
            mean: 79.481,
            std: 0.994,
            runs: 10,
        };
        assert_eq!(ms.to_string(), "79.48 ± 0.99");
    }

    #[test]
    fn mean_std_from_samples() {
        let ms = MeanStd::from_samples(&[10.0, 12.0, 14.0]);
        assert!((ms.mean - 12.0).abs() < 1e-6);
        assert_eq!(ms.runs, 3);
        assert!((ms.std - 2.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [-1.0, 0.1, 0.3, 0.6, 0.9, 2.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.bins(), &[2, 1, 1, 2]);
    }

    #[test]
    fn sparkline_has_one_glyph_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        h.push(0.5);
        assert_eq!(h.sparkline().chars().count(), 5);
    }
}
