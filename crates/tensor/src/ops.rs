//! Element-wise kernels: softmax family, divergences, and small vector
//! helpers used throughout the training loop and the Chameleon sampling
//! rules (Eqs. 3–6 of the paper).

/// Numerically stable softmax over a logit slice, returned as a new vector.
///
/// # Example
///
/// ```
/// let p = chameleon_tensor::ops::softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    assert!(!logits.is_empty(), "softmax of empty slice");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = out.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        for v in &mut out {
            *v /= sum;
        }
    } else {
        // Degenerate logits (all -inf / NaN): fall back to uniform so
        // downstream KL terms stay finite.
        let u = 1.0 / out.len() as f32;
        out.fill(u);
    }
    out
}

/// Numerically stable log-softmax.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    assert!(!logits.is_empty(), "log_softmax of empty slice");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits.iter().map(|&l| (l - max).exp()).sum::<f32>().ln();
    logits.iter().map(|&l| l - max - log_sum).collect()
}

/// Index of the maximum element (first occurrence on ties).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Kullback–Leibler divergence `KL(p ‖ q)` between two discrete
/// distributions, in nats.
///
/// Zero entries of `p` contribute nothing; zero entries of `q` where `p > 0`
/// are floored at `1e-12` so the result stays finite — this matches the
/// "computationally inexpensive measure" role of Eq. 6, where the value is
/// squashed through `tanh` anyway.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    assert!(!p.is_empty(), "kl_divergence of empty distributions");
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            kl += pi * (pi / qi.max(1e-12)).ln();
        }
    }
    kl.max(0.0)
}

/// Cross-entropy `−log q[target]` of a probability vector against an integer
/// label, in nats, with the same `1e-12` floor as [`kl_divergence`].
///
/// # Panics
///
/// Panics if `target >= q.len()`.
pub fn cross_entropy(q: &[f32], target: usize) -> f32 {
    assert!(
        target < q.len(),
        "target {target} out of range ({})",
        q.len()
    );
    -q[target].max(1e-12).ln()
}

/// Euclidean (L2) distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Cosine similarity of two vectors; 0.0 when either norm vanishes.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// One-hot encodes `class` into a length-`num_classes` vector.
///
/// # Panics
///
/// Panics if `class >= num_classes`.
pub fn one_hot(class: usize, num_classes: usize) -> Vec<f32> {
    assert!(
        class < num_classes,
        "class {class} out of range ({num_classes})"
    );
    let mut v = vec![0.0; num_classes];
    v[class] = 1.0;
    v
}

/// The paper's Eq. 3 uncertainty statistic: `U_i = Σ_c |o(x_i)_c · y_c|`,
/// which with one-hot `y` reduces to the absolute logit of the true class.
/// A *low* `U` means the sample sits near the decision boundary and should
/// be replayed.
///
/// # Panics
///
/// Panics if `label >= logits.len()`.
pub fn logit_margin_uncertainty(logits: &[f32], label: usize) -> f32 {
    assert!(
        label < logits.len(),
        "label {label} out of range ({})",
        logits.len()
    );
    logits[label].abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[0.5, -1.0, 3.0, 0.0]);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_extreme_logits() {
        let p = softmax(&[1e30, -1e30, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_degenerate_falls_back_to_uniform() {
        let p = softmax(&[f32::NEG_INFINITY, f32::NEG_INFINITY]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let logits = [0.3, -2.0, 1.5];
        let ls = log_softmax(&logits);
        let s = softmax(&logits);
        for (l, p) in ls.iter().zip(&s) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_finds_first_max() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn kl_is_zero_for_identical_distributions() {
        let p = softmax(&[0.2, 0.8, -1.0]);
        assert!(kl_divergence(&p, &p).abs() < 1e-6);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        assert!(kl_divergence(&p, &q) > 0.5);
    }

    #[test]
    fn kl_stays_finite_with_zero_support() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!(kl_divergence(&p, &q).is_finite());
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let q = [0.25, 0.75];
        assert!((cross_entropy(&q, 1) - (-(0.75f32).ln())).abs() < 1e-6);
    }

    #[test]
    fn one_hot_sets_single_entry() {
        let v = one_hot(2, 4);
        assert_eq!(v, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn uncertainty_is_abs_true_class_logit() {
        let logits = [-3.0, 0.5, 2.0];
        assert!((logit_margin_uncertainty(&logits, 0) - 3.0).abs() < 1e-6);
        assert!((logit_margin_uncertainty(&logits, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
        assert_eq!(cosine_similarity(&a, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn l2_distance_matches_pythagoras() {
        assert!((l2_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }
}
