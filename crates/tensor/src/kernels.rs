//! Chunked, autovectorizable hot-path kernels.
//!
//! The scalar [`Matrix::matmul_nt`] computes each output element with a
//! single sequential `mul → add` chain, so the compiler cannot issue
//! more than one fused multiply-add per cycle without changing the
//! rounding order. The kernels here restructure the same reductions
//! into `LANES` *independent* accumulator streams over `chunks_exact`
//! blocks — exactly the shape LLVM's loop vectorizer turns into packed
//! SIMD adds — with a scalar pass over the ragged tail.
//!
//! # Numeric contract
//!
//! Reassociating a float reduction changes which roundings happen, so
//! chunked results are **not** guaranteed bit-identical to the scalar
//! reference. The equivalence suite (`tests/kernel_equivalence.rs`)
//! pins the contract instead: over every tested well-conditioned shape,
//! including ragged tails, each chunked dot product lands within
//! **2 ULPs** of the correctly-rounded f64 ground truth and within
//! **8 ULPs** of the scalar reference — the slack is the scalar chain's
//! own drift (one dependent sum reaches 5 ULPs from truth by length 70;
//! the four-lane tree stays at 2, having shorter dependent chains).
//! Mixed-sign reductions, where cancellation makes ULP distance
//! meaningless, carry a condition-scaled absolute bound instead. `max`
//! is associative, so the chunked softmax max-scan is bit-identical;
//! only its exp-sum carries the ULP bound.
//!
//! Because bit-for-bit replay determinism is a cross-crate contract
//! (golden checkpoints, fleet-vs-solo equality), the default `f32`
//! precision keeps the scalar kernels; the chunked path is selected
//! only alongside the quantized latent codec, where every run on either
//! side of a comparison uses the same kernel.

use crate::matrix::Matrix;

/// Independent accumulator streams per reduction. Four f32 lanes fill a
/// 128-bit vector register — the widest unit portable baselines
/// (SSE2/NEON) guarantee — and wider targets simply unroll further.
pub const LANES: usize = 4;

/// Chunked dot product: `LANES` independent partial sums over the
/// aligned prefix, scalar accumulation over the ragged tail, one final
/// reassociated combine.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_chunked(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_chunked length mismatch");
    let mut acc = [0.0f32; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for lane in 0..LANES {
            // Plain mul + add (not `mul_add`): on targets without native
            // FMA the fused form lowers to a libm call, which blocks
            // vectorization entirely; packed mul + packed add vectorize
            // on every baseline (SSE2/NEON).
            acc[lane] += ca[lane] * cb[lane];
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += x * y;
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// Chunked `A · Bᵀ` — the trainable head's forward projection
/// (`x · Wᵀ`), restructured so every output element is a
/// [`dot_chunked`] over two contiguous rows.
///
/// # Panics
///
/// Panics if the inner dimensions differ (`a.cols != b.cols`).
pub fn matmul_nt_chunked(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt_chunked shape mismatch: ({}x{}) · ({}x{})ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut data = Vec::with_capacity(m * n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for i in 0..m {
        let a_row = &a_data[i * k..(i + 1) * k];
        for j in 0..n {
            data.push(dot_chunked(a_row, &b_data[j * k..(j + 1) * k]));
        }
    }
    Matrix::from_vec(m, n, data)
}

/// Chunked numerically stable softmax. The max scan is chunked but
/// bit-identical to the scalar one (`max` is associative); the exp-sum
/// uses `LANES` accumulators and carries the module-level ULP bound.
/// Degenerate inputs (all `-inf` / NaN) fall back to uniform exactly
/// like [`crate::ops::softmax`].
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax_chunked(logits: &[f32]) -> Vec<f32> {
    assert!(!logits.is_empty(), "softmax_chunked of empty slice");
    let mut maxes = [f32::NEG_INFINITY; LANES];
    let mut chunks = logits.chunks_exact(LANES);
    for chunk in &mut chunks {
        for lane in 0..LANES {
            maxes[lane] = maxes[lane].max(chunk[lane]);
        }
    }
    let mut max = maxes.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    max = chunks.remainder().iter().copied().fold(max, f32::max);

    let mut out: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let mut acc = [0.0f32; LANES];
    let mut chunks = out.chunks_exact(LANES);
    for chunk in &mut chunks {
        for lane in 0..LANES {
            acc[lane] += chunk[lane];
        }
    }
    let tail: f32 = chunks.remainder().iter().sum();
    let sum = (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail;
    if sum > 0.0 && sum.is_finite() {
        for v in &mut out {
            *v /= sum;
        }
    } else {
        let u = 1.0 / out.len() as f32;
        out.fill(u);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prng;

    #[test]
    fn dot_chunked_matches_scalar_on_small_exact_cases() {
        // Integer-valued inputs keep every partial sum exact, so the
        // chunked and scalar orders must agree to the bit.
        let a: Vec<f32> = (1..=11).map(|i| i as f32).collect();
        let b: Vec<f32> = (1..=11).map(|i| (12 - i) as f32).collect();
        let scalar: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot_chunked(&a, &b), scalar);
        assert_eq!(dot_chunked(&[], &[]), 0.0);
        assert_eq!(dot_chunked(&[3.0], &[7.0]), 21.0);
    }

    #[test]
    fn matmul_nt_chunked_matches_scalar_on_exact_cases() {
        let mut rng = Prng::new(11);
        // Small integers: both orders are exact, results bit-identical.
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (4, 7, 3), (2, 16, 2)] {
            let a = Matrix::from_vec(
                m,
                k,
                (0..m * k).map(|_| (rng.below(9) as f32) - 4.0).collect(),
            );
            let b = Matrix::from_vec(
                n,
                k,
                (0..n * k).map(|_| (rng.below(9) as f32) - 4.0).collect(),
            );
            assert_eq!(matmul_nt_chunked(&a, &b), a.matmul_nt(&b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn softmax_chunked_sums_to_one_and_handles_degenerates() {
        for n in [1, 2, 3, 4, 5, 7, 8, 9, 50] {
            let logits: Vec<f32> = (0..n).map(|i| (i as f32 * 0.83).sin() * 3.0).collect();
            let p = softmax_chunked(&logits);
            let total: f32 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-5, "n={n} sums to {total}");
        }
        let degenerate = softmax_chunked(&[f32::NEG_INFINITY; 3]);
        assert_eq!(degenerate, vec![1.0 / 3.0; 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_chunked_rejects_mismatched_lengths() {
        dot_chunked(&[1.0], &[1.0, 2.0]);
    }
}
