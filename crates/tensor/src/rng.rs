//! Deterministic pseudo-random number generation.
//!
//! The experiment harness needs identical streams on every platform, so the
//! generator is implemented in-repo (xoshiro256** seeded through SplitMix64)
//! rather than relying on an external crate whose output could change across
//! versions.

/// A seedable, deterministic pseudo-random number generator.
///
/// Internally this is xoshiro256** with SplitMix64 seed expansion — the same
/// construction used by `rand`'s small RNGs — plus the sampling helpers the
/// continual-learning code needs (Gaussian draws, weighted choice, reservoir
/// updates, sampling without replacement).
///
/// # Example
///
/// ```
/// use chameleon_tensor::Prng;
///
/// let mut a = Prng::new(42);
/// let mut b = Prng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Prng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_gaussian: Option<f32>,
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion guarantees a non-zero xoshiro state even for
        // seed 0.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
            spare_gaussian: None,
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// experiment run or each strategy its own stream.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64();
        Self::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Use the top 24 bits for a uniformly distributed f32 mantissa.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform_in(&mut self, low: f32, high: f32) -> f32 {
        assert!(low < high, "uniform_in requires low < high");
        low + (high - low) * self.uniform()
    }

    /// Uniform integer in `[0, bound)` via Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        self.below_u64(bound as u64) as usize
    }

    /// Uniform integer in `[0, bound)` over the full `u64` domain.
    ///
    /// Callers whose bound is a lifetime counter (e.g. reservoir `seen`)
    /// must use this instead of `below(bound as usize)`: on 32-bit
    /// targets the `usize` cast silently truncates past 2³² and skews
    /// the draw.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below_u64(0) is meaningless");
        // Simple unbiased rejection sampling on the multiply-shift scheme.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Standard normal draw via the Box–Muller transform.
    pub fn randn(&mut self) -> f32 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        // Guard against log(0).
        let mut u1 = self.uniform();
        while u1 <= f32::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f32::consts::TAU * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    pub fn coin(&mut self, p: f32) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Samples an index proportionally to non-negative `weights`.
    ///
    /// Falls back to a uniform draw when every weight is zero or non-finite
    /// (the caller's distribution degenerated — e.g. all-zero uncertainty
    /// scores on the very first batch).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn weighted_choice(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "weighted_choice on empty weights");
        let total: f32 = weights
            .iter()
            .copied()
            .filter(|w| w.is_finite() && *w > 0.0)
            .sum();
        if total <= 0.0 || !total.is_finite() {
            return self.below(weights.len());
        }
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                target -= w;
                if target <= 0.0 {
                    return i;
                }
            }
        }
        // Floating-point underflow at the boundary: return last positive.
        weights
            .iter()
            .rposition(|w| w.is_finite() && *w > 0.0)
            .unwrap_or(weights.len() - 1)
    }

    /// Samples `k` distinct indices uniformly from `[0, n)` (partial
    /// Fisher–Yates). When `k >= n` every index is returned in shuffled
    /// order.
    pub fn sample_without_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::new(123);
        let mut b = Prng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Prng::new(9);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = Prng::new(4);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut rng = Prng::new(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_u64_matches_below_draw_for_draw() {
        // `below` delegates to `below_u64`, so the streams must be
        // identical — this is what keeps every seeded replay/reservoir
        // sequence stable across the u64-domain fix.
        let mut a = Prng::new(13);
        let mut b = Prng::new(13);
        for bound in [1usize, 2, 7, 1000, u32::MAX as usize] {
            assert_eq!(a.below(bound) as u64, b.below_u64(bound as u64));
        }
    }

    #[test]
    fn below_u64_reaches_beyond_the_u32_domain() {
        // Regression for the reservoir truncation bug: with a bound past
        // 2³², draws must cover the upper half of the range instead of
        // being folded into the low 32 bits.
        let mut rng = Prng::new(14);
        let bound = 1u64 << 40;
        let mut above_u32 = 0;
        for _ in 0..64 {
            let v = rng.below_u64(bound);
            assert!(v < bound);
            if v > u64::from(u32::MAX) {
                above_u32 += 1;
            }
        }
        assert!(above_u32 > 0, "no draw ever exceeded u32::MAX");
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = Prng::new(6);
        let n = 50_000;
        let draws: Vec<f32> = (0..n).map(|_| rng.randn()).collect();
        let mean = draws.iter().sum::<f32>() / n as f32;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weighted_choice_prefers_heavy_weights() {
        let mut rng = Prng::new(7);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_choice(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "{counts:?}");
    }

    #[test]
    fn weighted_choice_degenerate_falls_back_to_uniform() {
        let mut rng = Prng::new(8);
        let weights = [0.0, 0.0, 0.0];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.weighted_choice(&weights)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_choice_handles_nan_and_inf() {
        let mut rng = Prng::new(11);
        let weights = [f32::NAN, 1.0, f32::INFINITY];
        for _ in 0..100 {
            let i = rng.weighted_choice(&weights);
            assert!(i < 3);
        }
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = Prng::new(9);
        for _ in 0..100 {
            let mut s = rng.sample_without_replacement(20, 8);
            assert_eq!(s.len(), 8);
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 8);
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_without_replacement_clamps_k() {
        let mut rng = Prng::new(10);
        let s = rng.sample_without_replacement(3, 10);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = Prng::new(12);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
