//! Dense numerical kernels for the Chameleon reproduction.
//!
//! This crate is the numeric substrate shared by every other crate in the
//! workspace. It deliberately avoids external BLAS/ndarray dependencies so
//! the whole reproduction is self-contained and bit-for-bit deterministic:
//!
//! * [`Matrix`] — a small row-major `f32` matrix with the GEMM variants the
//!   training loop needs (`A·B`, `Aᵀ·B`, `A·Bᵀ`),
//! * [`ops`] — softmax-family element-wise kernels and divergences,
//! * [`Prng`] — a seedable xoshiro256** generator with Gaussian sampling and
//!   weighted/without-replacement sampling helpers,
//! * [`linalg`] — regularized symmetric inverse (Gauss–Jordan) used by the
//!   SLDA baseline,
//! * [`stats`] — Welford online moments and mean±std aggregation used by the
//!   multi-seed experiment harness.
//!
//! # Example
//!
//! ```
//! use chameleon_tensor::{Matrix, Prng};
//!
//! let mut rng = Prng::new(7);
//! let a = Matrix::randn(2, 3, &mut rng);
//! let b = Matrix::randn(3, 4, &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!((c.rows(), c.cols()), (2, 4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod linalg;
mod matrix;
pub mod ops;
mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use rng::Prng;
