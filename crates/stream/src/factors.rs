//! Environmental domain factors (OpenLORIS-Object structure).
//!
//! The real OpenLORIS-Object benchmark organizes its domains by four
//! *environmental factors*, each recorded at three difficulty levels:
//! **illumination**, **occlusion**, **object pixel size**, and **clutter**
//! (She et al., ICRA 2020). This module adds those factor semantics on top
//! of the base cluster geometry as per-sample raw-space transforms:
//!
//! * `Illumination` — multiplicative gain toward darkness,
//! * `Occlusion` — a contiguous fraction of the raw vector is zeroed
//!   (the occluder hides part of the object's evidence),
//! * `Clutter` — a scaled *other-class identity* vector is added (the
//!   clutter literally looks like a different object),
//! * `PixelSize` — local averaging (a small/low-resolution object loses
//!   high-frequency detail).
//!
//! Factors are an opt-in extension via
//! [`DatasetSpec::openloris_factored`](crate::DatasetSpec::openloris_factored);
//! the calibrated benchmarks of Tables I–II use the plain geometry.

use chameleon_tensor::Prng;

use crate::ConfigError;

/// One environmental factor at a difficulty level `1..=3`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DomainFactor {
    /// Multiplicative dimming; level 3 ≈ 45 % brightness.
    Illumination(u8),
    /// Contiguous zeroed span; level 3 hides ~45 % of the vector.
    Occlusion(u8),
    /// Additive distractor-object evidence; level 3 ≈ 0.9× object scale.
    Clutter(u8),
    /// Local averaging window; level 3 blurs over 7 neighbours.
    PixelSize(u8),
}

impl DomainFactor {
    /// The canonical 12-domain OpenLORIS factor schedule: each factor at
    /// levels 1–3.
    pub fn openloris_schedule() -> Vec<DomainFactor> {
        let mut schedule = Vec::with_capacity(12);
        for level in 1..=3 {
            schedule.push(Self::Illumination(level));
            schedule.push(Self::Occlusion(level));
            schedule.push(Self::Clutter(level));
            schedule.push(Self::PixelSize(level));
        }
        schedule
    }

    /// Difficulty level (1–3).
    pub fn level(&self) -> u8 {
        match *self {
            Self::Illumination(l) | Self::Occlusion(l) | Self::Clutter(l) | Self::PixelSize(l) => l,
        }
    }

    /// Factor family name (level-independent).
    pub fn family(&self) -> &'static str {
        match self {
            Self::Illumination(_) => "illumination",
            Self::Occlusion(_) => "occlusion",
            Self::Clutter(_) => "clutter",
            Self::PixelSize(_) => "pixel-size",
        }
    }

    /// Validates the level.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the level is outside `1..=3`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(1..=3).contains(&self.level()) {
            return Err(ConfigError {
                field: "factor level",
                requirement: "must be 1..=3",
            });
        }
        Ok(())
    }

    /// Panicking companion of [`DomainFactor::validate`].
    ///
    /// # Panics
    ///
    /// Panics if the level is outside `1..=3`.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid domain factor: {e}, got level {}", self.level());
        }
    }

    /// Applies the factor to a raw sample in place. `distractor` is the
    /// identity direction of a random *other* class, used by `Clutter`.
    ///
    /// # Panics
    ///
    /// Panics if the level is invalid or the distractor dimension
    /// mismatches for `Clutter`.
    pub fn apply(&self, raw: &mut [f32], distractor: &[f32], rng: &mut Prng) {
        self.assert_valid();
        let level = f32::from(self.level());
        match self {
            Self::Illumination(_) => {
                // Levels 1..3 → gain 0.85, 0.65, 0.45.
                let gain = 1.05 - 0.2 * level;
                for v in raw.iter_mut() {
                    *v *= gain;
                }
            }
            Self::Occlusion(_) => {
                // Zero a contiguous span of 15/30/45 % starting at a random
                // offset (the occluder position varies per frame).
                let span = ((raw.len() as f32) * 0.15 * level) as usize;
                if span == 0 || span >= raw.len() {
                    return;
                }
                let start = rng.below(raw.len() - span);
                for v in &mut raw[start..start + span] {
                    *v = 0.0;
                }
            }
            Self::Clutter(_) => {
                assert_eq!(raw.len(), distractor.len(), "distractor dimension mismatch");
                // Add 0.3/0.6/0.9 × another object's evidence.
                let scale = 0.3 * level;
                for (v, &d) in raw.iter_mut().zip(distractor) {
                    *v += scale * d;
                }
            }
            Self::PixelSize(_) => {
                // Moving average over a widening window: 3/5/7 taps.
                let half = self.level() as usize;
                let source = raw.to_vec();
                let n = source.len();
                for (i, v) in raw.iter_mut().enumerate() {
                    let lo = i.saturating_sub(half);
                    let hi = (i + half + 1).min(n);
                    *v = source[lo..hi].iter().sum::<f32>() / (hi - lo) as f32;
                }
            }
        }
    }
}

impl std::fmt::Display for DomainFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} L{}", self.family(), self.level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw() -> Vec<f32> {
        (0..32).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    #[test]
    fn schedule_covers_four_factors_at_three_levels() {
        let s = DomainFactor::openloris_schedule();
        assert_eq!(s.len(), 12);
        for family in ["illumination", "occlusion", "clutter", "pixel-size"] {
            let levels: Vec<u8> = s
                .iter()
                .filter(|f| f.family() == family)
                .map(DomainFactor::level)
                .collect();
            assert_eq!(levels, vec![1, 2, 3], "{family}");
        }
    }

    #[test]
    fn illumination_dims_magnitude_with_level() {
        let mut rng = Prng::new(0);
        let d = vec![0.0; 32];
        let norm = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>().sqrt();
        let base = norm(&raw());
        let mut prev = base;
        for level in 1..=3 {
            let mut x = raw();
            DomainFactor::Illumination(level).apply(&mut x, &d, &mut rng);
            let n = norm(&x);
            assert!(n < prev, "level {level}: {n} not dimmer than {prev}");
            prev = n;
        }
    }

    #[test]
    fn occlusion_zeroes_a_contiguous_span() {
        let mut rng = Prng::new(1);
        let d = vec![0.0; 32];
        let mut x: Vec<f32> = vec![1.0; 32];
        DomainFactor::Occlusion(2).apply(&mut x, &d, &mut rng);
        let zeros: Vec<usize> = x
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 0.0)
            .map(|(i, _)| i)
            .collect();
        // 30 % of 32 ≈ 9 zeroed, contiguous.
        assert!((8..=10).contains(&zeros.len()), "{zeros:?}");
        assert_eq!(
            zeros.last().unwrap() - zeros[0] + 1,
            zeros.len(),
            "not contiguous"
        );
    }

    #[test]
    fn occlusion_position_varies() {
        let d = vec![0.0; 32];
        let mut positions = std::collections::BTreeSet::new();
        for seed in 0..20 {
            let mut rng = Prng::new(seed);
            let mut x: Vec<f32> = vec![1.0; 32];
            DomainFactor::Occlusion(1).apply(&mut x, &d, &mut rng);
            positions.insert(x.iter().position(|&v| v == 0.0).unwrap_or(0));
        }
        assert!(
            positions.len() > 3,
            "occluder always lands at {positions:?}"
        );
    }

    #[test]
    fn clutter_adds_distractor_evidence() {
        let mut rng = Prng::new(2);
        let distractor: Vec<f32> = (0..32)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let mut x = vec![0.0f32; 32];
        DomainFactor::Clutter(3).apply(&mut x, &distractor, &mut rng);
        assert!((x[0] - 0.9).abs() < 1e-6);
        assert_eq!(x[1], 0.0);
    }

    #[test]
    fn pixel_size_smooths() {
        let mut rng = Prng::new(3);
        let d = vec![0.0; 32];
        // Alternating ±1: heavy smoothing should shrink total variation.
        let tv = |v: &[f32]| v.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>();
        let mut x: Vec<f32> = (0..32)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let before = tv(&x);
        DomainFactor::PixelSize(3).apply(&mut x, &d, &mut rng);
        assert!(tv(&x) < before * 0.5, "tv {} vs {}", tv(&x), before);
    }

    #[test]
    fn higher_levels_are_harder_transforms() {
        // For occlusion: more zeros at higher levels.
        let d = vec![0.0; 64];
        let count_zeros = |level: u8| {
            let mut rng = Prng::new(9);
            let mut x = vec![1.0f32; 64];
            DomainFactor::Occlusion(level).apply(&mut x, &d, &mut rng);
            x.iter().filter(|&&v| v == 0.0).count()
        };
        assert!(count_zeros(1) < count_zeros(2));
        assert!(count_zeros(2) < count_zeros(3));
    }

    #[test]
    fn validate_accepts_levels_one_to_three() {
        assert!(DomainFactor::Occlusion(1).validate().is_ok());
        assert!(DomainFactor::Occlusion(3).validate().is_ok());
        let e = DomainFactor::Occlusion(0).validate().expect_err("level 0");
        assert_eq!(e.field, "factor level");
    }

    #[test]
    #[should_panic(expected = "level")]
    fn invalid_level_panics() {
        let mut rng = Prng::new(0);
        DomainFactor::Illumination(4).apply(&mut [1.0], &[0.0], &mut rng);
    }

    #[test]
    fn display_names_factors() {
        assert_eq!(DomainFactor::Clutter(2).to_string(), "clutter L2");
    }
}
