//! Dataset specifications and the CORe50/OpenLORIS presets.

use crate::{ConfigError, DomainFactor};

/// Parameters of a synthetic Domain-IL benchmark.
///
/// The presets mirror the two benchmarks in the paper:
///
/// * [`DatasetSpec::core50`] — 50 classes, 11 domains, abrupt domain shifts
///   (distinct backgrounds/lighting per session), fewer effective samples:
///   the *hard* benchmark where replay quality decides the outcome,
/// * [`DatasetSpec::openloris`] — 69 classes, 12 domains, smooth transitions
///   (consecutive domains differ little) and more samples: the *easier*
///   benchmark where all methods score high, as in Table I.
///
/// `*_tiny` variants keep the same structure at a fraction of the sample
/// count for unit tests and doc examples.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable name used in report tables.
    pub name: &'static str,
    /// Number of object classes (paper: 50 for CORe50, 69 for OpenLORIS).
    pub num_classes: usize,
    /// Number of domains/sessions (paper: 11 / 12).
    pub num_domains: usize,
    /// Dimensionality of the simulated raw input vector.
    pub raw_dim: usize,
    /// Training samples generated per class per domain.
    pub train_per_class_per_domain: usize,
    /// Test samples per class per domain (test set spans all domains).
    pub test_per_class_per_domain: usize,
    /// Radius of the class-center constellation: larger ⇒ easier classes.
    pub class_separation: f32,
    /// Magnitude of the per-domain cluster displacement: larger ⇒ more
    /// catastrophic forgetting for non-replay methods.
    pub domain_shift: f32,
    /// Fraction of the previous domain's displacement carried into the next
    /// (0 = independent/abrupt domains, →1 = smooth drift).
    pub domain_smoothness: f32,
    /// Multiplicative per-domain gain range, simulating lighting changes.
    pub gain_range: (f32, f32),
    /// Per-sample isotropic noise.
    pub noise_std: f32,
    /// Optional environmental factor per domain (OpenLORIS structure);
    /// empty = plain geometry. When non-empty, must have one entry per
    /// domain.
    pub factors: Vec<DomainFactor>,
}

impl DatasetSpec {
    /// The synthetic CORe50-NI preset (50 classes, 11 domains, abrupt
    /// shifts).
    pub fn core50() -> Self {
        Self {
            name: "CORe50-NI",
            num_classes: 50,
            num_domains: 11,
            raw_dim: 96,
            train_per_class_per_domain: 40,
            test_per_class_per_domain: 6,
            class_separation: 2.2,
            domain_shift: 4.5,
            domain_smoothness: 0.0,
            gain_range: (0.8, 1.2),
            noise_std: 0.3,
            factors: Vec::new(),
        }
    }

    /// The synthetic OpenLORIS-Object preset (69 classes, 12 domains,
    /// smooth transitions, more data).
    pub fn openloris() -> Self {
        Self {
            name: "OpenLORIS",
            num_classes: 69,
            num_domains: 12,
            raw_dim: 96,
            train_per_class_per_domain: 50,
            test_per_class_per_domain: 5,
            class_separation: 3.0,
            domain_shift: 2.2,
            domain_smoothness: 0.75,
            gain_range: (0.9, 1.1),
            noise_std: 0.35,
            factors: Vec::new(),
        }
    }

    /// OpenLORIS with its real environmental-factor structure: the twelve
    /// domains are illumination / occlusion / clutter / pixel-size at
    /// levels 1-3 (She et al., ICRA 2020), applied as raw-space transforms
    /// on top of the base geometry. An opt-in extension; the calibrated
    /// Table I/II benchmarks use [`DatasetSpec::openloris`].
    pub fn openloris_factored() -> Self {
        Self {
            name: "OpenLORIS-factored",
            factors: DomainFactor::openloris_schedule(),
            ..Self::openloris()
        }
    }

    /// A miniature CORe50 (10 classes, 4 domains) for tests and examples.
    pub fn core50_tiny() -> Self {
        Self {
            num_classes: 10,
            num_domains: 4,
            train_per_class_per_domain: 12,
            test_per_class_per_domain: 3,
            name: "CORe50-tiny",
            ..Self::core50()
        }
    }

    /// A miniature OpenLORIS (12 classes, 4 domains) for tests and examples.
    pub fn openloris_tiny() -> Self {
        Self {
            num_classes: 12,
            num_domains: 4,
            train_per_class_per_domain: 12,
            test_per_class_per_domain: 3,
            name: "OpenLORIS-tiny",
            ..Self::openloris()
        }
    }

    /// Total number of training samples across all domains.
    pub fn train_len(&self) -> usize {
        self.num_classes * self.num_domains * self.train_per_class_per_domain
    }

    /// Total number of test samples (all domains).
    pub fn test_len(&self) -> usize {
        self.num_classes * self.num_domains * self.test_per_class_per_domain
    }

    /// Validates internal consistency, reporting the first violated
    /// requirement; the generator calls the panicking companion
    /// [`DatasetSpec::assert_valid`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the out-of-range field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_classes < 2 {
            return Err(ConfigError {
                field: "class count",
                requirement: "needs at least two classes",
            });
        }
        if self.num_domains == 0 {
            return Err(ConfigError {
                field: "domain count",
                requirement: "must be positive",
            });
        }
        if self.raw_dim < 2 {
            return Err(ConfigError {
                field: "raw dimension",
                requirement: "must be at least 2",
            });
        }
        if self.train_per_class_per_domain == 0 {
            return Err(ConfigError {
                field: "train samples per class per domain",
                requirement: "must be positive (empty training domains)",
            });
        }
        if self.test_per_class_per_domain == 0 {
            return Err(ConfigError {
                field: "test samples per class per domain",
                requirement: "must be positive (empty test set)",
            });
        }
        if self.class_separation <= 0.0 {
            return Err(ConfigError {
                field: "class separation",
                requirement: "must be positive",
            });
        }
        if self.domain_shift < 0.0 {
            return Err(ConfigError {
                field: "domain shift",
                requirement: "must be non-negative",
            });
        }
        if !(0.0..=1.0).contains(&self.domain_smoothness) {
            return Err(ConfigError {
                field: "domain smoothness",
                requirement: "must be in [0,1]",
            });
        }
        if !(self.gain_range.0 > 0.0 && self.gain_range.0 <= self.gain_range.1) {
            return Err(ConfigError {
                field: "gain range",
                requirement: "must be positive and ordered",
            });
        }
        if self.noise_std < 0.0 {
            return Err(ConfigError {
                field: "noise std",
                requirement: "must be non-negative",
            });
        }
        if !self.factors.is_empty() {
            if self.factors.len() != self.num_domains {
                return Err(ConfigError {
                    field: "factors",
                    requirement: "need one environmental factor per domain",
                });
            }
            for factor in &self.factors {
                factor.validate()?;
            }
        }
        Ok(())
    }

    /// Panicking companion of [`DatasetSpec::validate`].
    ///
    /// # Panics
    ///
    /// Panics with the rendered [`ConfigError`] message when a field is out
    /// of range.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid dataset spec: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(DatasetSpec::core50().validate().is_ok());
        assert!(DatasetSpec::openloris().validate().is_ok());
        assert!(DatasetSpec::core50_tiny().validate().is_ok());
        assert!(DatasetSpec::openloris_tiny().validate().is_ok());
    }

    #[test]
    fn validate_reports_the_offending_field() {
        let mut s = DatasetSpec::core50_tiny();
        s.domain_smoothness = 1.5;
        let e = s.validate().expect_err("bad smoothness");
        assert_eq!(e.field, "domain smoothness");
        let mut s = DatasetSpec::core50_tiny();
        s.gain_range = (0.0, 1.0);
        assert_eq!(s.validate().expect_err("bad gain").field, "gain range");
        let mut s = DatasetSpec::openloris_factored();
        s.factors[0] = crate::DomainFactor::Clutter(9);
        assert_eq!(s.validate().expect_err("bad level").field, "factor level");
    }

    #[test]
    fn core50_matches_paper_structure() {
        let s = DatasetSpec::core50();
        assert_eq!(s.num_classes, 50);
        assert_eq!(s.num_domains, 11);
    }

    #[test]
    fn openloris_matches_paper_structure() {
        let s = DatasetSpec::openloris();
        assert_eq!(s.num_classes, 69);
        assert_eq!(s.num_domains, 12);
    }

    #[test]
    fn openloris_is_smoother_and_denser_than_core50() {
        let c = DatasetSpec::core50();
        let o = DatasetSpec::openloris();
        assert!(o.domain_shift < c.domain_shift);
        assert!(o.domain_smoothness > c.domain_smoothness);
        assert!(o.train_len() > c.train_len());
    }

    #[test]
    fn lengths_multiply_out() {
        let s = DatasetSpec::core50_tiny();
        assert_eq!(s.train_len(), 10 * 4 * 12);
        assert_eq!(s.test_len(), 10 * 4 * 3);
    }

    #[test]
    fn factored_preset_validates_and_covers_domains() {
        let s = DatasetSpec::openloris_factored();
        s.assert_valid();
        assert_eq!(s.factors.len(), s.num_domains);
    }

    #[test]
    #[should_panic(expected = "factor per domain")]
    fn mismatched_factor_count_panics() {
        let mut s = DatasetSpec::openloris_factored();
        s.factors.pop();
        s.assert_valid();
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn invalid_spec_panics() {
        let mut s = DatasetSpec::core50_tiny();
        s.num_classes = 1;
        s.assert_valid();
    }
}
