//! Nominal tensor shapes and per-sample byte sizes.
//!
//! The simulation runs on small vectors for speed, but every *memory
//! accounting* number in the reproduced tables uses the paper's nominal
//! MobileNetV1 shapes, so the MB columns of Table I/II reproduce the
//! paper's arithmetic exactly:
//!
//! * raw input: 128×128×3 uint8 ⇒ 48 KiB/sample (ER stores these;
//!   paper: 100 samples = 4.8 MB ⇒ 48 KB/sample ✓),
//! * latent activation at MobileNetV1 layer 21: 4×4×1024 fp16 ⇒ 32 KiB
//!   (Latent Replay / Chameleon; paper: 100 samples = 3.2 MB ✓),
//! * DER additionally stores 50 fp32 logits per sample (paper: 4.9 MB per
//!   100 ⇒ 49 KB ✓ within rounding),
//! * GSS additionally stores a gradient direction vector, ~10× overhead
//!   (paper: 48.8 MB per 100 ⇒ 488 KB/sample ✓).

/// Nominal per-sample storage shapes used for memory accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NominalShapes {
    /// Bytes of one raw input image (128·128·3 = 49 152).
    pub raw_bytes: usize,
    /// Bytes of one latent activation map (4·4·1024 fp16 = 32 768).
    pub latent_bytes: usize,
    /// Bytes of one stored logit vector (num_classes · fp32).
    pub logit_bytes: usize,
    /// Bytes of one stored gradient-direction vector (GSS).
    pub gradient_bytes: usize,
    /// Bytes of the trainable model parameters (head) in fp32.
    pub model_bytes: usize,
}

/// Bytes in one MB as used by the paper's tables (decimal MB).
pub const MB: f64 = 1_000_000.0;

impl NominalShapes {
    /// Shapes for a benchmark with `num_classes` outputs, following the
    /// paper's MobileNetV1 configuration.
    pub fn for_classes(num_classes: usize) -> Self {
        Self {
            raw_bytes: 128 * 128 * 3,
            latent_bytes: 4 * 4 * 1024 * 2,
            logit_bytes: num_classes * 4,
            // The paper reports GSS at ~10× the raw-sample cost; the stored
            // vector is a gradient over the trainable tail. 488 KB/sample
            // reproduces Table I's GSS column.
            gradient_bytes: 488_000 - 128 * 128 * 3,
            // MobileNetV1 tail (layers 22-27) ≈ 3.1 M params fp32 ≈ 12.5 MB
            // — this is what EWC++/LwF duplicate (Table I: 13.0 / 12.5 MB).
            model_bytes: 3_125_000 * 4,
        }
    }

    /// Memory overhead in MB of `n` samples stored as raw images (ER).
    pub fn raw_mb(&self, n: usize) -> f64 {
        (n * self.raw_bytes) as f64 / MB
    }

    /// Memory overhead in MB of `n` samples stored as latents
    /// (Latent Replay, Chameleon).
    pub fn latent_mb(&self, n: usize) -> f64 {
        (n * self.latent_bytes) as f64 / MB
    }

    /// Elements in one nominal latent map (4·4·1024). The nominal
    /// [`Self::latent_bytes`] prices these at fp16 — the paper's own
    /// storage assumption — so codec repricing derives from the element
    /// count, not the fp16 byte count.
    pub fn latent_elems(&self) -> usize {
        self.latent_bytes / 2
    }

    /// Memory overhead in MB of `n` latents packed at `bytes_per_element`
    /// with a `header_bytes` per-tensor quantization header — the
    /// accounting hook for the latent codec in `chameleon-replay`.
    pub fn latent_packed_mb(&self, n: usize, bytes_per_element: usize, header_bytes: usize) -> f64 {
        (n * (self.latent_elems() * bytes_per_element + header_bytes)) as f64 / MB
    }

    /// Memory overhead in MB of `n` samples stored as raw + logits (DER).
    pub fn raw_with_logits_mb(&self, n: usize) -> f64 {
        (n * (self.raw_bytes + self.logit_bytes)) as f64 / MB
    }

    /// Memory overhead in MB of `n` samples stored as raw + gradient (GSS).
    pub fn raw_with_gradient_mb(&self, n: usize) -> f64 {
        (n * (self.raw_bytes + self.gradient_bytes)) as f64 / MB
    }

    /// Memory overhead in MB of a duplicated model copy + importance
    /// weights (EWC++) or teacher copy (LwF).
    pub fn model_copy_mb(&self, copies: usize) -> f64 {
        (copies * self.model_bytes) as f64 / MB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_sample_is_48kb_like_the_paper() {
        let s = NominalShapes::for_classes(50);
        // Table I: ER 100 samples = 4.8 MB.
        assert!((s.raw_mb(100) - 4.8).abs() < 0.15, "{}", s.raw_mb(100));
    }

    #[test]
    fn latent_sample_is_32kb_like_the_paper() {
        let s = NominalShapes::for_classes(50);
        // Table I: Latent Replay 100 samples = 3.2 MB.
        assert!(
            (s.latent_mb(100) - 3.2).abs() < 0.15,
            "{}",
            s.latent_mb(100)
        );
        // 1500 samples = 48 MB (Chameleon M_l column).
        assert!((s.latent_mb(1500) - 48.0).abs() < 2.0);
    }

    #[test]
    fn der_adds_logit_storage() {
        let s = NominalShapes::for_classes(50);
        // Table I: DER 100 = 4.9 MB, i.e. slightly above ER's 4.8.
        let der = s.raw_with_logits_mb(100);
        assert!(der > s.raw_mb(100));
        assert!((der - 4.9).abs() < 0.2, "{der}");
    }

    #[test]
    fn gss_is_roughly_10x_er() {
        let s = NominalShapes::for_classes(50);
        // Table I: GSS 100 = 48.8 MB ≈ 10× ER's 4.8 MB.
        let gss = s.raw_with_gradient_mb(100);
        assert!((gss - 48.8).abs() < 1.0, "{gss}");
    }

    #[test]
    fn model_copy_matches_ewc_row() {
        let s = NominalShapes::for_classes(50);
        // Table I: EWC++ overhead 13.0 MB ≈ one copy of the trainable tail
        // plus importance terms; LwF 12.5 MB ≈ one teacher copy.
        assert!(
            (s.model_copy_mb(1) - 12.5).abs() < 0.5,
            "{}",
            s.model_copy_mb(1)
        );
    }

    #[test]
    fn packed_latents_reprice_by_element_count() {
        let s = NominalShapes::for_classes(50);
        // fp16 packing reproduces the nominal pricing exactly.
        assert_eq!(s.latent_packed_mb(100, 2, 0), s.latent_mb(100));
        // int8 + 8-byte affine header: half the fp16 nominal, one quarter
        // of an f32 latent store.
        let int8 = s.latent_packed_mb(100, 1, 8);
        assert!((int8 / s.latent_mb(100) - 0.5).abs() < 0.01, "{int8}");
        let f32_store = s.latent_packed_mb(100, 4, 0);
        assert!((f32_store / int8 - 4.0).abs() < 0.01, "{f32_store} {int8}");
    }

    #[test]
    fn chameleon_short_term_is_0_3_mb() {
        let s = NominalShapes::for_classes(50);
        // Table I: M_s = 10 latents = 0.3 MB.
        assert!((s.latent_mb(10) - 0.3).abs() < 0.05, "{}", s.latent_mb(10));
    }
}
