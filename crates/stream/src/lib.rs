//! Synthetic continual-learning benchmarks for the Chameleon reproduction.
//!
//! The paper evaluates on CORe50-NI and OpenLORIS-Object in the
//! *Domain Incremental Learning* (Domain-IL) setting: the same classes are
//! seen under a sequence of domains (backgrounds, lighting, occlusion), and
//! the model must keep classifying all domains after training on each in
//! turn, in a single pass.
//!
//! We cannot ship those video datasets, so this crate generates synthetic
//! equivalents that preserve the structure the evaluation depends on
//! (see `DESIGN.md`, "Substitutions"):
//!
//! * each **class** is a cluster in raw feature space,
//! * each **domain** perturbs every class cluster (shift + gain), with a
//!   configurable magnitude and smoothness — CORe50's abrupt session
//!   changes vs OpenLORIS's smooth transitions,
//! * the **stream** is temporally correlated (video-like runs of one object)
//!   and optionally skewed toward *user-preferred* classes, which is the
//!   situation Chameleon's short-term store is designed for,
//! * the **test set** spans all domains, so forgetting any earlier domain
//!   costs accuracy — exactly the paper's `Acc_all` protocol.
//!
//! # Example
//!
//! ```
//! use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};
//!
//! let spec = DatasetSpec::core50_tiny();
//! let scenario = DomainIlScenario::generate(&spec, 42);
//! let config = StreamConfig::default();
//! let mut batches = 0;
//! for domain in 0..spec.num_domains {
//!     batches += scenario.domain_stream(domain, &config, 7).count();
//! }
//! assert!(batches > 0);
//! let (x, y) = scenario.test_set();
//! assert_eq!(x.rows(), y.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod factors;
mod generator;
mod scenario;
pub mod shapes;
mod spec;
mod stream;

pub use error::ConfigError;
pub use factors::DomainFactor;
pub use generator::ClusterGenerator;
pub use scenario::DomainIlScenario;
pub use spec::DatasetSpec;
pub use stream::{Batch, PreferenceProfile, StreamConfig, StreamCursor};
