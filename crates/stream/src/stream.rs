//! Online batch stream with temporal correlation and user-preference skew.

use chameleon_tensor::{Matrix, Prng};

use crate::{ClusterGenerator, ConfigError};

/// One mini-batch from the stream, as delivered to a strategy's
/// `observe` call.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Raw inputs, one row per sample (`batch × raw_dim`).
    pub raw: Matrix,
    /// Class label per row.
    pub labels: Vec<usize>,
    /// Domain index the batch was drawn from.
    pub domain: usize,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty (never produced by the stream, but useful
    /// for defensive code).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// How strongly the stream favors *user-preferred* classes — the paper's
/// motivating observation is that an individual user accesses a small subset
/// of classes most of the time.
#[derive(Clone, Debug, PartialEq)]
pub enum PreferenceProfile {
    /// All classes are equally likely (no personalization signal).
    Uniform,
    /// The listed classes receive `boost`× the base probability. The paper's
    /// user-affinity mechanism tracks exactly this kind of skew.
    Skewed {
        /// Classes the simulated user interacts with most.
        preferred: Vec<usize>,
        /// Probability multiplier for preferred classes (> 1).
        boost: f32,
    },
    /// Preferences switch to a different class subset halfway through each
    /// domain — stresses the learning-window recalibration of §III-C.
    Shifting {
        /// First-half preferred classes.
        early: Vec<usize>,
        /// Second-half preferred classes.
        late: Vec<usize>,
        /// Probability multiplier for the active subset.
        boost: f32,
    },
}

impl PreferenceProfile {
    /// Class-sampling weights at stream progress `t ∈ [0,1]` within the
    /// current domain.
    pub fn weights(&self, num_classes: usize, progress: f32) -> Vec<f32> {
        let mut w = vec![1.0f32; num_classes];
        match self {
            Self::Uniform => {}
            Self::Skewed { preferred, boost } => {
                for &c in preferred {
                    if c < num_classes {
                        w[c] = *boost;
                    }
                }
            }
            Self::Shifting { early, late, boost } => {
                let active = if progress < 0.5 { early } else { late };
                for &c in active {
                    if c < num_classes {
                        w[c] = *boost;
                    }
                }
            }
        }
        w
    }

    /// The classes currently preferred at `progress` (empty for uniform).
    pub fn active_preferred(&self, progress: f32) -> Vec<usize> {
        match self {
            Self::Uniform => Vec::new(),
            Self::Skewed { preferred, .. } => preferred.clone(),
            Self::Shifting { early, late, .. } => {
                if progress < 0.5 {
                    early.clone()
                } else {
                    late.clone()
                }
            }
        }
    }
}

/// Stream shaping parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamConfig {
    /// Mini-batch size (paper: 10).
    pub batch_size: usize,
    /// Mean length of a temporally-correlated run of one object (video
    /// frames of the same instance).
    pub run_length: usize,
    /// User-preference skew.
    pub preference: PreferenceProfile,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            batch_size: 10,
            run_length: 8,
            preference: PreferenceProfile::Uniform,
        }
    }
}

impl StreamConfig {
    /// Validates the configuration, reporting the first violated
    /// requirement.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `batch_size` or `run_length` is zero,
    /// or a preference boost is ≤ 1.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.batch_size == 0 {
            return Err(ConfigError {
                field: "batch size",
                requirement: "must be positive",
            });
        }
        if self.run_length == 0 {
            return Err(ConfigError {
                field: "run length",
                requirement: "must be positive",
            });
        }
        match &self.preference {
            PreferenceProfile::Uniform => {}
            PreferenceProfile::Skewed { boost, .. } | PreferenceProfile::Shifting { boost, .. } => {
                if *boost <= 1.0 {
                    return Err(ConfigError {
                        field: "preference boost",
                        requirement: "must exceed 1",
                    });
                }
            }
        }
        Ok(())
    }

    /// Panicking companion of [`StreamConfig::validate`], for call sites
    /// that treat a bad configuration as a programming error.
    ///
    /// # Panics
    ///
    /// Panics with the rendered [`ConfigError`] message.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid stream config: {e}");
        }
    }
}

/// Owned position within one domain's stream: the RNG, sample count, and
/// current video run, but *not* a borrow of the generator.
///
/// `DomainStream` (the crate's borrowing iterator) is built on top of
/// this; the cursor form exists so long-lived sessions (e.g. the fleet
/// engine's per-user sessions) can hold their stream position across
/// arbitrary suspension points and drive it against a shared
/// [`ClusterGenerator`] on demand. Batches drawn via
/// [`StreamCursor::next_batch`] are bit-identical to the ones the
/// iterator yields for the same `(domain, config, seed)`.
#[derive(Clone, Debug)]
pub struct StreamCursor {
    domain: usize,
    config: StreamConfig,
    rng: Prng,
    emitted: usize,
    total_samples: usize,
    /// Current video run: (class, frames remaining, last frame).
    run: Option<(usize, usize, Vec<f32>)>,
}

impl StreamCursor {
    /// Creates a cursor at the start of `domain`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid.
    pub fn new(domain: usize, config: StreamConfig, total_samples: usize, seed: u64) -> Self {
        config.assert_valid();
        Self {
            domain,
            config,
            rng: Prng::new(seed ^ (domain as u64).wrapping_mul(0x9E37_79B9)),
            emitted: 0,
            total_samples,
            run: None,
        }
    }

    /// Domain this cursor streams.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Samples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Whether the domain's sample budget is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.emitted >= self.total_samples
    }

    fn next_sample(&mut self, generator: &ClusterGenerator) -> (Vec<f32>, usize) {
        let progress = self.emitted as f32 / self.total_samples.max(1) as f32;
        // Refill the video run when exhausted.
        if self.run.as_ref().is_none_or(|(_, left, _)| *left == 0) {
            let weights = self
                .config
                .preference
                .weights(generator.spec().num_classes, progress);
            let class = self.rng.weighted_choice(&weights);
            let length = 1 + self.rng.below(self.config.run_length * 2);
            let frame = generator.sample(class, self.domain, &mut self.rng);
            self.run = Some((class, length, frame));
        }
        let (class, left, last) = self.run.take().expect("run refilled above");
        let frame = if left > 1 {
            generator.sample_correlated(class, self.domain, &last, &mut self.rng)
        } else {
            last.clone()
        };
        self.run = Some((class, left - 1, frame.clone()));
        (frame, class)
    }

    /// Draws the next batch from `generator`, or `None` once the domain's
    /// sample budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the cursor's domain is out of range for `generator`.
    pub fn next_batch(&mut self, generator: &ClusterGenerator) -> Option<Batch> {
        assert!(
            self.domain < generator.spec().num_domains,
            "domain out of range"
        );
        if self.emitted >= self.total_samples {
            return None;
        }
        let n = self
            .config
            .batch_size
            .min(self.total_samples - self.emitted);
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let (frame, class) = self.next_sample(generator);
            rows.push(frame);
            labels.push(class);
        }
        self.emitted += n;
        let raw = Matrix::try_from_row_iter(rows.iter().map(Vec::as_slice))
            .expect("generator rows share raw_dim");
        Some(Batch {
            raw,
            labels,
            domain: self.domain,
        })
    }
}

/// Iterator of [`Batch`]es over one domain: temporally-correlated runs of
/// single objects, classes drawn by the preference profile, for a total of
/// `total_samples` samples. A thin borrowing wrapper over
/// [`StreamCursor`].
pub struct DomainStream<'a> {
    generator: &'a ClusterGenerator,
    cursor: StreamCursor,
}

impl<'a> DomainStream<'a> {
    pub(crate) fn new(
        generator: &'a ClusterGenerator,
        domain: usize,
        config: StreamConfig,
        total_samples: usize,
        seed: u64,
    ) -> Self {
        assert!(domain < generator.spec().num_domains, "domain out of range");
        Self {
            generator,
            cursor: StreamCursor::new(domain, config, total_samples, seed),
        }
    }
}

impl Iterator for DomainStream<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        self.cursor.next_batch(self.generator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetSpec;

    fn make_stream(
        config: StreamConfig,
        total: usize,
        seed: u64,
    ) -> (ClusterGenerator, StreamConfig, usize, u64) {
        let spec = DatasetSpec::core50_tiny();
        (ClusterGenerator::new(&spec, 1), config, total, seed)
    }

    #[test]
    fn stream_emits_exactly_total_samples() {
        let (g, c, total, seed) = make_stream(StreamConfig::default(), 95, 3);
        let s = DomainStream::new(&g, 0, c, total, seed);
        let emitted: usize = s.map(|b| b.len()).sum();
        assert_eq!(emitted, 95);
    }

    #[test]
    fn last_batch_may_be_partial() {
        let (g, c, total, seed) = make_stream(StreamConfig::default(), 25, 4);
        let batches: Vec<Batch> = DomainStream::new(&g, 0, c, total, seed).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[2].len(), 5);
    }

    #[test]
    fn labels_are_in_range_and_domain_is_tagged() {
        let (g, c, total, seed) = make_stream(StreamConfig::default(), 50, 5);
        for batch in DomainStream::new(&g, 2, c, total, seed) {
            assert_eq!(batch.domain, 2);
            assert!(batch.labels.iter().all(|&l| l < 10));
            assert_eq!(batch.raw.rows(), batch.len());
        }
    }

    #[test]
    fn stream_is_seed_deterministic() {
        let (g, c, total, _) = make_stream(StreamConfig::default(), 40, 0);
        let a: Vec<Vec<usize>> = DomainStream::new(&g, 1, c.clone(), total, 9)
            .map(|b| b.labels)
            .collect();
        let b: Vec<Vec<usize>> = DomainStream::new(&g, 1, c, total, 9)
            .map(|b| b.labels)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn temporal_runs_repeat_classes() {
        let config = StreamConfig {
            run_length: 10,
            ..StreamConfig::default()
        };
        let (g, c, total, seed) = make_stream(config, 200, 6);
        let labels: Vec<usize> = DomainStream::new(&g, 0, c, total, seed)
            .flat_map(|b| b.labels)
            .collect();
        // With run lengths ~10, consecutive samples repeat far more often
        // than the 1/10 iid rate.
        let repeats = labels.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            repeats as f32 / (labels.len() - 1) as f32 > 0.5,
            "only {repeats} repeats in {} transitions",
            labels.len() - 1
        );
    }

    #[test]
    fn skewed_preferences_dominate_the_stream() {
        let config = StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![0, 1],
                boost: 20.0,
            },
            ..StreamConfig::default()
        };
        let (g, c, total, seed) = make_stream(config, 600, 7);
        let labels: Vec<usize> = DomainStream::new(&g, 0, c, total, seed)
            .flat_map(|b| b.labels)
            .collect();
        let preferred = labels.iter().filter(|&&l| l <= 1).count();
        // 2 classes with boost 20 vs 8 at weight 1: expected share
        // 40/48 ≈ 83 %.
        assert!(
            preferred as f32 / labels.len() as f32 > 0.6,
            "preferred share too low: {preferred}/{}",
            labels.len()
        );
    }

    #[test]
    fn shifting_preferences_switch_midway() {
        let config = StreamConfig {
            run_length: 2,
            preference: PreferenceProfile::Shifting {
                early: vec![0],
                late: vec![9],
                boost: 50.0,
            },
            ..StreamConfig::default()
        };
        let (g, c, total, seed) = make_stream(config, 1000, 8);
        let labels: Vec<usize> = DomainStream::new(&g, 0, c, total, seed)
            .flat_map(|b| b.labels)
            .collect();
        let first_half = &labels[..500];
        let second_half = &labels[500..];
        let early_share = first_half.iter().filter(|&&l| l == 0).count() as f32 / 500.0;
        let late_share = second_half.iter().filter(|&&l| l == 9).count() as f32 / 500.0;
        assert!(early_share > 0.4, "early preferred share {early_share}");
        assert!(late_share > 0.4, "late preferred share {late_share}");
    }

    #[test]
    fn preference_weights_reflect_profiles() {
        let p = PreferenceProfile::Skewed {
            preferred: vec![1],
            boost: 5.0,
        };
        assert_eq!(p.weights(3, 0.0), vec![1.0, 5.0, 1.0]);
        let u = PreferenceProfile::Uniform;
        assert_eq!(u.weights(2, 0.9), vec![1.0, 1.0]);
        let s = PreferenceProfile::Shifting {
            early: vec![0],
            late: vec![1],
            boost: 2.0,
        };
        assert_eq!(s.weights(2, 0.1), vec![2.0, 1.0]);
        assert_eq!(s.weights(2, 0.9), vec![1.0, 2.0]);
        assert_eq!(s.active_preferred(0.2), vec![0]);
        assert_eq!(s.active_preferred(0.8), vec![1]);
    }

    #[test]
    fn validate_reports_each_requirement() {
        assert!(StreamConfig::default().validate().is_ok());
        let zero_batch = StreamConfig {
            batch_size: 0,
            ..StreamConfig::default()
        };
        assert_eq!(
            zero_batch.validate().expect_err("zero batch").field,
            "batch size"
        );
        let zero_run = StreamConfig {
            run_length: 0,
            ..StreamConfig::default()
        };
        assert_eq!(
            zero_run.validate().expect_err("zero run").field,
            "run length"
        );
        let weak_boost = StreamConfig {
            preference: PreferenceProfile::Shifting {
                early: vec![0],
                late: vec![1],
                boost: 0.5,
            },
            ..StreamConfig::default()
        };
        let e = weak_boost.validate().expect_err("weak boost");
        assert!(e.to_string().contains("boost"));
    }

    #[test]
    #[should_panic(expected = "boost")]
    fn invalid_boost_panics() {
        let config = StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![0],
                boost: 1.0,
            },
            ..StreamConfig::default()
        };
        config.assert_valid();
    }

    #[test]
    fn cursor_matches_borrowing_stream_bit_for_bit() {
        let (g, c, total, seed) = make_stream(StreamConfig::default(), 60, 11);
        let via_stream: Vec<Batch> = DomainStream::new(&g, 1, c.clone(), total, seed).collect();
        let mut cursor = StreamCursor::new(1, c, total, seed);
        let mut via_cursor = Vec::new();
        while let Some(b) = cursor.next_batch(&g) {
            via_cursor.push(b);
        }
        assert!(cursor.is_exhausted());
        assert_eq!(cursor.emitted(), 60);
        assert_eq!(via_stream.len(), via_cursor.len());
        for (a, b) in via_stream.iter().zip(&via_cursor) {
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.raw.as_slice(), b.raw.as_slice());
        }
    }

    #[test]
    fn cursor_clone_resumes_identically() {
        let (g, c, total, seed) = make_stream(StreamConfig::default(), 50, 12);
        let mut cursor = StreamCursor::new(0, c, total, seed);
        let _ = cursor.next_batch(&g);
        let _ = cursor.next_batch(&g);
        let mut snapshot = cursor.clone();
        let a = cursor.next_batch(&g).expect("batch");
        let b = snapshot.next_batch(&g).expect("batch");
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.raw.as_slice(), b.raw.as_slice());
    }
}
