//! Latent-cluster sample generator underlying both benchmarks.

use chameleon_tensor::Prng;

use crate::DatasetSpec;

/// Generates raw samples for `(class, domain)` pairs.
///
/// Geometry: a sample of class `c` in domain `d` is
///
/// ```text
/// x = gain_d · id_c + A[π_d(c)] + ε
/// ```
///
/// where
///
/// * `id_c` is a fixed per-class *identity* direction (‖id‖ =
///   `class_separation`) — the domain-invariant object evidence,
/// * `A` is a shared pool of *context anchors* (‖A‖ = `domain_shift`) —
///   backgrounds/lighting contexts that dominate the representation,
/// * `π_d` is a per-domain permutation assigning contexts to classes, and
/// * `ε` is isotropic noise.
///
/// The permutation structure is what makes Domain-IL genuinely
/// *catastrophic* for single-pass learners: the context that co-occurred
/// with class `c` in an early domain is re-assigned to a different class
/// later, so a model that leaned on context evidence actively misclassifies
/// old domains. Replaying old samples teaches the learner that contexts are
/// uninformative, recovering the domain-invariant identity solution — the
/// mechanism replay methods exploit in the paper.
///
/// `domain_smoothness = s` controls how much of the assignment carries over
/// between consecutive domains: `s = 0` redraws the whole permutation
/// (CORe50's abrupt sessions), `s → 1` re-assigns only a few classes
/// (OpenLORIS's smooth transitions).
#[derive(Clone, Debug)]
pub struct ClusterGenerator {
    spec: DatasetSpec,
    /// Per-class identity directions, scaled to `class_separation`.
    identities: Vec<Vec<f32>>,
    /// Shared pool of context anchors, scaled to `domain_shift`.
    anchors: Vec<Vec<f32>>,
    /// `num_domains × num_classes`: anchor index assigned to each class.
    assignments: Vec<Vec<usize>>,
    /// Per-domain multiplicative gain (lighting).
    gains: Vec<f32>,
}

impl ClusterGenerator {
    /// Builds the generator's fixed geometry from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`DatasetSpec::validate`] (via
    /// [`DatasetSpec::assert_valid`]).
    pub fn new(spec: &DatasetSpec, seed: u64) -> Self {
        spec.assert_valid();
        let mut rng = Prng::new(seed ^ 0xC1A5_5E5E_D00D_F00D);

        let identities: Vec<Vec<f32>> = (0..spec.num_classes)
            .map(|_| random_direction(spec.raw_dim, &mut rng, spec.class_separation))
            .collect();
        let anchors: Vec<Vec<f32>> = (0..spec.num_classes)
            .map(|_| random_direction(spec.raw_dim, &mut rng, spec.domain_shift))
            .collect();

        let mut assignments: Vec<Vec<usize>> = Vec::with_capacity(spec.num_domains);
        let mut current: Vec<usize> = (0..spec.num_classes).collect();
        rng.shuffle(&mut current);
        assignments.push(current.clone());
        for _ in 1..spec.num_domains {
            // Re-assign a (1 − smoothness) fraction of the classes by
            // shuffling their anchor slots among themselves.
            let churn = ((1.0 - spec.domain_smoothness) * spec.num_classes as f32)
                .round()
                .max(1.0) as usize;
            let positions = rng.sample_without_replacement(spec.num_classes, churn);
            let mut values: Vec<usize> = positions.iter().map(|&p| current[p]).collect();
            rng.shuffle(&mut values);
            for (&p, &v) in positions.iter().zip(&values) {
                current[p] = v;
            }
            assignments.push(current.clone());
        }

        let gains = (0..spec.num_domains)
            .map(|_| rng.uniform_in(spec.gain_range.0, spec.gain_range.1))
            .collect();

        Self {
            spec: spec.clone(),
            identities,
            anchors,
            assignments,
            gains,
        }
    }

    /// The dataset specification this generator was built from.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The noiseless cluster mean of `(class, domain)` — useful for tests
    /// and for visualizing domain shift.
    ///
    /// # Panics
    ///
    /// Panics if `class` or `domain` is out of range.
    pub fn cluster_mean(&self, class: usize, domain: usize) -> Vec<f32> {
        assert!(class < self.spec.num_classes, "class out of range");
        assert!(domain < self.spec.num_domains, "domain out of range");
        let gain = self.gains[domain];
        let anchor = &self.anchors[self.assignments[domain][class]];
        self.identities[class]
            .iter()
            .zip(anchor)
            .map(|(&id, &a)| gain * id + a)
            .collect()
    }

    /// The context-anchor index class `c` wears in `domain` (for tests and
    /// diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `class` or `domain` is out of range.
    pub fn anchor_assignment(&self, class: usize, domain: usize) -> usize {
        assert!(class < self.spec.num_classes, "class out of range");
        assert!(domain < self.spec.num_domains, "domain out of range");
        self.assignments[domain][class]
    }

    /// Draws one noisy raw sample of `(class, domain)`, applying the
    /// domain's environmental factor when the spec defines one.
    ///
    /// # Panics
    ///
    /// Panics if `class` or `domain` is out of range.
    pub fn sample(&self, class: usize, domain: usize, rng: &mut Prng) -> Vec<f32> {
        let mut x = self.cluster_mean(class, domain);
        for v in &mut x {
            *v += self.spec.noise_std * rng.randn();
        }
        self.apply_factor(&mut x, class, domain, rng);
        x
    }

    /// Applies the domain's environmental factor (if any) to a raw frame.
    fn apply_factor(&self, x: &mut [f32], class: usize, domain: usize, rng: &mut Prng) {
        let Some(factor) = self.spec.factors.get(domain) else {
            return;
        };
        // Clutter needs a distractor object: a random *other* class's
        // identity direction.
        let mut other = rng.below(self.spec.num_classes);
        if other == class {
            other = (other + 1) % self.spec.num_classes;
        }
        factor.apply(x, &self.identities[other], rng);
    }

    /// Draws a "video frame" near a previous frame of the same object —
    /// temporal correlation within a run is stronger than i.i.d. sampling.
    ///
    /// # Panics
    ///
    /// Panics if `previous.len() != raw_dim`.
    pub fn sample_correlated(
        &self,
        class: usize,
        domain: usize,
        previous: &[f32],
        rng: &mut Prng,
    ) -> Vec<f32> {
        assert_eq!(
            previous.len(),
            self.spec.raw_dim,
            "frame dimension mismatch"
        );
        // Blend toward the cluster mean with small innovation noise: an
        // AR(1) process around the cluster center.
        let mean = self.cluster_mean(class, domain);
        let rho = 0.7;
        let mut x: Vec<f32> = previous
            .iter()
            .zip(&mean)
            .map(|(&p, &m)| m + rho * (p - m) + self.spec.noise_std * 0.5 * rng.randn())
            .collect();
        // Environmental factors are per-frame effects (the occluder moves,
        // the lighting flickers), so they apply after temporal blending.
        self.apply_factor(&mut x, class, domain, rng);
        x
    }

    /// Mean distance between the same class's cluster centers in two
    /// domains, averaged over classes — a direct measure of domain shift.
    ///
    /// # Panics
    ///
    /// Panics if either domain is out of range.
    pub fn domain_distance(&self, a: usize, b: usize) -> f32 {
        let total: f32 = (0..self.spec.num_classes)
            .map(|c| {
                chameleon_tensor::ops::l2_distance(
                    &self.cluster_mean(c, a),
                    &self.cluster_mean(c, b),
                )
            })
            .sum();
        total / self.spec.num_classes as f32
    }

    /// Fraction of classes whose context anchor changed between two domains
    /// (1.0 = fully re-assigned, 0.0 = identical context layout).
    ///
    /// # Panics
    ///
    /// Panics if either domain is out of range.
    pub fn assignment_churn(&self, a: usize, b: usize) -> f32 {
        assert!(
            a < self.spec.num_domains && b < self.spec.num_domains,
            "domain out of range"
        );
        let changed = self.assignments[a]
            .iter()
            .zip(&self.assignments[b])
            .filter(|(x, y)| x != y)
            .count();
        changed as f32 / self.spec.num_classes as f32
    }
}

/// Uniform random direction scaled to `radius`.
fn random_direction(dim: usize, rng: &mut Prng, radius: f32) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim).map(|_| rng.randn()).collect();
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        let s = radius / norm;
        for x in &mut v {
            *x *= s;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_seed_deterministic() {
        let spec = DatasetSpec::core50_tiny();
        let a = ClusterGenerator::new(&spec, 5);
        let b = ClusterGenerator::new(&spec, 5);
        assert_eq!(a.cluster_mean(3, 2), b.cluster_mean(3, 2));
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetSpec::core50_tiny();
        let a = ClusterGenerator::new(&spec, 1);
        let b = ClusterGenerator::new(&spec, 2);
        assert_ne!(a.cluster_mean(0, 0), b.cluster_mean(0, 0));
    }

    #[test]
    fn classes_are_separated_within_a_domain() {
        let spec = DatasetSpec::core50_tiny();
        let g = ClusterGenerator::new(&spec, 3);
        let d01 = chameleon_tensor::ops::l2_distance(&g.cluster_mean(0, 0), &g.cluster_mean(1, 0));
        assert!(d01 > 1.0, "classes too close: {d01}");
    }

    #[test]
    fn domains_displace_clusters() {
        let spec = DatasetSpec::core50_tiny();
        let g = ClusterGenerator::new(&spec, 4);
        let shift = g.domain_distance(0, 1);
        assert!(
            shift > spec.domain_shift * 0.3,
            "domain shift too small: {shift}"
        );
    }

    #[test]
    fn anchors_are_a_permutation_each_domain() {
        let spec = DatasetSpec::core50_tiny();
        let g = ClusterGenerator::new(&spec, 6);
        for d in 0..spec.num_domains {
            let mut seen: Vec<usize> = (0..spec.num_classes)
                .map(|c| g.anchor_assignment(c, d))
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..spec.num_classes).collect::<Vec<_>>());
        }
    }

    #[test]
    fn smooth_spec_churns_less_between_domains() {
        let abrupt = ClusterGenerator::new(&DatasetSpec::core50_tiny(), 7);
        let smooth = ClusterGenerator::new(&DatasetSpec::openloris_tiny(), 7);
        let mut churn_abrupt = 0.0;
        let mut churn_smooth = 0.0;
        for d in 1..4 {
            churn_abrupt += abrupt.assignment_churn(d - 1, d);
            churn_smooth += smooth.assignment_churn(d - 1, d);
        }
        assert!(
            churn_smooth < churn_abrupt,
            "smooth churn {churn_smooth} should be below abrupt {churn_abrupt}"
        );
    }

    #[test]
    fn samples_scatter_around_the_mean() {
        let spec = DatasetSpec::core50_tiny();
        let g = ClusterGenerator::new(&spec, 8);
        let mut rng = Prng::new(0);
        let mean = g.cluster_mean(2, 1);
        let mut avg = vec![0.0f32; spec.raw_dim];
        let n = 200;
        for _ in 0..n {
            for (a, v) in avg.iter_mut().zip(g.sample(2, 1, &mut rng)) {
                *a += v / n as f32;
            }
        }
        let err = chameleon_tensor::ops::l2_distance(&avg, &mean);
        assert!(err < spec.noise_std * 2.0, "sample mean drifted {err}");
    }

    #[test]
    fn correlated_frames_stay_near_previous() {
        let spec = DatasetSpec::core50_tiny();
        let g = ClusterGenerator::new(&spec, 9);
        let mut rng = Prng::new(1);
        let mut wins = 0;
        for _ in 0..20 {
            let f = g.sample(0, 0, &mut rng);
            let c = g.sample_correlated(0, 0, &f, &mut rng);
            let i = g.sample(0, 0, &mut rng);
            if chameleon_tensor::ops::l2_distance(&f, &c)
                < chameleon_tensor::ops::l2_distance(&f, &i)
            {
                wins += 1;
            }
        }
        assert!(wins >= 14, "correlated frames not closer ({wins}/20)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_class_panics() {
        let g = ClusterGenerator::new(&DatasetSpec::core50_tiny(), 0);
        let _ = g.cluster_mean(99, 0);
    }
}
