//! The Domain-IL scenario: sequential domain streams + an all-domain test
//! set.

use chameleon_tensor::{Matrix, Prng};

use crate::stream::DomainStream;
use crate::{ClusterGenerator, DatasetSpec, StreamConfig, StreamCursor};

/// A full Domain Incremental Learning scenario, the paper's evaluation
/// protocol: train on domains `0..D` one after another in a single pass,
/// then report `Acc_all` on a held-out test set that covers *all* domains.
///
/// # Example
///
/// ```
/// use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};
///
/// let scenario = DomainIlScenario::generate(&DatasetSpec::core50_tiny(), 1);
/// let (test_x, test_y) = scenario.test_set();
/// assert_eq!(test_x.rows(), test_y.len());
/// let n: usize = scenario
///     .domain_stream(0, &StreamConfig::default(), 2)
///     .map(|b| b.len())
///     .count();
/// assert!(n > 0);
/// ```
#[derive(Clone, Debug)]
pub struct DomainIlScenario {
    generator: ClusterGenerator,
    test_raw: Matrix,
    test_labels: Vec<usize>,
    test_domains: Vec<usize>,
}

impl DomainIlScenario {
    /// Builds the scenario: fixed cluster geometry plus a pre-drawn test
    /// set spanning every domain.
    pub fn generate(spec: &DatasetSpec, seed: u64) -> Self {
        let generator = ClusterGenerator::new(spec, seed);
        let mut rng = Prng::new(seed ^ 0x7E57_5E7A_11ED);
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(spec.test_len());
        let mut labels = Vec::with_capacity(spec.test_len());
        let mut domains = Vec::with_capacity(spec.test_len());
        for domain in 0..spec.num_domains {
            for class in 0..spec.num_classes {
                for _ in 0..spec.test_per_class_per_domain {
                    rows.push(generator.sample(class, domain, &mut rng));
                    labels.push(class);
                    domains.push(domain);
                }
            }
        }
        let test_raw = Matrix::try_from_row_iter(rows.iter().map(Vec::as_slice))
            .expect("test rows share raw_dim");
        Self {
            generator,
            test_raw,
            test_labels: labels,
            test_domains: domains,
        }
    }

    /// The dataset specification.
    pub fn spec(&self) -> &DatasetSpec {
        self.generator.spec()
    }

    /// The underlying cluster generator (for inspection/visualization).
    pub fn generator(&self) -> &ClusterGenerator {
        &self.generator
    }

    /// The training stream for one domain. Each domain contains
    /// `num_classes × train_per_class_per_domain` samples; `stream_seed`
    /// controls ordering/noise so repeated runs differ.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range or the config is invalid.
    pub fn domain_stream(
        &self,
        domain: usize,
        config: &StreamConfig,
        stream_seed: u64,
    ) -> DomainStream<'_> {
        let spec = self.generator.spec();
        let total = spec.num_classes * spec.train_per_class_per_domain;
        DomainStream::new(&self.generator, domain, config.clone(), total, stream_seed)
    }

    /// An owned [`StreamCursor`] over one domain: the same batches as
    /// [`DomainIlScenario::domain_stream`] for identical arguments, but
    /// without borrowing the scenario — long-lived sessions hold the
    /// cursor and drive it against [`DomainIlScenario::generator`].
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range or the config is invalid.
    pub fn stream_cursor(
        &self,
        domain: usize,
        config: &StreamConfig,
        stream_seed: u64,
    ) -> StreamCursor {
        let spec = self.generator.spec();
        assert!(domain < spec.num_domains, "domain out of range");
        let total = spec.num_classes * spec.train_per_class_per_domain;
        StreamCursor::new(domain, config.clone(), total, stream_seed)
    }

    /// The held-out test inputs (`test_len × raw_dim`) and labels, covering
    /// all domains — the `Acc_all` evaluation set.
    pub fn test_set(&self) -> (&Matrix, &[usize]) {
        (&self.test_raw, &self.test_labels)
    }

    /// Domain tag of every test row, for per-domain accuracy breakdowns
    /// (how much of each earlier domain has been forgotten).
    pub fn test_domains(&self) -> &[usize] {
        &self.test_domains
    }

    /// Indices of test rows belonging to `domain`.
    pub fn test_rows_of_domain(&self, domain: usize) -> Vec<usize> {
        self.test_domains
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| (d == domain).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_set_covers_all_classes_and_domains() {
        let spec = DatasetSpec::core50_tiny();
        let s = DomainIlScenario::generate(&spec, 0);
        let (x, y) = s.test_set();
        assert_eq!(x.rows(), spec.test_len());
        assert_eq!(y.len(), spec.test_len());
        for class in 0..spec.num_classes {
            assert!(y.contains(&class), "class {class} missing from test set");
        }
        for domain in 0..spec.num_domains {
            assert!(!s.test_rows_of_domain(domain).is_empty());
        }
    }

    #[test]
    fn test_set_is_balanced_per_class() {
        let spec = DatasetSpec::core50_tiny();
        let s = DomainIlScenario::generate(&spec, 1);
        let (_, y) = s.test_set();
        let mut counts = vec![0usize; spec.num_classes];
        for &label in y {
            counts[label] += 1;
        }
        let expected = spec.num_domains * spec.test_per_class_per_domain;
        assert!(counts.iter().all(|&c| c == expected), "{counts:?}");
    }

    #[test]
    fn domain_streams_have_expected_sizes() {
        let spec = DatasetSpec::core50_tiny();
        let s = DomainIlScenario::generate(&spec, 2);
        let config = StreamConfig::default();
        let total: usize = s.domain_stream(1, &config, 3).map(|b| b.len()).sum();
        assert_eq!(total, spec.num_classes * spec.train_per_class_per_domain);
    }

    #[test]
    fn scenario_generation_is_deterministic() {
        let spec = DatasetSpec::openloris_tiny();
        let a = DomainIlScenario::generate(&spec, 11);
        let b = DomainIlScenario::generate(&spec, 11);
        assert_eq!(a.test_set().0.as_slice(), b.test_set().0.as_slice());
        assert_eq!(a.test_set().1, b.test_set().1);
    }

    #[test]
    fn stream_seeds_change_sample_order() {
        let spec = DatasetSpec::core50_tiny();
        let s = DomainIlScenario::generate(&spec, 4);
        let config = StreamConfig::default();
        let a: Vec<usize> = s
            .domain_stream(0, &config, 1)
            .flat_map(|b| b.labels)
            .collect();
        let b: Vec<usize> = s
            .domain_stream(0, &config, 2)
            .flat_map(|b| b.labels)
            .collect();
        assert_ne!(a, b);
    }
}
