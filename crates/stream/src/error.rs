//! Configuration validation errors for the stream crate.

/// A configuration field rejected by a `validate` call
/// ([`StreamConfig::validate`](crate::StreamConfig::validate),
/// [`DatasetSpec::validate`](crate::DatasetSpec::validate),
/// [`DomainFactor::validate`](crate::DomainFactor::validate)).
///
/// Mirrors the shape of `chameleon_core`'s `ConfigError` so callers can
/// surface both uniformly. The `assert_valid` companions panic with the
/// same rendered message for call sites that treat a bad configuration as
/// a programming error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field (or field combination).
    pub field: &'static str,
    /// What the field must satisfy.
    pub requirement: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.field, self.requirement)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_joins_field_and_requirement() {
        let e = ConfigError {
            field: "batch size",
            requirement: "must be positive",
        };
        assert_eq!(e.to_string(), "batch size must be positive");
    }
}
