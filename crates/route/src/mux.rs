//! One correlation-keyed multiplexed connection per backend.
//!
//! The router used to hold a lazy connection pool *per worker* (plus one
//! for the prober), which is why backends had to be sized `serve workers
//! ≥ router workers + 2` — an undersized backend left surplus router
//! connections parked in the accept queue, presenting as a silent
//! multi-second stall. A [`MuxConnection`] deletes that failure mode: N
//! router workers share **one socket per backend**. The sending worker
//! tags its frame with a fresh correlation id and parks on a condvar; a
//! dedicated reader thread decodes response frames as they arrive (in
//! any order — the backend serves its side pipelined) and wakes exactly
//! the worker whose id matches.
//!
//! Failure semantics mirror the old per-worker pool so the router's
//! bury/failover logic is unchanged: a request that fails on an
//! *established* connection gets exactly one retry on a fresh connect,
//! and only a failure on that fresh connect counts against the backend.
//! What the pool could not do — bound a backend that accepts but never
//! answers — the mux does with a per-request timeout: a silent stall is
//! now a typed [`MuxError::TimedOut`] that feeds the normal probe/bury
//! path instead of hanging a worker forever.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use chameleon_replay::crc32;
use chameleon_runtime::{splitmix64, Clock, SimRng};
use chameleon_serve::wire::{encode_frame, Request, Response, WIRE_MAGIC};

use crate::plock;

/// Why a multiplexed request failed at the connection level. A typed
/// error *response* from the backend is a success at this layer.
#[derive(Clone, Debug)]
pub enum MuxError {
    /// Could not establish a connection to the backend.
    Connect(String),
    /// The connection died before the response arrived.
    Broken {
        /// What killed the connection.
        reason: String,
        /// Whether the connection was established by this very request
        /// (a fresh-connect failure is the signal that the backend
        /// itself is down, not that an idle socket went stale).
        was_fresh: bool,
    },
    /// No response within the request timeout.
    TimedOut {
        /// How long the request waited.
        waited: Duration,
        /// See [`MuxError::Broken::was_fresh`].
        was_fresh: bool,
    },
    /// The backend kept answering `RetryAfter` past the retry budget.
    Saturated {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl MuxError {
    fn was_fresh(&self) -> bool {
        match self {
            Self::Connect(_) | Self::Saturated { .. } => true,
            Self::Broken { was_fresh, .. } | Self::TimedOut { was_fresh, .. } => *was_fresh,
        }
    }
}

impl std::fmt::Display for MuxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Connect(reason) => write!(f, "connect failed: {reason}"),
            Self::Broken { reason, .. } => write!(f, "connection broke: {reason}"),
            Self::TimedOut { waited, .. } => {
                write!(f, "no response within {} ms", waited.as_millis())
            }
            Self::Saturated { attempts } => {
                write!(f, "backend still saturated after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for MuxError {}

/// Tunables for one [`MuxConnection`].
#[derive(Clone)]
pub struct MuxOptions {
    /// Response payload cap enforced by the reader.
    pub max_payload: usize,
    /// Socket write timeout (a peer that stops reading errors the send
    /// instead of wedging every worker behind the writer lock).
    pub write_timeout: Duration,
    /// How long one request may wait for its response before it becomes
    /// a typed [`MuxError::TimedOut`].
    pub request_timeout: Duration,
    /// `RetryAfter` rides before [`MuxError::Saturated`].
    pub retry_budget: u32,
    /// Clock for backoff sleeps. Request deadlines deliberately do NOT
    /// ride this clock: they are measured on a monotonic wall source so
    /// the timeout guarantee holds even under a frozen simulated clock.
    pub clock: Arc<dyn Clock>,
    /// Seed for backoff jitter (decorrelates workers that are turned
    /// away together).
    pub backoff_seed: u64,
}

/// What a parked sender's slot holds.
enum Slot {
    /// Sender is parked; the slot belongs to connection `generation`.
    Waiting { generation: u64 },
    /// Reader delivered the response.
    Done(Response),
    /// The connection carrying this request died.
    Failed(String),
}

/// The write half plus connection lifecycle, guarded by one mutex.
/// Lock order: `writer` before `pending`, never the reverse.
struct WriterSlot {
    stream: Option<TcpStream>,
    /// Bumped on every successful connect; slots and readers carry the
    /// generation they belong to so a stale reader can never complete
    /// (or fail) a request riding a newer connection.
    generation: u64,
    reader: Option<JoinHandle<()>>,
}

struct MuxInner {
    addr: String,
    options: MuxOptions,
    writer: Mutex<WriterSlot>,
    pending: Mutex<HashMap<u64, Slot>>,
    completed: Condvar,
    next_correlation: AtomicU64,
    stop: AtomicBool,
}

/// A shared, multiplexed CHAMWIRE connection to one backend. All methods
/// take `&self`: every router worker and the prober send through the
/// same instance (the router keeps one per backend behind an `Arc`).
pub struct MuxConnection {
    inner: Arc<MuxInner>,
    backoff: Mutex<SimRng>,
}

impl MuxConnection {
    /// Creates the handle. No I/O happens until the first request — the
    /// socket is (re)established lazily, exactly like the old pools.
    pub fn new(addr: String, options: MuxOptions) -> Self {
        let backoff_seed = splitmix64(options.backoff_seed ^ 0xB0FF);
        Self {
            inner: Arc::new(MuxInner {
                addr,
                options,
                writer: Mutex::new(WriterSlot {
                    stream: None,
                    generation: 0,
                    reader: None,
                }),
                pending: Mutex::new(HashMap::new()),
                completed: Condvar::new(),
                next_correlation: AtomicU64::new(1),
                stop: AtomicBool::new(false),
            }),
            backoff: Mutex::new(SimRng::new(backoff_seed)),
        }
    }

    /// The backend address this connection multiplexes to.
    pub fn addr(&self) -> &str {
        &self.inner.addr
    }

    /// Sends `request` and waits for its correlated response, riding
    /// `RetryAfter` backpressure up to the configured budget and
    /// retrying exactly once on a fresh connection if an *established*
    /// socket fails mid-request.
    ///
    /// # Errors
    ///
    /// A [`MuxError`] once the retry/backoff budget is exhausted.
    pub fn request(&self, request: &Request) -> Result<Response, MuxError> {
        self.request_with_budget(request, self.inner.options.retry_budget)
    }

    /// [`Self::request`] with an explicit `RetryAfter` budget (the
    /// prober uses a small one so a saturated backend is detected in
    /// bounded time).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::request`].
    pub fn request_with_budget(
        &self,
        request: &Request,
        budget: u32,
    ) -> Result<Response, MuxError> {
        let mut fresh_retry_used = false;
        let mut boost: u64 = 0;
        let mut attempts: u32 = 0;
        loop {
            match self.send_once(request) {
                Ok(Response::RetryAfter { millis }) => {
                    // Backpressure, not failure: back off (jittered, so
                    // turned-away workers don't re-arrive in lockstep)
                    // and go again with a fresh correlation id.
                    attempts += 1;
                    if attempts > budget {
                        return Err(MuxError::Saturated { attempts });
                    }
                    let sleep = {
                        let mut rng = plock(&self.backoff);
                        jittered_backoff_millis(&mut rng, millis, boost)
                    };
                    boost = (boost * 2).clamp(1, 64);
                    self.inner.options.clock.sleep(Duration::from_millis(sleep));
                }
                Ok(response) => return Ok(response),
                Err(error) => {
                    // Exactly one retry, and only when the failure was on
                    // an established connection — a *fresh* connect that
                    // fails means the backend is genuinely unreachable.
                    if !error.was_fresh() && !fresh_retry_used {
                        fresh_retry_used = true;
                        continue;
                    }
                    return Err(error);
                }
            }
        }
    }

    /// One send/park/wake round trip with a fresh correlation id.
    fn send_once(&self, request: &Request) -> Result<Response, MuxError> {
        let inner = &*self.inner;
        let correlation = inner.next_correlation.fetch_add(1, Ordering::Relaxed);
        let frame = encode_frame(&request.encode_payload(correlation));
        let mut was_fresh = false;
        let mut writer = plock(&inner.writer);
        // Reap a dead generation's reader with the writer lock RELEASED:
        // its exit path acquires this very lock, so joining while holding
        // it deadlocks (sender parked in join, reader parked on the lock)
        // and wedges every worker sharing this backend. Loop because the
        // lock is given up across the join — another sender may have
        // reconnected (stream back) or raced us to the handle.
        while writer.stream.is_none() {
            let Some(handle) = writer.reader.take() else {
                break;
            };
            drop(writer);
            let _ = handle.join();
            writer = plock(&inner.writer);
        }
        if writer.stream.is_none() {
            was_fresh = true;
            self.connect(&mut writer)?;
        }
        let generation = writer.generation;
        // Register the slot *before* the bytes leave: a response racing
        // back on another core must find someone to wake.
        plock(&inner.pending).insert(correlation, Slot::Waiting { generation });
        let stream = writer.stream.as_mut().expect("connected above");
        if let Err(e) = stream.write_all(&frame) {
            // Inline teardown — we already hold the writer lock.
            if let Some(stream) = writer.stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            drop(writer);
            let reason = format!("write failed: {e}");
            let mut pending = plock(&inner.pending);
            pending.remove(&correlation);
            for slot in pending.values_mut() {
                if matches!(slot, Slot::Waiting { generation: g } if *g == generation) {
                    *slot = Slot::Failed(reason.clone());
                }
            }
            inner.completed.notify_all();
            return Err(MuxError::Broken { reason, was_fresh });
        }
        drop(writer);
        self.wait(correlation, generation, was_fresh)
    }

    /// Establishes the socket and spawns its reader. Caller holds the
    /// writer lock and has already reaped the previous generation's
    /// reader thread — never join here: the reader's exit path takes the
    /// writer lock, so a join under it deadlocks. (A leftover handle, if
    /// any, is detached by the `writer.reader` assignment below, which is
    /// safe — generation checks keep a stale reader from touching newer
    /// requests.)
    fn connect(&self, writer: &mut WriterSlot) -> Result<(), MuxError> {
        let stream =
            TcpStream::connect(&self.inner.addr).map_err(|e| MuxError::Connect(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(self.inner.options.write_timeout));
        let reader_stream = stream
            .try_clone()
            .map_err(|e| MuxError::Connect(e.to_string()))?;
        writer.generation += 1;
        let generation = writer.generation;
        writer.stream = Some(stream);
        let inner = Arc::clone(&self.inner);
        writer.reader = Some(
            std::thread::Builder::new()
                .name("route-mux-reader".to_string())
                .spawn(move || reader_loop(&inner, reader_stream, generation))
                .expect("spawn mux reader"),
        );
        Ok(())
    }

    /// Parks until the reader resolves `correlation`, the connection
    /// dies, or the request deadline passes.
    fn wait(
        &self,
        correlation: u64,
        generation: u64,
        was_fresh: bool,
    ) -> Result<Response, MuxError> {
        let inner = &*self.inner;
        let timeout = inner.options.request_timeout;
        // Monotonic wall deadline, NOT the injected clock: the condvar
        // below waits real-time slices, so a deadline on a frozen
        // simulated clock would never arrive and a wedged backend would
        // busy-poll forever — the exact silent stall the timeout exists
        // to type.
        let started = std::time::Instant::now();
        let mut pending = plock(&inner.pending);
        loop {
            match pending.get(&correlation) {
                Some(Slot::Waiting { .. }) => {}
                Some(Slot::Done(_)) => match pending.remove(&correlation) {
                    Some(Slot::Done(response)) => return Ok(response),
                    _ => unreachable!("slot checked above"),
                },
                Some(Slot::Failed(_)) => match pending.remove(&correlation) {
                    Some(Slot::Failed(reason)) => {
                        return Err(MuxError::Broken { reason, was_fresh })
                    }
                    _ => unreachable!("slot checked above"),
                },
                None => {
                    return Err(MuxError::Broken {
                        reason: "request slot vanished".to_string(),
                        was_fresh,
                    })
                }
            }
            if started.elapsed() >= timeout {
                pending.remove(&correlation);
                drop(pending);
                // A backend that accepts but never answers is wedged;
                // drop the socket so the next request probes it fresh
                // (and everyone else parked on it fails fast too).
                self.teardown(generation, "request timed out");
                return Err(MuxError::TimedOut {
                    waited: timeout,
                    was_fresh,
                });
            }
            let (guard, _) = inner
                .completed
                .wait_timeout(pending, Duration::from_millis(25))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            pending = guard;
        }
    }

    /// Kills generation `gen`'s socket (if still current) and fails every
    /// request parked on it.
    fn teardown(&self, gen: u64, reason: &str) {
        let inner = &*self.inner;
        {
            let mut writer = plock(&inner.writer);
            if writer.generation == gen {
                if let Some(stream) = writer.stream.take() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
        let mut pending = plock(&inner.pending);
        for slot in pending.values_mut() {
            if matches!(slot, Slot::Waiting { generation } if *generation == gen) {
                *slot = Slot::Failed(reason.to_string());
            }
        }
        inner.completed.notify_all();
    }
}

impl Drop for MuxConnection {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        let (gen, handle) = {
            let mut writer = plock(&self.inner.writer);
            if let Some(stream) = writer.stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            (writer.generation, writer.reader.take())
        };
        self.teardown(gen, "router shutting down");
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

/// Owns the read half of one connection generation: decode response
/// frames as they arrive (any order) and wake the matching sender.
fn reader_loop(inner: &MuxInner, mut stream: TcpStream, generation: u64) {
    let reason = loop {
        if inner.stop.load(Ordering::Relaxed) {
            break "router shutting down".to_string();
        }
        let payload = match read_frame(&mut stream, inner.options.max_payload) {
            Ok(payload) => payload,
            Err(reason) => break reason,
        };
        let (correlation, response) = match Response::decode_payload(&payload) {
            Ok(decoded) => decoded,
            Err(e) => break format!("undecodable response: {e}"),
        };
        if correlation == 0 {
            // Connection-level turn-away (the backend's acceptor was
            // saturated before it read anything): nobody in particular
            // was addressed, so everyone parked on this connection gets
            // the RetryAfter and rides their own backoff.
            let millis = match response {
                Response::RetryAfter { millis } => millis,
                _ => 0,
            };
            let mut pending = plock(&inner.pending);
            for slot in pending.values_mut() {
                if matches!(slot, Slot::Waiting { generation: g } if *g == generation) {
                    *slot = Slot::Done(Response::RetryAfter { millis });
                }
            }
            inner.completed.notify_all();
            drop(pending);
            break "turned away by saturated acceptor".to_string();
        }
        let mut pending = plock(&inner.pending);
        if let Some(slot) = pending.get_mut(&correlation) {
            if matches!(slot, Slot::Waiting { generation: g } if *g == generation) {
                *slot = Slot::Done(response);
                inner.completed.notify_all();
            }
        }
        // A correlation nobody waits for (sender timed out and left) is
        // dropped on the floor — its slot is already gone.
    };
    // Connection over: clear the write half (if still ours) and fail
    // whoever is still parked on this generation.
    {
        let mut writer = plock(&inner.writer);
        if writer.generation == generation {
            if let Some(stream) = writer.stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
    let mut pending = plock(&inner.pending);
    for slot in pending.values_mut() {
        if matches!(slot, Slot::Waiting { generation: g } if *g == generation) {
            *slot = Slot::Failed(reason.clone());
        }
    }
    inner.completed.notify_all();
}

/// Reads one CHAMWIRE frame (blocking) and returns its CRC-checked
/// payload, or a human-readable reason the connection is done for.
fn read_frame(stream: &mut TcpStream, max_payload: usize) -> Result<Vec<u8>, String> {
    let mut header = [0u8; 12];
    stream
        .read_exact(&mut header)
        .map_err(|e| format!("read failed: {e}"))?;
    if header[..8] != WIRE_MAGIC[..] {
        return Err("response magic mismatch".to_string());
    }
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
    if len > max_payload {
        return Err(format!("oversized response frame ({len} bytes)"));
    }
    let mut body = vec![0u8; len + 4];
    stream
        .read_exact(&mut body)
        .map_err(|e| format!("read failed: {e}"))?;
    let footer = u32::from_le_bytes(body[len..].try_into().expect("4 bytes"));
    body.truncate(len);
    if crc32(&body) != footer {
        return Err("response checksum mismatch".to_string());
    }
    Ok(body)
}

/// Backoff for riding `RetryAfter`: the hinted wait plus an escalating
/// boost, fully jittered. (Same shape as the serve client's backoff —
/// kept local because it is private there.)
fn jittered_backoff_millis(rng: &mut SimRng, millis: u32, boost: u64) -> u64 {
    let base = u64::from(millis).max(1) + boost;
    base + rng.below(base + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_runtime::WallClock;
    use std::net::TcpListener;

    fn options() -> MuxOptions {
        MuxOptions {
            max_payload: chameleon_serve::wire::MAX_PAYLOAD_BYTES,
            write_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(5),
            retry_budget: 4,
            clock: WallClock::shared(),
            backoff_seed: 7,
        }
    }

    #[test]
    fn fresh_connect_failure_is_not_retried() {
        // Nothing listens on this address: the first (fresh) connect
        // fails and there is no second attempt to hide behind.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").port()
        }; // listener dropped: port is free but closed
        let mux = MuxConnection::new(format!("127.0.0.1:{port}"), options());
        match mux.request(&Request::Ping) {
            Err(MuxError::Connect(_)) => {}
            other => panic!("expected connect failure, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_senders_each_get_their_own_response() {
        // A hand-rolled backend that answers deliberately OUT OF ORDER:
        // it buffers both requests, then replies to the second first.
        // Correlation routing must still hand each sender its own reply.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut correlations = Vec::new();
            let mut buf = Vec::new();
            let mut scratch = [0u8; 4096];
            while correlations.len() < 2 {
                let n = conn.read(&mut scratch).expect("read");
                buf.extend_from_slice(&scratch[..n]);
                while let Ok((payload, used)) = chameleon_serve::wire::decode_frame(
                    &buf,
                    chameleon_serve::wire::MAX_PAYLOAD_BYTES,
                ) {
                    let (corr, _req) = Request::decode_payload(&payload).expect("decode");
                    correlations.push(corr);
                    buf.drain(..used);
                }
            }
            for corr in correlations.iter().rev() {
                let frame = encode_frame(&Response::Pong.encode_payload(*corr));
                conn.write_all(&frame).expect("write");
            }
        });
        let mux = Arc::new(MuxConnection::new(addr.to_string(), options()));
        let senders: Vec<_> = (0..2)
            .map(|_| {
                let mux = Arc::clone(&mux);
                std::thread::spawn(move || mux.request(&Request::Ping))
            })
            .collect();
        for sender in senders {
            match sender.join().expect("join") {
                Ok(Response::Pong) => {}
                other => panic!("expected Pong, got {other:?}"),
            }
        }
        server.join().expect("server");
    }

    #[test]
    fn wedged_backend_times_out_instead_of_stalling_silently() {
        // A backend that accepts and then never answers: the old pool
        // hung a router worker forever; the mux returns a typed timeout.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let hold = std::thread::spawn(move || {
            let (conn, _) = listener.accept().expect("accept");
            std::thread::sleep(Duration::from_millis(500));
            drop(conn);
        });
        let mut opts = options();
        opts.request_timeout = Duration::from_millis(100);
        let mux = MuxConnection::new(addr.to_string(), opts);
        match mux.request(&Request::Ping) {
            Err(MuxError::TimedOut { .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        hold.join().expect("hold");
    }

    #[test]
    fn request_times_out_under_a_frozen_clock() {
        // The injected clock never advances: the deadline must still
        // arrive, because it rides a monotonic wall source rather than
        // the injected clock (whose condvar slices wait real time).
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let hold = std::thread::spawn(move || {
            let (conn, _) = listener.accept().expect("accept");
            std::thread::sleep(Duration::from_millis(500));
            drop(conn);
        });
        let mut opts = options();
        opts.request_timeout = Duration::from_millis(100);
        opts.clock = Arc::new(chameleon_runtime::VirtualClock::new());
        let mux = MuxConnection::new(addr.to_string(), opts);
        match mux.request(&Request::Ping) {
            Err(MuxError::TimedOut { .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        hold.join().expect("hold");
    }

    #[test]
    fn timed_out_connection_recovers_on_the_next_request() {
        // After a timeout tears the connection down, the wedged
        // generation's reader is still unwinding (its exit path needs
        // the writer lock). The next request must reap it WITHOUT
        // deadlocking — joining under the writer lock wedged the whole
        // mux — then reconnect and succeed.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // First connection: accept and never answer.
            let (wedged, _) = listener.accept().expect("accept");
            // Second connection (the mux reconnecting): answer properly.
            let (mut conn, _) = listener.accept().expect("accept");
            drop(wedged);
            let mut buf = Vec::new();
            let mut scratch = [0u8; 4096];
            loop {
                let n = conn.read(&mut scratch).expect("read");
                if n == 0 {
                    return;
                }
                buf.extend_from_slice(&scratch[..n]);
                if let Ok((payload, _)) = chameleon_serve::wire::decode_frame(
                    &buf,
                    chameleon_serve::wire::MAX_PAYLOAD_BYTES,
                ) {
                    let (corr, _req) = Request::decode_payload(&payload).expect("decode");
                    let frame = encode_frame(&Response::Pong.encode_payload(corr));
                    conn.write_all(&frame).expect("write");
                    return;
                }
            }
        });
        let mut opts = options();
        opts.request_timeout = Duration::from_millis(100);
        let mux = MuxConnection::new(addr.to_string(), opts);
        match mux.request(&Request::Ping) {
            Err(MuxError::TimedOut { .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        match mux.request(&Request::Ping) {
            Ok(Response::Pong) => {}
            other => panic!("expected Pong after reconnect, got {other:?}"),
        }
        server.join().expect("server");
    }
}
