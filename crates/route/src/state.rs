//! Durable router state: the CHAMRTE1 append-only log.
//!
//! A router started with a state directory persists every pin-table
//! update and shadow-checkpoint refresh as it happens, so a restarted
//! router (including one that was SIGKILLed) resumes routing, pinning,
//! and failover without re-learning placement — the restart-amnesia
//! failure mode is gone.
//!
//! The on-disk discipline is the same one CHAMSEG1 uses for session
//! blobs (DESIGN.md §12): an 8-byte magic header followed by records of
//! `len:u32 LE | body | crc32(body):u32 LE`, with the length cap checked
//! *before* any allocation and a torn tail truncated on open. Record
//! bodies are `op:u8 | session:u64 LE | ...`:
//!
//! * `OP_PIN` — `addr` bytes (UTF-8): the session is pinned to the
//!   backend listening at `addr`. Pins are keyed by address, not index,
//!   so recovery maps onto whatever `--backends` order the restarted
//!   router was given; a pin whose address is no longer listed is
//!   dropped (and counted).
//! * `OP_UNPIN` — the pin is removed.
//! * `OP_SHADOW` — `seq:u64 LE | blob`: the session's shadow checkpoint,
//!   stamped with the last-acked op sequence it reflects (the stamp is
//!   what lets failover skip re-sending an op the shadow already
//!   captured).
//!
//! Later records win, so replaying the log front to back reproduces the
//! router's final image — except shadow records, where the *highest
//! sequence stamp* wins: appends happen outside the router's shadow
//! lock, so two refreshes of one session can land in the log in the
//! opposite order of their in-memory application, and last-record-wins
//! would let a restarted router regress to the older checkpoint. When
//! the log grows well past its live size it
//! is compacted: the current image is written to a sibling file that is
//! atomically renamed over the log.
//!
//! The codec half of this module (`encode_*`, [`decode_state`]) is pure
//! — no I/O — so the simtest multinode explorer round-trips its router
//! state through the real bytes.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use chameleon_fleet::SessionId;
use chameleon_replay::crc32;

/// File magic opening a CHAMRTE1 router-state log.
pub const STATE_MAGIC: &[u8; 8] = b"CHAMRTE1";

/// `len | crc` framing bytes around each record body.
const RECORD_FRAME_BYTES: usize = 8;

/// Upper bound on a record body, checked before allocating: a shadow
/// blob can never exceed a wire payload, so anything larger is damage.
pub const MAX_STATE_RECORD_BYTES: usize = 64 * 1024 * 1024;

const OP_PIN: u8 = 0x01;
const OP_UNPIN: u8 = 0x02;
const OP_SHADOW: u8 = 0x03;

/// Smallest body: op byte + session id.
const MIN_BODY_BYTES: usize = 9;

/// One replayable router-state mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateRecord {
    /// Pin `session` to the backend at `addr`.
    Pin {
        /// The pinned session.
        session: SessionId,
        /// The owning backend's listen address.
        addr: String,
    },
    /// Remove `session`'s pin.
    Unpin {
        /// The unpinned session.
        session: SessionId,
    },
    /// Replace `session`'s shadow checkpoint.
    Shadow {
        /// The shadowed session.
        session: SessionId,
        /// Last-acked op sequence the blob reflects.
        seq: u64,
        /// CHAMFLT checkpoint bytes.
        blob: Vec<u8>,
    },
}

/// Why a CHAMRTE1 log (or record) failed to decode. Mirrors the store's
/// `RecordError` taxonomy: every way of *shortening* a valid log is
/// `Truncated` (a torn tail, recoverable by truncation); everything else
/// is damage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// The log ends mid-record (or mid-header): a torn tail.
    Truncated,
    /// The file does not open with [`STATE_MAGIC`].
    BadMagic,
    /// A record's length prefix exceeds [`MAX_STATE_RECORD_BYTES`].
    Oversized {
        /// The claimed body length.
        len: u64,
        /// The enforced cap.
        max: u64,
    },
    /// A record body is too short to hold its opcode's fixed fields.
    BadLength {
        /// The claimed body length.
        len: u64,
    },
    /// The record's CRC32 footer does not match its body.
    BadChecksum {
        /// CRC computed over the body as read.
        found: u32,
        /// CRC the footer claims.
        expected: u32,
    },
    /// An unknown opcode byte.
    BadOp {
        /// The opcode as read.
        op: u8,
    },
    /// A pin record's address bytes are not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "state log ends mid-record"),
            Self::BadMagic => write!(f, "not a CHAMRTE1 state log"),
            Self::Oversized { len, max } => {
                write!(f, "state record claims {len} bytes (cap {max})")
            }
            Self::BadLength { len } => write!(f, "state record body too short ({len} bytes)"),
            Self::BadChecksum { found, expected } => {
                write!(f, "state record checksum {found:#010x} != {expected:#010x}")
            }
            Self::BadOp { op } => write!(f, "unknown state record opcode {op:#04x}"),
            Self::BadUtf8 => write!(f, "pin record address is not UTF-8"),
        }
    }
}

impl std::error::Error for StateError {}

fn encode_body(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_FRAME_BYTES + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out
}

/// Encodes a pin record (framed, ready to append).
pub fn encode_pin(session: SessionId, addr: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(MIN_BODY_BYTES + addr.len());
    body.push(OP_PIN);
    body.extend_from_slice(&session.to_le_bytes());
    body.extend_from_slice(addr.as_bytes());
    encode_body(&body)
}

/// Encodes an unpin record (framed, ready to append).
pub fn encode_unpin(session: SessionId) -> Vec<u8> {
    let mut body = Vec::with_capacity(MIN_BODY_BYTES);
    body.push(OP_UNPIN);
    body.extend_from_slice(&session.to_le_bytes());
    encode_body(&body)
}

/// Encodes a shadow-checkpoint record (framed, ready to append).
pub fn encode_shadow(session: SessionId, seq: u64, blob: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(MIN_BODY_BYTES + 8 + blob.len());
    body.push(OP_SHADOW);
    body.extend_from_slice(&session.to_le_bytes());
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(blob);
    encode_body(&body)
}

/// Encodes a [`StateRecord`] (framed, ready to append).
pub fn encode_state_record(record: &StateRecord) -> Vec<u8> {
    match record {
        StateRecord::Pin { session, addr } => encode_pin(*session, addr),
        StateRecord::Unpin { session } => encode_unpin(*session),
        StateRecord::Shadow { session, seq, blob } => encode_shadow(*session, *seq, blob),
    }
}

/// Decodes the record at the front of `bytes`, returning it and the
/// number of bytes consumed.
///
/// # Errors
///
/// Any shortening of a valid record is [`StateError::Truncated`]; other
/// variants report the specific damage.
pub fn decode_state_record(bytes: &[u8]) -> Result<(StateRecord, usize), StateError> {
    if bytes.len() < 4 {
        return Err(StateError::Truncated);
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_STATE_RECORD_BYTES {
        return Err(StateError::Oversized {
            len: len as u64,
            max: MAX_STATE_RECORD_BYTES as u64,
        });
    }
    let total = RECORD_FRAME_BYTES + len;
    if bytes.len() < total {
        return Err(StateError::Truncated);
    }
    let body = &bytes[4..4 + len];
    let expected = u32::from_le_bytes(bytes[4 + len..total].try_into().expect("4 bytes"));
    let found = crc32(body);
    if found != expected {
        return Err(StateError::BadChecksum { found, expected });
    }
    if body.len() < MIN_BODY_BYTES {
        return Err(StateError::BadLength { len: len as u64 });
    }
    let session = u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"));
    let rest = &body[MIN_BODY_BYTES..];
    let record = match body[0] {
        OP_PIN => StateRecord::Pin {
            session,
            addr: std::str::from_utf8(rest)
                .map_err(|_| StateError::BadUtf8)?
                .to_string(),
        },
        OP_UNPIN => {
            if !rest.is_empty() {
                return Err(StateError::BadLength { len: len as u64 });
            }
            StateRecord::Unpin { session }
        }
        OP_SHADOW => {
            if rest.len() < 8 {
                return Err(StateError::BadLength { len: len as u64 });
            }
            StateRecord::Shadow {
                session,
                seq: u64::from_le_bytes(rest[..8].try_into().expect("8 bytes")),
                blob: rest[8..].to_vec(),
            }
        }
        op => return Err(StateError::BadOp { op }),
    };
    Ok((record, total))
}

/// The router image a log replays to: the pin table (by backend address)
/// and the shadow table (seq-stamped checkpoint blobs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterImage {
    /// session → owning backend address.
    pub pins: HashMap<SessionId, String>,
    /// session → (last-acked op sequence, checkpoint blob).
    pub shadows: HashMap<SessionId, (u64, Vec<u8>)>,
}

impl RouterImage {
    /// Applies one record (later records win, except a shadow stamped
    /// *older* than the one already held, which is dropped — see the
    /// module docs on append-order inversion).
    pub fn apply(&mut self, record: StateRecord) {
        match record {
            StateRecord::Pin { session, addr } => {
                self.pins.insert(session, addr);
            }
            StateRecord::Unpin { session } => {
                self.pins.remove(&session);
            }
            StateRecord::Shadow { session, seq, blob } => {
                if matches!(self.shadows.get(&session), Some((held, _)) if *held > seq) {
                    return;
                }
                self.shadows.insert(session, (seq, blob));
            }
        }
    }

    /// Bytes a compacted log of this image would occupy (framing
    /// included) — the live size the compaction trigger compares against.
    pub fn encoded_len(&self) -> u64 {
        let mut total = STATE_MAGIC.len() as u64;
        for addr in self.pins.values() {
            total += (RECORD_FRAME_BYTES + MIN_BODY_BYTES + addr.len()) as u64;
        }
        for (_, blob) in self.shadows.values() {
            total += (RECORD_FRAME_BYTES + MIN_BODY_BYTES + 8 + blob.len()) as u64;
        }
        total
    }

    /// Serializes the image as a fresh, minimal log (magic + one record
    /// per live pin/shadow, in sorted session order for determinism).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = STATE_MAGIC.to_vec();
        let mut pins: Vec<_> = self.pins.iter().collect();
        pins.sort_by_key(|(session, _)| **session);
        for (session, addr) in pins {
            out.extend_from_slice(&encode_pin(*session, addr));
        }
        let mut shadows: Vec<_> = self.shadows.iter().collect();
        shadows.sort_by_key(|(session, _)| **session);
        for (session, (seq, blob)) in shadows {
            out.extend_from_slice(&encode_shadow(*session, *seq, blob));
        }
        out
    }
}

/// Replays a whole log image from bytes (magic + records).
///
/// Returns the image and the offset of the first undecodable byte (==
/// `bytes.len()` for a clean log). A trailing [`StateError::Truncated`]
/// is *not* an error — it is the expected signature of a crash mid-append
/// and the tail is simply ignored, mirroring the store's torn-tail rule.
/// Any other damage is fatal: a CRC-sealed record that fails its checksum
/// mid-file means the log cannot be trusted past that point either, so
/// the same truncation applies, but the error is surfaced so callers can
/// count it.
///
/// # Errors
///
/// [`StateError::BadMagic`] if the header is wrong; otherwise `Ok` with
/// the clean prefix replayed and `damage` describing why replay stopped
/// early (`None` for a clean log or a plain torn tail... see
/// [`DecodedState::damage`]).
pub fn decode_state(bytes: &[u8]) -> Result<DecodedState, StateError> {
    let head = bytes.len().min(STATE_MAGIC.len());
    if bytes[..head] != STATE_MAGIC[..head] {
        return Err(StateError::BadMagic);
    }
    if bytes.len() < STATE_MAGIC.len() {
        // An empty or partially written header: nothing to replay.
        return Ok(DecodedState {
            image: RouterImage::default(),
            clean_len: bytes.len(),
            records: 0,
            damage: if bytes.is_empty() {
                None
            } else {
                Some(StateError::Truncated)
            },
        });
    }
    let mut image = RouterImage::default();
    let mut offset = STATE_MAGIC.len();
    let mut records = 0u64;
    let mut damage = None;
    while offset < bytes.len() {
        match decode_state_record(&bytes[offset..]) {
            Ok((record, used)) => {
                image.apply(record);
                offset += used;
                records += 1;
            }
            Err(error) => {
                damage = Some(error);
                break;
            }
        }
    }
    Ok(DecodedState {
        image,
        clean_len: offset,
        records,
        damage,
    })
}

/// Result of replaying a log's bytes: the image from the clean prefix,
/// where that prefix ends, and what (if anything) stopped replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedState {
    /// Image replayed from the clean prefix.
    pub image: RouterImage,
    /// Byte offset the clean prefix ends at.
    pub clean_len: usize,
    /// Records replayed.
    pub records: u64,
    /// `None` for a clean log; `Some(Truncated)` for a torn tail;
    /// anything else is mid-file damage (still recovered by truncation,
    /// but worth counting separately).
    pub damage: Option<StateError>,
}

/// Counters the state log keeps about itself, surfaced through the
/// router's observation under `route.state_*` names.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateLogCounters {
    /// Records appended since open.
    pub appends: u64,
    /// Bytes appended since open (framing included).
    pub append_bytes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Bytes truncated off the tail at open (0 for a clean log).
    pub truncated_bytes: u64,
}

/// The file-backed CHAMRTE1 log. Appends are `write_all` +
/// `sync_data` — an acked pin or shadow survives a SIGKILL of the router
/// process, the same durability bar the session store sets.
#[derive(Debug)]
pub struct StateLog {
    file: File,
    path: PathBuf,
    dir: PathBuf,
    bytes: u64,
    counters: StateLogCounters,
}

/// Compaction triggers once the log is both past this floor and more
/// than four times its live size — small logs are never worth rewriting.
const COMPACT_FLOOR_BYTES: u64 = 1024 * 1024;

impl StateLog {
    /// Opens (creating if needed) `dir/ROUTER.log`, replays it, truncates
    /// any torn or damaged tail, and returns the log handle plus the
    /// recovered image.
    ///
    /// # Errors
    ///
    /// I/O errors, or a file whose header is not CHAMRTE1 (a state dir
    /// pointed at something that is not a router-state log is refused
    /// rather than clobbered).
    pub fn open(dir: &Path) -> std::io::Result<(Self, RouterImage)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("ROUTER.log");
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut counters = StateLogCounters::default();
        if bytes.len() < STATE_MAGIC.len() {
            // Fresh file, or a crash during creation left a partial
            // header. Nothing decodable lives in under 8 bytes, so start
            // the header over — appending after a partial magic would
            // make every later open fail with BadMagic, permanently
            // refusing the state dir.
            if !bytes.is_empty() {
                counters.truncated_bytes = bytes.len() as u64;
                file.set_len(0)?;
            }
            file.write_all(STATE_MAGIC)?;
            file.sync_data()?;
            bytes = STATE_MAGIC.to_vec();
        }
        let decoded = decode_state(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        if decoded.clean_len < bytes.len() {
            // Torn tail (or damage): keep the clean prefix, drop the rest.
            counters.truncated_bytes = (bytes.len() - decoded.clean_len) as u64;
            file.set_len(decoded.clean_len as u64)?;
            file.sync_data()?;
        }
        Ok((
            Self {
                file,
                path,
                dir: dir.to_path_buf(),
                bytes: decoded.clean_len as u64,
                counters,
            },
            decoded.image,
        ))
    }

    /// Appends one already-framed record durably.
    ///
    /// # Errors
    ///
    /// The underlying write or fsync failure.
    pub fn append(&mut self, framed: &[u8]) -> std::io::Result<()> {
        self.file.write_all(framed)?;
        self.file.sync_data()?;
        self.bytes += framed.len() as u64;
        self.counters.appends += 1;
        self.counters.append_bytes += framed.len() as u64;
        Ok(())
    }

    /// Whether the log has grown enough past `live` (the current image's
    /// [`RouterImage::encoded_len`]) to be worth compacting.
    pub fn wants_compaction(&self, live: u64) -> bool {
        self.bytes > COMPACT_FLOOR_BYTES && self.bytes > live.saturating_mul(4)
    }

    /// Rewrites the log as `image`'s minimal form: write a sibling temp
    /// file, fsync it, atomically rename it over the log, fsync the
    /// directory.
    ///
    /// # Errors
    ///
    /// The underlying I/O failure; the original log is untouched on error.
    pub fn compact(&mut self, image: &RouterImage) -> std::io::Result<()> {
        let tmp = self.dir.join("ROUTER.log.tmp");
        let encoded = image.encode();
        {
            let mut out = File::create(&tmp)?;
            out.write_all(&encoded)?;
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_data();
        }
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.bytes = encoded.len() as u64;
        self.counters.compactions += 1;
        Ok(())
    }

    /// Snapshot of the log's self-counters.
    pub fn counters(&self) -> StateLogCounters {
        self.counters
    }

    /// Current log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> RouterImage {
        let mut image = RouterImage::default();
        image.pins.insert(7, "127.0.0.1:7411".to_string());
        image.pins.insert(3, "127.0.0.1:7412".to_string());
        image.shadows.insert(7, (4, vec![0xAB; 96]));
        image
    }

    #[test]
    fn records_roundtrip() {
        let records = [
            StateRecord::Pin {
                session: 42,
                addr: "10.0.0.1:9000".to_string(),
            },
            StateRecord::Unpin { session: 42 },
            StateRecord::Shadow {
                session: 42,
                seq: 17,
                blob: vec![1, 2, 3, 4, 5],
            },
        ];
        for record in &records {
            let framed = encode_state_record(record);
            let (decoded, used) = decode_state_record(&framed).expect("roundtrip");
            assert_eq!(&decoded, record);
            assert_eq!(used, framed.len());
        }
    }

    #[test]
    fn every_truncation_is_truncated() {
        // The invariant torn-tail recovery rests on: any prefix of a
        // valid record decodes to Truncated, never to a scarier error.
        let framed = encode_shadow(9, 3, &[7u8; 33]);
        for cut in 0..framed.len() {
            assert_eq!(
                decode_state_record(&framed[..cut]),
                Err(StateError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn image_roundtrips_through_encode_decode() {
        let image = sample_image();
        let decoded = decode_state(&image.encode()).expect("valid log");
        assert_eq!(decoded.image, image);
        assert_eq!(decoded.damage, None);
        assert_eq!(decoded.clean_len as u64, image.encoded_len());
    }

    #[test]
    fn bit_flip_stops_replay_at_the_damaged_record() {
        let mut log = STATE_MAGIC.to_vec();
        log.extend_from_slice(&encode_pin(1, "a:1"));
        let clean = log.len();
        log.extend_from_slice(&encode_pin(2, "b:2"));
        log[clean + 6] ^= 0x10; // inside the second record's body
        let decoded = decode_state(&log).expect("magic intact");
        assert_eq!(decoded.records, 1);
        assert_eq!(decoded.clean_len, clean);
        assert!(matches!(
            decoded.damage,
            Some(StateError::BadChecksum { .. })
        ));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut framed = (u32::MAX).to_le_bytes().to_vec();
        framed.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            decode_state_record(&framed),
            Err(StateError::Oversized { .. })
        ));
    }

    #[test]
    fn open_truncates_torn_tail_and_recovers_clean_prefix() {
        let dir = std::env::temp_dir().join(format!("chamrte1-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut log, image) = StateLog::open(&dir).expect("fresh open");
            assert_eq!(image, RouterImage::default());
            log.append(&encode_pin(5, "127.0.0.1:7411"))
                .expect("append");
            log.append(&encode_shadow(5, 2, &[9u8; 40]))
                .expect("append");
        }
        // Crash mid-append: garbage half-record at the tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("ROUTER.log"))
                .expect("reopen");
            f.write_all(&[0x55; 7]).expect("tear");
        }
        let (log, image) = StateLog::open(&dir).expect("recovering open");
        assert_eq!(log.counters().truncated_bytes, 7);
        assert_eq!(
            image.pins.get(&5).map(String::as_str),
            Some("127.0.0.1:7411")
        );
        assert_eq!(image.shadows.get(&5), Some(&(2, vec![9u8; 40])));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_recovers_from_a_torn_initial_header() {
        // A crash during creation can leave fewer than 8 magic bytes.
        // Open must restart the header — appending after a partial magic
        // would make every later open fail with BadMagic forever.
        let dir = std::env::temp_dir().join(format!("chamrte1-torn-head-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("ROUTER.log"), &STATE_MAGIC[..3]).expect("partial header");
        {
            let (mut log, image) = StateLog::open(&dir).expect("open over torn header");
            assert_eq!(image, RouterImage::default());
            assert_eq!(log.counters().truncated_bytes, 3);
            log.append(&encode_pin(11, "127.0.0.1:7411"))
                .expect("append");
        }
        let (log, image) = StateLog::open(&dir).expect("reopen");
        assert_eq!(log.counters().truncated_bytes, 0);
        assert_eq!(
            image.pins.get(&11).map(String::as_str),
            Some("127.0.0.1:7411")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shadow_replay_keeps_the_highest_sequence_stamp() {
        // Appends race outside the shadows lock, so a log can hold a
        // newer-stamped shadow *before* an older one. Replay must keep
        // the max-seq record, not the last.
        let mut log = STATE_MAGIC.to_vec();
        log.extend_from_slice(&encode_shadow(5, 8, &[8u8; 16]));
        log.extend_from_slice(&encode_shadow(5, 7, &[7u8; 16]));
        let decoded = decode_state(&log).expect("valid log");
        assert_eq!(decoded.damage, None);
        assert_eq!(decoded.image.shadows.get(&5), Some(&(8, vec![8u8; 16])));
        // Equal stamps keep last-record-wins (both reflect the same op).
        let mut log = STATE_MAGIC.to_vec();
        log.extend_from_slice(&encode_shadow(5, 8, &[1u8; 16]));
        log.extend_from_slice(&encode_shadow(5, 8, &[2u8; 16]));
        let decoded = decode_state(&log).expect("valid log");
        assert_eq!(decoded.image.shadows.get(&5), Some(&(8, vec![2u8; 16])));
    }

    #[test]
    fn compaction_keeps_only_the_live_image() {
        let dir = std::env::temp_dir().join(format!("chamrte1-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut log, _) = StateLog::open(&dir).expect("fresh open");
        // Many superseded shadows for one session: the live image is one
        // record, the log is many.
        let mut image = RouterImage::default();
        for seq in 1..=50u64 {
            log.append(&encode_shadow(1, seq, &[seq as u8; 64]))
                .expect("append");
        }
        image.shadows.insert(1, (50, vec![50u8; 64]));
        image.pins.insert(1, "127.0.0.1:7411".to_string());
        log.append(&encode_pin(1, "127.0.0.1:7411"))
            .expect("append");
        let before = log.bytes();
        log.compact(&image).expect("compact");
        assert!(log.bytes() < before);
        assert_eq!(log.bytes(), image.encoded_len());
        drop(log);
        let (log, recovered) = StateLog::open(&dir).expect("reopen");
        assert_eq!(recovered, image);
        assert_eq!(log.counters().truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
