//! `chameleon-route`: the multi-node routing tier.
//!
//! A [`Router`] is a CHAMWIRE proxy in front of N `chameleon-serve`
//! backends. Clients speak the exact same protocol to the router as to a
//! single server; the router assigns each session to a backend by
//! rendezvous hashing, forwards its operations there, and keeps a
//! *shadow checkpoint* (the session's latest `CHAMFLT1` blob) refreshed
//! after every mutating operation.
//!
//! Backends move through lifecycle states
//! ([`BackendState::Healthy`] → `Degraded` → `Dead`, plus administrative
//! `Draining`) driven by periodic CHAMWIRE `Probe` frames. When a
//! backend drains, its sessions are handed off live: `HandoffExport` on
//! the old owner captures-and-forgets the session, `Handoff` delivers
//! the blob to the rendezvous successor. When a backend dies without
//! warning, the router re-homes its sessions from the shadow
//! checkpoints instead — recovering each session to its last
//! acknowledged state, so re-sending the in-flight operation reproduces
//! exactly the single-node outcome. Because import admits the blob
//! through the same restore path as eviction recovery, handoff inherits
//! the repo-wide bit-identity guarantee: the final checkpoint of a
//! session is byte-for-byte independent of how often (or when) it moved.
//!
//! ```no_run
//! use chameleon_route::{Router, RouterConfig};
//!
//! let router = Router::start(RouterConfig {
//!     addr: "127.0.0.1:0".into(),
//!     backends: vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
//!     ..RouterConfig::default()
//! })?;
//! println!("routing on {}", router.local_addr());
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod router;

pub use registry::{Backend, BackendState, Registry};
pub use router::{RouteCounters, Router, RouterConfig};
