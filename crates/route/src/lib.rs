//! `chameleon-route`: the multi-node routing tier.
//!
//! A [`Router`] is a CHAMWIRE proxy in front of N `chameleon-serve`
//! backends. Clients speak the exact same protocol to the router as to a
//! single server; the router assigns each session to a backend by
//! rendezvous hashing, forwards its operations there, and keeps a
//! *shadow checkpoint* (the session's latest `CHAMFLT1` blob) refreshed
//! after every mutating operation.
//!
//! Backends move through lifecycle states
//! ([`BackendState::Healthy`] → `Degraded` → `Dead`, plus administrative
//! `Draining`) driven by periodic CHAMWIRE `Probe` frames. When a
//! backend drains, its sessions are handed off live: `HandoffExport` on
//! the old owner captures-and-forgets the session, `Handoff` delivers
//! the blob to the rendezvous successor. When a backend dies without
//! warning, the router re-homes its sessions from the shadow
//! checkpoints instead — recovering each session to its last
//! acknowledged state, so re-sending the in-flight operation reproduces
//! exactly the single-node outcome. Because import admits the blob
//! through the same restore path as eviction recovery, handoff inherits
//! the repo-wide bit-identity guarantee: the final checkpoint of a
//! session is byte-for-byte independent of how often (or when) it moved.
//!
//! The router talks to each backend over **one multiplexed connection**
//! ([`MuxConnection`]): workers tag frames with correlation ids and a
//! per-backend reader thread wakes the matching sender, so backend
//! worker pools no longer have to be sized to the router's. With a state
//! directory configured ([`RouterConfig::state_dir`]), pins and shadow
//! checkpoints are also persisted to an append-only CHAMRTE1 log
//! ([`state`]) and recovered on start — a restarted router resumes
//! routing, pinning, and failover where it left off.
//!
//! ```no_run
//! use chameleon_route::{Router, RouterConfig};
//!
//! let router = Router::start(RouterConfig {
//!     addr: "127.0.0.1:0".into(),
//!     backends: vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
//!     ..RouterConfig::default()
//! })?;
//! println!("routing on {}", router.local_addr());
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mux;
mod registry;
mod router;
pub mod state;

pub use mux::{MuxConnection, MuxError, MuxOptions};
pub use registry::{Backend, BackendState, Registry};
pub use router::{RouteCounters, Router, RouterConfig};

/// Locks a mutex, recovering the data behind a poisoned lock instead of
/// propagating the panic. One router worker dying mid-request must not
/// brick every other worker and the prober; all router state updates are
/// single-key inserts/removes that are valid at every intermediate
/// point, so the data behind a poisoned lock is always safe to keep
/// serving.
pub(crate) fn plock<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
