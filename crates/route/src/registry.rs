//! The backend registry: lifecycle states, rendezvous hashing, and the
//! session→backend pin table.

use std::collections::HashMap;

use chameleon_fleet::SessionId;
use chameleon_runtime::splitmix64;

/// Lifecycle state of one backend as seen by the router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendState {
    /// Answering probes; eligible for new sessions.
    Healthy,
    /// Missed enough consecutive probes to be suspect, but not yet
    /// declared dead. Still serves its pinned sessions; not preferred
    /// for new ones (it stays rendezvous-eligible so determinism of
    /// placement does not depend on transient probe noise).
    Degraded,
    /// Administratively leaving: its sessions are being handed off and
    /// no new sessions are placed on it.
    Draining,
    /// Declared gone; every pinned session has been (or is being)
    /// re-homed from its shadow checkpoint.
    Dead,
}

impl BackendState {
    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Degraded => "degraded",
            Self::Draining => "draining",
            Self::Dead => "dead",
        }
    }

    /// Whether new sessions may be placed on (or handed off to) a
    /// backend in this state.
    #[must_use]
    pub fn eligible(self) -> bool {
        matches!(self, Self::Healthy | Self::Degraded)
    }
}

/// One registered backend.
#[derive(Clone, Debug)]
pub struct Backend {
    /// Address the router connects to (`host:port`).
    pub addr: String,
    /// Current lifecycle state.
    pub state: BackendState,
    /// Probe failures since the last success.
    pub consecutive_failures: u32,
}

/// Router-side view of the backend set: states, the rendezvous hash that
/// assigns unpinned sessions, and the pin table recording where each
/// session actually lives (pins override the hash after a handoff).
#[derive(Clone, Debug)]
pub struct Registry {
    backends: Vec<Backend>,
    salt: u64,
    pins: HashMap<SessionId, usize>,
}

impl Registry {
    /// A registry over `addrs`, all initially [`BackendState::Healthy`].
    /// `salt` perturbs the rendezvous hash so distinct routers (or test
    /// seeds) shuffle placement.
    pub fn new(addrs: Vec<String>, salt: u64) -> Self {
        Self {
            backends: addrs
                .into_iter()
                .map(|addr| Backend {
                    addr,
                    state: BackendState::Healthy,
                    consecutive_failures: 0,
                })
                .collect(),
            salt,
            pins: HashMap::new(),
        }
    }

    /// Number of registered backends (regardless of state).
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// All backends, in registration order.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// One backend by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn backend(&self, index: usize) -> &Backend {
        &self.backends[index]
    }

    /// The index registered under `addr`, if any. Recovery uses this to
    /// map address-keyed CHAMRTE1 pins onto the current backend list.
    pub fn index_of(&self, addr: &str) -> Option<usize> {
        self.backends.iter().position(|b| b.addr == addr)
    }

    /// The whole pin table (read-only; used to snapshot durable state).
    pub fn pins(&self) -> &HashMap<SessionId, usize> {
        &self.pins
    }

    /// Sets a backend's state, resetting its failure streak when it
    /// returns to [`BackendState::Healthy`].
    pub fn set_state(&mut self, index: usize, state: BackendState) {
        self.backends[index].state = state;
        if state == BackendState::Healthy {
            self.backends[index].consecutive_failures = 0;
        }
    }

    /// Records one probe outcome; returns the updated failure streak.
    pub fn record_probe(&mut self, index: usize, ok: bool) -> u32 {
        if ok {
            self.backends[index].consecutive_failures = 0;
        } else {
            self.backends[index].consecutive_failures =
                self.backends[index].consecutive_failures.saturating_add(1);
        }
        self.backends[index].consecutive_failures
    }

    /// Rendezvous (highest-random-weight) choice among eligible backends,
    /// optionally excluding one: each backend scores
    /// `splitmix64(splitmix64(session ^ salt) ^ (index + 1))` and the
    /// highest score wins, so any two routers with the same salt agree,
    /// and removing one backend only moves the sessions that lived on it.
    pub fn rendezvous(&self, session: SessionId, exclude: Option<usize>) -> Option<usize> {
        let key = splitmix64(session ^ self.salt);
        self.backends
            .iter()
            .enumerate()
            .filter(|(i, b)| b.state.eligible() && Some(*i) != exclude)
            .max_by_key(|(i, _)| splitmix64(key ^ (*i as u64 + 1)))
            .map(|(i, _)| i)
    }

    /// Where the session lives: its pin if it has one, else the
    /// rendezvous choice (which the caller should then pin).
    pub fn owner_of(&self, session: SessionId) -> Option<usize> {
        self.pins
            .get(&session)
            .copied()
            .or_else(|| self.rendezvous(session, None))
    }

    /// The session's pin, if any (no rendezvous fallback).
    pub fn pinned(&self, session: SessionId) -> Option<usize> {
        self.pins.get(&session).copied()
    }

    /// Pins a session to a backend (recorded on create and after every
    /// handoff; pins are the source of truth for placement).
    pub fn pin(&mut self, session: SessionId, index: usize) {
        self.pins.insert(session, index);
    }

    /// Removes a session's pin.
    pub fn unpin(&mut self, session: SessionId) {
        self.pins.remove(&session);
    }

    /// Every session pinned to `index`, in ascending id order (stable
    /// iteration order makes drain/failover schedules deterministic).
    pub fn sessions_on(&self, index: usize) -> Vec<SessionId> {
        let mut sessions: Vec<SessionId> = self
            .pins
            .iter()
            .filter(|(_, &b)| b == index)
            .map(|(&s, _)| s)
            .collect();
        sessions.sort_unstable();
        sessions
    }

    /// Number of backends currently in `state`.
    pub fn count_in(&self, state: BackendState) -> u64 {
        self.backends.iter().filter(|b| b.state == state).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(n: usize, salt: u64) -> Registry {
        Registry::new(
            (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect(),
            salt,
        )
    }

    #[test]
    fn rendezvous_is_deterministic_and_spreads_sessions() {
        let r = registry(4, 7);
        let mut counts = [0usize; 4];
        for s in 0..400u64 {
            let a = r.rendezvous(s, None).expect("eligible backends");
            let b = r.rendezvous(s, None).expect("eligible backends");
            assert_eq!(a, b);
            counts[a] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "some backend got nothing: {counts:?}"
        );
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_sessions() {
        let mut r = registry(4, 3);
        let before: Vec<usize> = (0..200).map(|s| r.rendezvous(s, None).unwrap()).collect();
        r.set_state(2, BackendState::Dead);
        for (s, &old) in before.iter().enumerate() {
            let new = r.rendezvous(s as u64, None).unwrap();
            if old != 2 {
                assert_eq!(new, old, "session {s} moved without cause");
            } else {
                assert_ne!(new, 2);
            }
        }
    }

    #[test]
    fn pins_override_rendezvous_and_enumerate_per_backend() {
        let mut r = registry(3, 1);
        let s = 42;
        let hashed = r.owner_of(s).unwrap();
        let other = (hashed + 1) % 3;
        r.pin(s, other);
        assert_eq!(r.owner_of(s), Some(other));
        assert_eq!(r.sessions_on(other), vec![s]);
        r.unpin(s);
        assert_eq!(r.owner_of(s), Some(hashed));
    }

    #[test]
    fn draining_and_dead_backends_are_not_placement_targets() {
        let mut r = registry(2, 9);
        r.set_state(0, BackendState::Draining);
        for s in 0..50 {
            assert_eq!(r.rendezvous(s, None), Some(1));
        }
        r.set_state(1, BackendState::Dead);
        assert_eq!(r.rendezvous(5, None), None);
    }

    #[test]
    fn probe_streaks_accumulate_and_reset() {
        let mut r = registry(1, 0);
        assert_eq!(r.record_probe(0, false), 1);
        assert_eq!(r.record_probe(0, false), 2);
        assert_eq!(r.record_probe(0, true), 0);
        r.set_state(0, BackendState::Degraded);
        r.backends[0].consecutive_failures = 5;
        r.set_state(0, BackendState::Healthy);
        assert_eq!(r.backend(0).consecutive_failures, 0);
    }
}
