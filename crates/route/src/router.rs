//! The routing proxy: CHAMWIRE in front, N CHAMWIRE backends behind.
//!
//! Threading model: an acceptor admits client sockets into a bounded
//! worker queue; each worker speaks CHAMWIRE to its clients and forwards
//! session ops over the **shared multiplexed backend connections** (one
//! [`MuxConnection`] per backend — see `mux.rs`); a probe thread walks
//! the backend set on the injected clock and advances lifecycle states.
//! There is no engine thread — the router holds no sessions, only the
//! registry, the pin table, and shadow checkpoints.
//!
//! **Shadow checkpoints** are the failover mechanism: after every
//! mutating operation (create, step) the router pulls a `CHAMFLT1`
//! checkpoint from the session's owner and caches it, stamped with the
//! op sequence it reflects. When a backend dies — probe streak past the
//! threshold, or a forward that fails even on a fresh connection — each
//! of its sessions is re-homed by handing the shadow blob to the
//! rendezvous successor. Because the shadow is refreshed *after* the
//! reply, a failure observed mid-operation recovers to the pre-operation
//! state and re-sending the operation yields exactly the single-node
//! outcome; when the shadow's stamp shows it already captured the
//! in-flight op (the refresh landed but the ack was lost), the re-send
//! is skipped instead of applied twice.
//!
//! With [`RouterConfig::state_dir`] set, every pin update and shadow
//! refresh is also appended to a durable CHAMRTE1 log (`state.rs`) and
//! recovered on start, so a restarted router — graceful or SIGKILLed —
//! resumes routing, pinning, and failover without re-learning placement.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use chameleon_fleet::SessionId;
use chameleon_obs::{Observation, Observer, Stage};
use chameleon_runtime::{timed, Clock, WallClock};
use chameleon_serve::wire::{
    correlation_of, decode_frame, encode_frame, ErrorCode, ProbeSummary, Request, Response,
    StatsSnapshot, WireError, MAX_PAYLOAD_BYTES,
};
use chameleon_stream::ConfigError;

use crate::mux::{MuxConnection, MuxOptions};
use crate::plock;
use crate::registry::{BackendState, Registry};
use crate::state::{self, StateLog};

/// Tunables of the routing tier.
#[derive(Clone, Debug, PartialEq)]
pub struct RouterConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"`.
    pub addr: String,
    /// Backend addresses (`host:port`), registration order = index.
    pub backends: Vec<String>,
    /// Client-facing connection-worker pool size. Backends no longer
    /// need to be sized against this — all workers share one multiplexed
    /// connection per backend.
    pub workers: usize,
    /// Salt for the rendezvous hash (same salt ⇒ same placement).
    pub salt: u64,
    /// Interval between probe sweeps over the backend set.
    pub probe_interval: Duration,
    /// Consecutive probe failures before a backend turns
    /// [`BackendState::Degraded`].
    pub degraded_after: u32,
    /// Consecutive probe failures before a backend is declared
    /// [`BackendState::Dead`] and its sessions re-homed.
    pub dead_after: u32,
    /// Client-socket read timeout (also the stop-flag poll granularity).
    pub read_timeout: Duration,
    /// Client-socket write timeout.
    pub write_timeout: Duration,
    /// A client connection silent for this long is reaped.
    pub idle_timeout: Duration,
    /// How long one forwarded request may wait for its backend response
    /// before it becomes a typed failure (feeding the normal bury and
    /// failover path) instead of a silent stall.
    pub request_timeout: Duration,
    /// Per-frame payload cap enforced on the client side.
    pub max_payload: usize,
    /// Retry budget for backend-side requests (how many `RetryAfter`
    /// rounds a forward rides out before counting as a failure).
    pub backend_retries: u32,
    /// When set, pins and shadow checkpoints are persisted to a CHAMRTE1
    /// log in this directory and recovered on start.
    pub state_dir: Option<PathBuf>,
    /// Test-only fault injection: the first `Step` routed for this
    /// session panics the handling worker *while it holds the registry
    /// lock* — the worst poison a dying worker can leave behind. Used by
    /// the poison-tolerance regression test; leave `None` in production.
    pub fault_panic_session: Option<SessionId>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            workers: 4,
            salt: 0xC4A7,
            probe_interval: Duration::from_millis(50),
            degraded_after: 2,
            dead_after: 5,
            read_timeout: Duration::from_millis(25),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            request_timeout: Duration::from_secs(30),
            max_payload: MAX_PAYLOAD_BYTES,
            backend_retries: 10_000,
            state_dir: None,
            fault_panic_session: None,
        }
    }
}

impl RouterConfig {
    /// Checks structural validity.
    ///
    /// # Errors
    ///
    /// Returns the first violated requirement.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.backends.is_empty() {
            return Err(ConfigError {
                field: "backend list",
                requirement: "must name at least one backend",
            });
        }
        if self.workers == 0 {
            return Err(ConfigError {
                field: "worker count",
                requirement: "must be positive",
            });
        }
        if self.read_timeout.is_zero() {
            return Err(ConfigError {
                field: "read timeout",
                requirement: "must be positive",
            });
        }
        if self.request_timeout.is_zero() {
            return Err(ConfigError {
                field: "request timeout",
                requirement: "must be positive",
            });
        }
        if self.max_payload == 0 || self.max_payload > MAX_PAYLOAD_BYTES {
            return Err(ConfigError {
                field: "payload cap",
                requirement: "must be within (0, MAX_PAYLOAD_BYTES]",
            });
        }
        if self.dead_after < self.degraded_after {
            return Err(ConfigError {
                field: "dead threshold",
                requirement: "must be >= the degraded threshold",
            });
        }
        Ok(())
    }
}

/// Plain-struct snapshot of the router's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteCounters {
    /// Requests read from clients (excluding locally answered pings).
    pub requests_in: u64,
    /// Requests forwarded to a backend (including failover re-sends).
    pub requests_forwarded: u64,
    /// Forwards that failed even on a fresh backend connection.
    pub forward_failures: u64,
    /// Sessions moved between backends (drain handoffs + failovers).
    pub sessions_handed_off: u64,
    /// Sessions re-homed from a shadow checkpoint after a backend died.
    pub failovers: u64,
    /// In-flight ops *not* re-sent after failover because the recovered
    /// shadow's sequence stamp showed it already captured them.
    pub failover_replays_skipped: u64,
    /// Client frames or payloads rejected by the decoder.
    pub decode_rejects: u64,
    /// Successful health probes.
    pub probes_ok: u64,
    /// Failed health probes.
    pub probes_failed: u64,
    /// Shadow checkpoints refreshed after mutating operations.
    pub shadow_refreshes: u64,
    /// Shadow refresh attempts that failed (the previous shadow stays).
    pub shadow_refresh_failures: u64,
    /// Pins recovered from the CHAMRTE1 state log at start.
    pub pins_recovered: u64,
    /// Shadow checkpoints recovered from the CHAMRTE1 state log at start.
    pub shadows_recovered: u64,
    /// State-log appends (or compactions) that failed; the in-memory
    /// state stays authoritative, durability of that update is lost.
    pub state_append_failures: u64,
}

#[derive(Debug, Default)]
struct RouteMetrics {
    requests_in: AtomicU64,
    requests_forwarded: AtomicU64,
    forward_failures: AtomicU64,
    sessions_handed_off: AtomicU64,
    failovers: AtomicU64,
    failover_replays_skipped: AtomicU64,
    decode_rejects: AtomicU64,
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
    shadow_refreshes: AtomicU64,
    shadow_refresh_failures: AtomicU64,
    pins_recovered: AtomicU64,
    shadows_recovered: AtomicU64,
    state_append_failures: AtomicU64,
}

impl RouteMetrics {
    fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> RouteCounters {
        RouteCounters {
            requests_in: self.requests_in.load(Ordering::Relaxed),
            requests_forwarded: self.requests_forwarded.load(Ordering::Relaxed),
            forward_failures: self.forward_failures.load(Ordering::Relaxed),
            sessions_handed_off: self.sessions_handed_off.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            failover_replays_skipped: self.failover_replays_skipped.load(Ordering::Relaxed),
            decode_rejects: self.decode_rejects.load(Ordering::Relaxed),
            probes_ok: self.probes_ok.load(Ordering::Relaxed),
            probes_failed: self.probes_failed.load(Ordering::Relaxed),
            shadow_refreshes: self.shadow_refreshes.load(Ordering::Relaxed),
            shadow_refresh_failures: self.shadow_refresh_failures.load(Ordering::Relaxed),
            pins_recovered: self.pins_recovered.load(Ordering::Relaxed),
            shadows_recovered: self.shadows_recovered.load(Ordering::Relaxed),
            state_append_failures: self.state_append_failures.load(Ordering::Relaxed),
        }
    }
}

/// One cached shadow checkpoint, stamped with the last-acked op sequence
/// it reflects.
struct Shadow {
    seq: u64,
    blob: Vec<u8>,
}

/// The shadow cache plus the per-session acked-op sequence counter the
/// stamps are drawn from.
#[derive(Default)]
struct ShadowTable {
    entries: HashMap<SessionId, Shadow>,
    acked: HashMap<SessionId, u64>,
}

/// State shared by workers, the probe thread, and the admin API.
///
/// Lock order where multiple are held: per-session op lock (strictly
/// outermost; the `op_locks` table mutex is only held to clone the Arc
/// out, never across another acquisition) → `handoff` → `registry` →
/// `shadows` → `state`. `Shared::persist` is only called with none of
/// handoff/registry/shadows held (its compaction path re-acquires
/// registry and shadows while holding the state lock, which is safe
/// because no thread holds registry/shadows and then waits on state).
struct Shared {
    registry: Mutex<Registry>,
    shadows: Mutex<ShadowTable>,
    /// Serializes session moves (drain, failover) so two threads never
    /// re-home the same session to different backends concurrently.
    handoff: Mutex<()>,
    /// Per-session locks serializing *mutating* ops (create, step): op
    /// sequences are minted as `acked + 1`, which is only unique — and
    /// the shadow-stamp comparison in [`skip_failover_replay`] only
    /// sound — while a single mutating op per session is in flight.
    op_locks: Mutex<HashMap<SessionId, Arc<Mutex<()>>>>,
    /// The durable CHAMRTE1 log, when a state dir is configured.
    state: Option<Mutex<StateLog>>,
    /// One multiplexed connection per backend, shared by every worker
    /// and the prober.
    mux: Vec<MuxConnection>,
    metrics: RouteMetrics,
    stop: AtomicBool,
    /// See [`RouterConfig::fault_panic_session`].
    panic_session: Option<SessionId>,
    panic_fired: AtomicBool,
}

impl Shared {
    /// Pins `session` to `index` in memory and in the durable log.
    fn pin_session(&self, session: SessionId, index: usize) {
        let addr = {
            let mut registry = plock(&self.registry);
            registry.pin(session, index);
            registry.backend(index).addr.clone()
        };
        self.persist(state::encode_pin(session, &addr));
    }

    /// The lock serializing mutating ops on `session` (created on first
    /// use). The table mutex is released before the returned lock is
    /// taken, so it never nests inside another acquisition.
    fn op_lock(&self, session: SessionId) -> Arc<Mutex<()>> {
        Arc::clone(plock(&self.op_locks).entry(session).or_default())
    }

    /// Replaces `session`'s shadow (seq-stamped) in memory and in the
    /// durable log — unless the table already holds a *newer* stamp, in
    /// which case this refresh lost the race and is dropped: regressing
    /// a shadow to an older sequence would re-expose an op the newer
    /// checkpoint already captured. (The log append happens outside the
    /// shadows lock, so append order may still invert; replay keeps the
    /// max-seq record per session to match.)
    fn store_shadow(&self, session: SessionId, seq: u64, blob: Vec<u8>) {
        let framed = state::encode_shadow(session, seq, &blob);
        {
            let mut shadows = plock(&self.shadows);
            if matches!(shadows.entries.get(&session), Some(existing) if existing.seq > seq) {
                return;
            }
            shadows.entries.insert(session, Shadow { seq, blob });
        }
        self.persist(framed);
    }

    /// Raises `session`'s acked-op sequence to at least `seq`.
    fn ack(&self, session: SessionId, seq: u64) {
        let mut shadows = plock(&self.shadows);
        let acked = shadows.acked.entry(session).or_insert(0);
        *acked = (*acked).max(seq);
    }

    /// `session`'s current acked-op sequence.
    fn acked_seq(&self, session: SessionId) -> u64 {
        plock(&self.shadows)
            .acked
            .get(&session)
            .copied()
            .unwrap_or(0)
    }

    /// Appends one framed record to the state log (no-op without a state
    /// dir), compacting when the log has grown well past its live size.
    /// Must be called with no registry/shadow/handoff lock held.
    fn persist(&self, framed: Vec<u8>) {
        let Some(state) = &self.state else { return };
        let past_floor = {
            let mut log = plock(state);
            if log.append(&framed).is_err() {
                RouteMetrics::add(&self.metrics.state_append_failures, 1);
                return;
            }
            log.wants_compaction(0)
        };
        if past_floor {
            let image = self.image();
            let mut log = plock(state);
            if log.wants_compaction(image.encoded_len()) && log.compact(&image).is_err() {
                RouteMetrics::add(&self.metrics.state_append_failures, 1);
            }
        }
    }

    /// Snapshot of the durable state: address-keyed pins plus seq-stamped
    /// shadows.
    fn image(&self) -> state::RouterImage {
        let mut image = state::RouterImage::default();
        {
            let registry = plock(&self.registry);
            for (&session, &index) in registry.pins() {
                image
                    .pins
                    .insert(session, registry.backend(index).addr.clone());
            }
        }
        let shadows = plock(&self.shadows);
        for (&session, shadow) in &shadows.entries {
            image
                .shadows
                .insert(session, (shadow.seq, shadow.blob.clone()));
        }
        image
    }
}

/// Sends one request to a backend over its shared multiplexed
/// connection. Retry semantics live in the mux: `RetryAfter` rides the
/// configured budget, a stale established connection gets exactly one
/// fresh-connect retry, and only a failure beyond that (including a
/// request timeout — the old silent stall, now typed) counts here.
fn send_to_backend(shared: &Shared, index: usize, request: &Request) -> Result<Response, String> {
    RouteMetrics::add(&shared.metrics.requests_forwarded, 1);
    match shared.mux[index].request(request) {
        Ok(response) => Ok(response),
        Err(e) => {
            RouteMetrics::add(&shared.metrics.forward_failures, 1);
            Err(format!(
                "backend {index} ({}): {e}",
                shared.mux[index].addr()
            ))
        }
    }
}

/// Pulls a fresh checkpoint of `session` from `owner` into the shadow
/// cache, stamped with `seq` (the op sequence it reflects). Failure is
/// tolerated (the previous shadow stays, and recovery falls back to the
/// pre-operation state); only counted.
fn refresh_shadow(shared: &Shared, session: SessionId, owner: usize, seq: u64) {
    match send_to_backend(shared, owner, &Request::Checkpoint { session }) {
        Ok(Response::Checkpointed(blob)) => {
            shared.store_shadow(session, seq, blob);
            RouteMetrics::add(&shared.metrics.shadow_refreshes, 1);
        }
        _ => RouteMetrics::add(&shared.metrics.shadow_refresh_failures, 1),
    }
}

/// Re-homes one session off a failed backend using its shadow
/// checkpoint. Returns the new owner, or `None` when recovery is
/// impossible (no shadow, or no eligible backend).
fn fail_over_session(
    shared: &Shared,
    obs: &Observer,
    session: SessionId,
    dead: usize,
) -> Option<usize> {
    let _guard = plock(&shared.handoff);
    {
        // Another thread may have re-homed it while we waited.
        let registry = plock(&shared.registry);
        match registry.pinned(session) {
            Some(owner) if owner != dead => return Some(owner),
            _ => {}
        }
    }
    let blob = {
        let shadows = plock(&shared.shadows);
        shadows.entries.get(&session).map(|s| s.blob.clone())?
    };
    let new = plock(&shared.registry).rendezvous(session, Some(dead))?;
    match send_to_backend(shared, new, &Request::Handoff { session, blob }) {
        // DuplicateSession means an earlier, ambiguously failed import
        // actually landed — the session is already there, adopt it.
        Ok(Response::HandoffAck)
        | Ok(Response::Error {
            code: ErrorCode::DuplicateSession,
            ..
        }) => {
            shared.pin_session(session, new);
            RouteMetrics::add(&shared.metrics.failovers, 1);
            RouteMetrics::add(&shared.metrics.sessions_handed_off, 1);
            obs.event(format!(
                "route: session {session} failed over from backend {dead} to {new}"
            ));
            Some(new)
        }
        _ => None,
    }
}

/// Declares a backend dead and re-homes every session pinned to it from
/// the shadow cache. Returns how many sessions moved.
fn bury_backend(shared: &Shared, obs: &Observer, index: usize) -> usize {
    let sessions = {
        let mut registry = plock(&shared.registry);
        registry.set_state(index, BackendState::Dead);
        registry.sessions_on(index)
    };
    obs.event(format!(
        "route: backend {index} declared dead, re-homing {} sessions",
        sessions.len()
    ));
    sessions
        .into_iter()
        .filter(|&s| fail_over_session(shared, obs, s, index).is_some())
        .count()
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Ctx {
    shared: Arc<Shared>,
    obs: Arc<Observer>,
    clock: Arc<dyn Clock>,
    read_timeout: Duration,
    write_timeout: Duration,
    idle_timeout: Duration,
    max_payload: usize,
}

fn no_backend() -> Response {
    Response::Error {
        code: ErrorCode::EngineDown,
        message: "no eligible backend".to_string(),
    }
}

/// The at-least-once guard: failover re-homed `session` from a shadow
/// stamped `shadow_seq` while `request` (which would occupy `op_seq` once
/// acked) was in flight. If the stamp shows the shadow already captured
/// the op — its refresh landed but the ack was lost on the dying
/// connection — re-sending would apply it a second time; synthesize the
/// response instead.
fn skip_failover_replay(request: &Request, shadow_seq: u64, op_seq: u64) -> Option<Response> {
    if shadow_seq < op_seq {
        return None;
    }
    match request {
        Request::CreateSession { .. } => Some(Response::Created),
        // The shadow already contains this step's progress: report no
        // *additional* delivery and let the client drive the next step.
        Request::Step { .. } => Some(Response::Stepped {
            delivered: 0,
            done: false,
        }),
        _ => None,
    }
}

/// Routes one session-scoped request to its owner, failing over (and
/// re-sending, unless the shadow stamp proves the op already landed)
/// when the owner proves unreachable. Mutating successes refresh the
/// session's shadow checkpoint afterwards.
fn route_session_op(ctx: &Ctx, session: SessionId, request: &Request) -> Response {
    let shared = &ctx.shared;
    if shared.panic_session == Some(session)
        && matches!(request, Request::Step { .. })
        && !shared.panic_fired.swap(true, Ordering::SeqCst)
    {
        // Injected fault (RouterConfig::fault_panic_session): die while
        // holding the registry lock — the worst-case poison a panicking
        // worker can leave for everyone else.
        let _guard = plock(&shared.registry);
        panic!("injected route-worker panic (fault_panic_session)");
    }
    let is_create = matches!(request, Request::CreateSession { .. });
    let is_mutating = matches!(
        request,
        Request::CreateSession { .. } | Request::Step { .. }
    );
    // Mutating ops on one session run serialized: two concurrent ops
    // minting `acked + 1` would share a sequence, and a shadow refreshed
    // by one would satisfy `shadow_seq >= op_seq` for the other in
    // `skip_failover_replay` — silently dropping a genuinely unapplied
    // op on failover. The lock is held across send + ack + shadow
    // refresh so sequence order equals application order.
    let op_lock = is_mutating.then(|| shared.op_lock(session));
    let _op_guard = op_lock.as_ref().map(|lock| plock(lock));
    // The op sequence this mutating op will occupy once acked: stamps the
    // post-op shadow, and on failover proves whether the recovered shadow
    // already captured it.
    let op_seq = is_mutating.then(|| shared.acked_seq(session) + 1);
    let attempts = plock(&shared.registry).len() + 1;
    let mut exclude = None;
    for _ in 0..attempts {
        let owner = {
            let registry = plock(&shared.registry);
            match registry.pinned(session) {
                Some(owner) => Some(owner),
                None if is_create => registry.rendezvous(session, exclude),
                None => {
                    return Response::Error {
                        code: ErrorCode::UnknownSession,
                        message: "session was never created through this router".to_string(),
                    }
                }
            }
        };
        let Some(owner) = owner else {
            return no_backend();
        };
        match send_to_backend(shared, owner, request) {
            Ok(response) => {
                match &response {
                    Response::Created => {
                        shared.pin_session(session, owner);
                        if let Some(seq) = op_seq {
                            shared.ack(session, seq);
                            refresh_shadow(shared, session, owner, seq);
                        }
                    }
                    Response::Stepped { .. } => {
                        if let Some(seq) = op_seq {
                            shared.ack(session, seq);
                            refresh_shadow(shared, session, owner, seq);
                        }
                    }
                    Response::Checkpointed(blob) => {
                        let seq = shared.acked_seq(session);
                        shared.store_shadow(session, seq, blob.clone());
                    }
                    _ => {}
                }
                return response;
            }
            Err(reason) => {
                ctx.obs.event(format!("route: forward failed: {reason}"));
                if is_create && plock(&shared.registry).pinned(session).is_none() {
                    // The session exists nowhere yet: no shadow to carry,
                    // just place it on the next-best backend.
                    plock(&shared.registry).set_state(owner, BackendState::Dead);
                    exclude = Some(owner);
                    continue;
                }
                if bury_backend(shared, &ctx.obs, owner) == 0
                    && fail_over_session(shared, &ctx.obs, session, owner).is_none()
                {
                    return no_backend();
                }
                if let Some(op_seq) = op_seq {
                    let shadow_seq = {
                        let shadows = plock(&shared.shadows);
                        shadows.entries.get(&session).map(|s| s.seq)
                    };
                    if let Some(response) = shadow_seq
                        .and_then(|shadow_seq| skip_failover_replay(request, shadow_seq, op_seq))
                    {
                        RouteMetrics::add(&shared.metrics.failover_replays_skipped, 1);
                        shared.ack(session, op_seq);
                        return response;
                    }
                }
            }
        }
    }
    no_backend()
}

fn aggregate_probe(ctx: &Ctx) -> Response {
    let indices = live_backends(&ctx.shared);
    let mut total = ProbeSummary::default();
    let mut reached = 0usize;
    for index in indices {
        if let Ok(Response::ProbeAck(summary)) =
            send_to_backend(&ctx.shared, index, &Request::Probe)
        {
            total.sessions_resident += summary.sessions_resident;
            total.sessions_cold += summary.sessions_cold;
            total.in_flight += summary.in_flight;
            reached += 1;
        }
    }
    if reached == 0 {
        return no_backend();
    }
    Response::ProbeAck(total)
}

fn aggregate_stats(ctx: &Ctx) -> Response {
    let indices = live_backends(&ctx.shared);
    let mut total = StatsSnapshot::default();
    let mut reached = 0usize;
    for index in indices {
        if let Ok(Response::Stats(snapshot)) = send_to_backend(&ctx.shared, index, &Request::Stats)
        {
            total.sessions_resident += snapshot.sessions_resident;
            total.sessions_cold += snapshot.sessions_cold;
            total.sessions_created += snapshot.sessions_created;
            total.batches += snapshot.batches;
            total.evictions += snapshot.evictions;
            total.restores += snapshot.restores;
            total.trace.merge(&snapshot.trace);
            let s = &snapshot.serve;
            total.serve.connections_accepted += s.connections_accepted;
            total.serve.connections_closed += s.connections_closed;
            total.serve.frames_in += s.frames_in;
            total.serve.frames_out += s.frames_out;
            total.serve.bytes_in += s.bytes_in;
            total.serve.bytes_out += s.bytes_out;
            total.serve.decode_rejects += s.decode_rejects;
            total.serve.backpressure_replies += s.backpressure_replies;
            total.serve.requests_ok += s.requests_ok;
            total.serve.requests_failed += s.requests_failed;
            total.serve.latency.merge(&s.latency);
            reached += 1;
        }
    }
    if reached == 0 {
        return no_backend();
    }
    Response::Stats(Box::new(total))
}

fn aggregate_observation(ctx: &Ctx) -> Response {
    let mut merged = build_route_observation(&ctx.shared, &ctx.obs);
    for index in live_backends(&ctx.shared) {
        if let Ok(Response::Observed(observation)) =
            send_to_backend(&ctx.shared, index, &Request::Observe)
        {
            merged.merge(&observation);
        }
    }
    Response::Observed(Box::new(merged))
}

/// The router's own observation: its observer's spans/events plus every
/// `route.*` counter, per-state backend gauges, and (in durable mode)
/// the state log's self-counters.
fn build_route_observation(shared: &Shared, obs: &Observer) -> Observation {
    let mut o = obs.observe();
    let c = shared.metrics.snapshot();
    o.push_counter("route.requests_in", c.requests_in);
    o.push_counter("route.requests_forwarded", c.requests_forwarded);
    o.push_counter("route.forward_failures", c.forward_failures);
    o.push_counter("route.sessions_handed_off", c.sessions_handed_off);
    o.push_counter("route.failovers", c.failovers);
    o.push_counter("route.failover_replays_skipped", c.failover_replays_skipped);
    o.push_counter("route.decode_rejects", c.decode_rejects);
    o.push_counter("route.probes_ok", c.probes_ok);
    o.push_counter("route.probes_failed", c.probes_failed);
    o.push_counter("route.shadow_refreshes", c.shadow_refreshes);
    o.push_counter("route.shadow_refresh_failures", c.shadow_refresh_failures);
    o.push_counter("route.pins_recovered", c.pins_recovered);
    o.push_counter("route.shadows_recovered", c.shadows_recovered);
    o.push_counter("route.state_append_failures", c.state_append_failures);
    if let Some(state) = &shared.state {
        let s = plock(state).counters();
        o.push_counter("route.state_appends", s.appends);
        o.push_counter("route.state_append_bytes", s.append_bytes);
        o.push_counter("route.state_compactions", s.compactions);
        o.push_counter("route.state_truncated_bytes", s.truncated_bytes);
    }
    let registry = plock(&shared.registry);
    o.push_counter(
        "route.backends_healthy",
        registry.count_in(BackendState::Healthy),
    );
    o.push_counter(
        "route.backends_degraded",
        registry.count_in(BackendState::Degraded),
    );
    o.push_counter(
        "route.backends_draining",
        registry.count_in(BackendState::Draining),
    );
    o.push_counter("route.backends_dead", registry.count_in(BackendState::Dead));
    o
}

fn live_backends(shared: &Shared) -> Vec<usize> {
    let registry = plock(&shared.registry);
    (0..registry.len())
        .filter(|&i| registry.backend(i).state != BackendState::Dead)
        .collect()
}

fn handle_request(ctx: &Ctx, request: &Request) -> Response {
    RouteMetrics::add(&ctx.shared.metrics.requests_in, 1);
    match request {
        Request::Ping => Response::Pong,
        Request::Probe => aggregate_probe(ctx),
        Request::Stats => aggregate_stats(ctx),
        Request::Observe => aggregate_observation(ctx),
        Request::HandoffExport { .. } | Request::Handoff { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "handoff frames are router-internal; use the router admin API".to_string(),
        },
        Request::CreateSession { session, .. }
        | Request::Step { session, .. }
        | Request::Predict { session }
        | Request::Checkpoint { session }
        | Request::Evict { session } => route_session_op(ctx, *session, request),
    }
}

// ---------------------------------------------------------------------------
// Probe loop
// ---------------------------------------------------------------------------

fn probe_loop(shared: &Arc<Shared>, obs: &Observer, clock: &dyn Clock, config: &RouterConfig) {
    while !shared.stop.load(Ordering::Relaxed) {
        let n = plock(&shared.registry).len();
        for index in 0..n {
            let state = plock(&shared.registry).backend(index).state;
            if !state.eligible() {
                continue;
            }
            let ok = probe_once(shared, index);
            let mut registry = plock(&shared.registry);
            let streak = registry.record_probe(index, ok);
            if ok {
                RouteMetrics::add(&shared.metrics.probes_ok, 1);
                if registry.backend(index).state == BackendState::Degraded {
                    registry.set_state(index, BackendState::Healthy);
                    obs.event(format!("route: backend {index} recovered"));
                }
            } else {
                RouteMetrics::add(&shared.metrics.probes_failed, 1);
                if streak >= config.dead_after {
                    drop(registry);
                    bury_backend(shared, obs, index);
                } else if streak >= config.degraded_after
                    && registry.backend(index).state == BackendState::Healthy
                {
                    registry.set_state(index, BackendState::Degraded);
                    obs.event(format!(
                        "route: backend {index} degraded after {streak} failed probes"
                    ));
                }
            }
        }
        clock.sleep(config.probe_interval);
    }
}

/// One probe over the backend's shared mux connection. Probes ride a
/// deliberately small `RetryAfter` budget so a saturated backend is
/// detected in bounded time; they do not touch the forward counters.
fn probe_once(shared: &Shared, index: usize) -> bool {
    matches!(
        shared.mux[index].request_with_budget(&Request::Probe, 64),
        Ok(Response::ProbeAck(_))
    )
}

// ---------------------------------------------------------------------------
// Client-facing front (acceptor + workers)
// ---------------------------------------------------------------------------

/// A running routing proxy.
///
/// Dropping the router shuts it down gracefully; [`Router::shutdown`]
/// does the same explicitly and is idempotent.
pub struct Router {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    observer: Arc<Observer>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds and starts serving in front of `config.backends`. With a
    /// state dir configured, pins and shadows are first recovered from
    /// the CHAMRTE1 log (a torn tail from a crashed predecessor is
    /// truncated away).
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`] if the config fails validation
    /// (`InvalidInput`), the listener cannot bind, or the state log
    /// cannot be opened.
    pub fn start(config: RouterConfig) -> std::io::Result<Self> {
        Self::start_with_clock(config, WallClock::shared())
    }

    /// [`Self::start`] with an injected [`Clock`] driving the probe
    /// cadence and idle reaping (virtual in tests, wall in production).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::start`].
    pub fn start_with_clock(config: RouterConfig, clock: Arc<dyn Clock>) -> std::io::Result<Self> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;

        // Recover durable state before anything routes: pins come back
        // keyed by address (mapped onto the current backend list; pins to
        // addresses no longer listed are dropped), shadows come back with
        // their sequence stamps seeding the acked-op counters.
        let mut registry = Registry::new(config.backends.clone(), config.salt);
        let mut shadow_table = ShadowTable::default();
        let mut recovered = (0u64, 0u64, 0u64); // pins, shadows, dropped
        let state = match &config.state_dir {
            Some(dir) => {
                let (log, image) = StateLog::open(dir)?;
                for (session, addr) in image.pins {
                    match registry.index_of(&addr) {
                        Some(index) => {
                            registry.pin(session, index);
                            recovered.0 += 1;
                        }
                        None => recovered.2 += 1,
                    }
                }
                for (session, (seq, blob)) in image.shadows {
                    shadow_table.acked.insert(session, seq);
                    shadow_table.entries.insert(session, Shadow { seq, blob });
                    recovered.1 += 1;
                }
                Some(Mutex::new(log))
            }
            None => None,
        };

        let mux = config
            .backends
            .iter()
            .enumerate()
            .map(|(index, addr)| {
                MuxConnection::new(
                    addr.clone(),
                    MuxOptions {
                        max_payload: config.max_payload,
                        write_timeout: config.write_timeout,
                        request_timeout: config.request_timeout,
                        retry_budget: config.backend_retries,
                        clock: Arc::clone(&clock),
                        backoff_seed: config.salt ^ (index as u64 + 1),
                    },
                )
            })
            .collect();

        let shared = Arc::new(Shared {
            registry: Mutex::new(registry),
            shadows: Mutex::new(shadow_table),
            handoff: Mutex::new(()),
            op_locks: Mutex::new(HashMap::new()),
            state,
            mux,
            metrics: RouteMetrics::default(),
            stop: AtomicBool::new(false),
            panic_session: config.fault_panic_session,
            panic_fired: AtomicBool::new(false),
        });
        RouteMetrics::add(&shared.metrics.pins_recovered, recovered.0);
        RouteMetrics::add(&shared.metrics.shadows_recovered, recovered.1);
        let observer = Arc::new(Observer::new(Arc::clone(&clock)));
        if recovered.0 > 0 || recovered.1 > 0 || recovered.2 > 0 {
            observer.event(format!(
                "route: recovered {} pins and {} shadows from the state log ({} pins dropped: address not in --backends)",
                recovered.0, recovered.1, recovered.2
            ));
        }

        let ctx = Ctx {
            shared: Arc::clone(&shared),
            obs: Arc::clone(&observer),
            clock: Arc::clone(&clock),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            idle_timeout: config.idle_timeout,
            max_payload: config.max_payload,
        };
        let (conn_tx, conn_rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.workers);
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let workers = (0..config.workers)
            .map(|index| {
                let ctx = ctx.clone();
                let conn_rx = Arc::clone(&conn_rx);
                std::thread::Builder::new()
                    .name(format!("route-worker-{index}"))
                    .spawn(move || worker_loop(&ctx, &conn_rx))
                    .expect("spawn route worker")
            })
            .collect();

        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("route-acceptor".to_string())
            .spawn(move || acceptor_loop(&listener, &conn_tx, &acceptor_shared))
            .expect("spawn route acceptor");

        let probe_shared = Arc::clone(&shared);
        let probe_obs = Arc::clone(&observer);
        let probe_config = config.clone();
        let prober = std::thread::Builder::new()
            .name("route-prober".to_string())
            .spawn(move || probe_loop(&probe_shared, &probe_obs, clock.as_ref(), &probe_config))
            .expect("spawn route prober");

        Ok(Self {
            local_addr,
            shared,
            observer,
            acceptor: Some(acceptor),
            workers,
            prober: Some(prober),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the router's counters.
    pub fn metrics(&self) -> RouteCounters {
        self.shared.metrics.snapshot()
    }

    /// The router's span recorder + event log (merged into `Observe`
    /// responses alongside the backends').
    pub fn observer(&self) -> Arc<Observer> {
        Arc::clone(&self.observer)
    }

    /// Each backend's address and current lifecycle state.
    pub fn backend_states(&self) -> Vec<(String, BackendState)> {
        let registry = plock(&self.shared.registry);
        registry
            .backends()
            .iter()
            .map(|b| (b.addr.clone(), b.state))
            .collect()
    }

    /// Where `session` is currently pinned, if anywhere.
    pub fn owner_of(&self, session: SessionId) -> Option<usize> {
        plock(&self.shared.registry).pinned(session)
    }

    /// Administratively drains a backend: marks it
    /// [`BackendState::Draining`] (no new sessions), then hands every
    /// pinned session off — `HandoffExport` from the draining node,
    /// `Handoff` of the blob to its rendezvous successor. A session
    /// whose export fails (the node died mid-drain) is re-homed from its
    /// shadow checkpoint instead. Returns how many sessions moved.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for an out-of-range index.
    pub fn drain_backend(&self, index: usize) -> std::io::Result<usize> {
        let shared = &self.shared;
        let sessions = {
            let mut registry = plock(&shared.registry);
            if index >= registry.len() {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidInput,
                    format!("no backend {index}"),
                ));
            }
            registry.set_state(index, BackendState::Draining);
            registry.sessions_on(index)
        };
        let mut moved = 0usize;
        for session in sessions {
            let (new, blob) = {
                let _guard = plock(&shared.handoff);
                let exported =
                    match send_to_backend(shared, index, &Request::HandoffExport { session }) {
                        Ok(Response::HandoffExported(blob)) => Some(blob),
                        _ => None,
                    };
                let Some(new) = plock(&shared.registry).rendezvous(session, Some(index)) else {
                    continue;
                };
                let blob = match exported {
                    Some(blob) => blob,
                    // Export failed (node died mid-drain): fall back to
                    // the shadow checkpoint, exactly like a kill failover.
                    None => {
                        let Some(blob) = plock(&shared.shadows)
                            .entries
                            .get(&session)
                            .map(|s| s.blob.clone())
                        else {
                            continue;
                        };
                        RouteMetrics::add(&shared.metrics.failovers, 1);
                        blob
                    }
                };
                match send_to_backend(
                    shared,
                    new,
                    &Request::Handoff {
                        session,
                        blob: blob.clone(),
                    },
                ) {
                    Ok(Response::HandoffAck)
                    | Ok(Response::Error {
                        code: ErrorCode::DuplicateSession,
                        ..
                    }) => (new, blob),
                    _ => continue,
                }
            };
            // Persisting happens outside the handoff guard (persist must
            // not run under the other locks; see `Shared` lock order).
            shared.pin_session(session, new);
            let seq = shared.acked_seq(session);
            shared.store_shadow(session, seq, blob);
            RouteMetrics::add(&shared.metrics.sessions_handed_off, 1);
            self.observer.event(format!(
                "route: session {session} handed off from backend {index} to {new}"
            ));
            moved += 1;
        }
        Ok(moved)
    }

    /// Administratively declares a backend dead and re-homes all its
    /// sessions from shadow checkpoints. Returns how many sessions were
    /// recovered.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for an out-of-range index.
    pub fn mark_dead(&self, index: usize) -> std::io::Result<usize> {
        if index >= plock(&self.shared.registry).len() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                format!("no backend {index}"),
            ));
        }
        Ok(bury_backend(&self.shared, &self.observer, index))
    }

    /// Graceful shutdown: stop accepting, join workers and the prober.
    /// Idempotent. Backends are left running — they are not the
    /// router's to stop.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(join) = self.acceptor.take() {
            let _ = join.join();
        }
        for join in self.workers.drain(..) {
            let _ = join.join();
        }
        if let Some(join) = self.prober.take() {
            let _ = join.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(listener: &TcpListener, conn_tx: &SyncSender<TcpStream>, shared: &Shared) {
    for incoming in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let stream = match incoming {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        match conn_tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Saturated: turn the connection away with a RetryAfter
                // frame (correlation 0 — no request was read).
                let frame = encode_frame(&Response::RetryAfter { millis: 2 }.encode_payload(0));
                let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                let _ = stream.write_all(&frame);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(ctx: &Ctx, conn_rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let stream = {
            // Poison-tolerant: a worker that panicked mid-request must
            // not take the connection queue (and thus every other
            // worker) down with it.
            let guard = plock(conn_rx);
            match guard.recv() {
                Ok(stream) => stream,
                Err(_) => return,
            }
        };
        handle_connection(ctx, stream);
    }
}

fn handle_connection(ctx: &Ctx, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let _ = stream.set_write_timeout(Some(ctx.write_timeout));
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 16 * 1024];
    let mut last_activity = ctx.clock.now_nanos();
    let idle_timeout_nanos = ctx.idle_timeout.as_nanos() as u64;
    loop {
        loop {
            match decode_frame(&buf, ctx.max_payload) {
                Ok((payload, used)) => {
                    buf.drain(..used);
                    if !serve_one(ctx, &mut stream, &payload) {
                        return;
                    }
                }
                Err(WireError::Truncated) => break,
                Err(error) => {
                    // Bad magic, hostile length, or CRC damage: the
                    // stream cannot be resynchronized. Answer with a
                    // typed error (correlation 0) and close.
                    RouteMetrics::add(&ctx.shared.metrics.decode_rejects, 1);
                    let reply = Response::Error {
                        code: ErrorCode::BadRequest,
                        message: error.to_string(),
                    };
                    let _ = write_response(&mut stream, 0, &reply);
                    return;
                }
            }
        }
        if ctx.shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => {
                last_activity = ctx.clock.now_nanos();
                buf.extend_from_slice(&scratch[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if ctx.clock.now_nanos().saturating_sub(last_activity) >= idle_timeout_nanos {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn serve_one(ctx: &Ctx, stream: &mut TcpStream, payload: &[u8]) -> bool {
    let (decoded, decode_nanos) = timed(ctx.clock.as_ref(), || Request::decode_payload(payload));
    ctx.obs.record(Stage::Decode, decode_nanos);
    let (correlation, request) = match decoded {
        Ok(decoded) => decoded,
        Err(error) => {
            RouteMetrics::add(&ctx.shared.metrics.decode_rejects, 1);
            let reply = Response::Error {
                code: ErrorCode::BadRequest,
                message: error.to_string(),
            };
            return write_response(stream, correlation_of(payload), &reply);
        }
    };
    let response = handle_request(ctx, &request);
    let (wrote, encode_nanos) = timed(ctx.clock.as_ref(), || {
        write_response(stream, correlation, &response)
    });
    ctx.obs.record(Stage::Encode, encode_nanos);
    wrote
}

fn write_response(stream: &mut TcpStream, correlation: u64, response: &Response) -> bool {
    let frame = encode_frame(&response.encode_payload(correlation));
    stream.write_all(&frame).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_skip_requires_the_shadow_to_have_caught_up() {
        let step = Request::Step {
            session: 1,
            batches: 3,
        };
        // Normal failover: the shadow is one op behind the in-flight op
        // and re-sending reproduces it — no skip.
        assert!(skip_failover_replay(&step, 4, 5).is_none());
        // The shadow already captured the op (refresh landed, ack lost):
        // re-sending would double-apply, so a response is synthesized.
        assert!(matches!(
            skip_failover_replay(&step, 5, 5),
            Some(Response::Stepped {
                delivered: 0,
                done: false
            })
        ));
        let create = Request::CreateSession {
            session: 1,
            spec: chameleon_fleet::SessionSpec {
                learner: Default::default(),
                stream: Default::default(),
                learner_seed: 0,
                stream_seed: 0,
            },
        };
        assert!(matches!(
            skip_failover_replay(&create, 1, 1),
            Some(Response::Created)
        ));
        // Non-mutating ops never skip — they are safe to re-send.
        assert!(skip_failover_replay(&Request::Predict { session: 1 }, 9, 5).is_none());
    }
}
