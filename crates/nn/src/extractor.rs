//! The frozen feature extractor `f_θ`.

use chameleon_tensor::{Matrix, Prng};

/// A frozen feature extractor standing in for the pre-trained MobileNetV1
/// trunk (layers 1–21) of the paper.
///
/// The extractor is a fixed random affine map followed by ReLU. It is
/// created once and never trained — exactly the architectural role of the
/// paper's frozen `f_θ`: a deterministic function that produces latent
/// activations whose class/domain cluster structure the head must learn.
/// ReLU keeps latents non-negative, matching real post-activation feature
/// maps.
///
/// Strategies that store *raw* samples (ER, DER, GSS) re-extract on every
/// replay — their extra compute shows up in the hardware cost model through
/// the extractor invocation counts, mirroring the paper's observation that
/// latent replay saves both memory and compute.
///
/// # Example
///
/// ```
/// use chameleon_nn::FrozenExtractor;
/// use chameleon_tensor::Prng;
///
/// let mut rng = Prng::new(0);
/// let f = FrozenExtractor::new(96, 64, &mut rng);
/// let raw = vec![0.5; 96];
/// let latent = f.extract(&raw);
/// assert_eq!(latent.len(), 64);
/// // Frozen: identical input, identical output, forever.
/// assert_eq!(f.extract(&raw), latent);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FrozenExtractor {
    /// Frozen affine stages, applied in order with ReLU after each.
    layers: Vec<(Matrix, Vec<f32>)>,
}

impl FrozenExtractor {
    /// Creates a single-stage extractor mapping `raw_dim` inputs to
    /// `latent_dim` non-negative features.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(raw_dim: usize, latent_dim: usize, rng: &mut Prng) -> Self {
        Self::deep(&[raw_dim, latent_dim], rng)
    }

    /// Creates a multi-stage extractor through the dimension chain `dims`
    /// (e.g. `[96, 80, 64]` = two frozen stages). Deeper extractors model
    /// cutting the frozen trunk at a *later* layer, the paper's latent-layer
    /// choice (§IV-A: layer 21 of 27).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given or any is zero.
    pub fn deep(dims: &[usize], rng: &mut Prng) -> Self {
        assert!(
            dims.len() >= 2,
            "extractor needs at least [raw, latent] dims"
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "extractor dimensions must be non-zero"
        );
        let layers = dims
            .windows(2)
            .map(|w| {
                let scale = (2.0 / w[0] as f32).sqrt();
                let mut weight = Matrix::randn(w[1], w[0], rng);
                weight.scale(scale);
                // Small positive bias keeps most units active so class
                // information survives the ReLU.
                (weight, vec![0.1; w[1]])
            })
            .collect();
        Self { layers }
    }

    /// Raw input dimension.
    pub fn raw_dim(&self) -> usize {
        self.layers[0].0.cols()
    }

    /// Latent output dimension.
    pub fn latent_dim(&self) -> usize {
        self.layers.last().expect("at least one stage").0.rows()
    }

    /// Number of frozen stages.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Extracts the latent feature vector of one raw sample.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len() != self.raw_dim()`.
    pub fn extract(&self, raw: &[f32]) -> Vec<f32> {
        assert_eq!(raw.len(), self.raw_dim(), "raw input length mismatch");
        let x = Matrix::from_vec(1, raw.len(), raw.to_vec());
        self.extract_batch(&x).into_vec()
    }

    /// Extracts a whole batch (`n × raw_dim` → `n × latent_dim`).
    ///
    /// # Panics
    ///
    /// Panics if `raw.cols() != self.raw_dim()`.
    pub fn extract_batch(&self, raw: &Matrix) -> Matrix {
        let mut cur = raw.clone();
        for (weight, bias) in &self.layers {
            let mut out = cur.matmul_nt(weight);
            out.add_row_broadcast(bias);
            for v in out.as_mut_slice() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            cur = out;
        }
        cur
    }

    /// MAC count of extracting `n` samples (used for hardware costing of
    /// methods that replay raw inputs through the trunk).
    pub fn macs(&self, n: usize) -> u64 {
        self.layers
            .iter()
            .map(|(w, _)| (n * w.rows() * w.cols()) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_non_negative() {
        let mut rng = Prng::new(0);
        let f = FrozenExtractor::new(16, 8, &mut rng);
        for _ in 0..50 {
            let raw: Vec<f32> = (0..16).map(|_| rng.randn()).collect();
            assert!(f.extract(&raw).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let mut rng = Prng::new(1);
        let f = FrozenExtractor::new(10, 6, &mut rng);
        let raw: Vec<f32> = (0..10).map(|i| i as f32 * 0.1).collect();
        assert_eq!(f.extract(&raw), f.extract(&raw));
    }

    #[test]
    fn batch_matches_single_extraction() {
        let mut rng = Prng::new(2);
        let f = FrozenExtractor::new(12, 5, &mut rng);
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|_| (0..12).map(|_| rng.randn()).collect())
            .collect();
        let batch = Matrix::try_from_row_iter(rows.iter().map(Vec::as_slice)).expect("valid rows");
        let out = f.extract_batch(&batch);
        for (r, raw) in rows.iter().enumerate() {
            let single = f.extract(raw);
            for (a, b) in out.row(r).iter().zip(&single) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn distinct_inputs_map_to_distinct_latents() {
        let mut rng = Prng::new(3);
        let f = FrozenExtractor::new(20, 10, &mut rng);
        let a: Vec<f32> = (0..20).map(|_| rng.randn()).collect();
        let b: Vec<f32> = (0..20).map(|_| rng.randn()).collect();
        assert_ne!(f.extract(&a), f.extract(&b));
    }

    #[test]
    fn mac_count_is_dense_projection() {
        let mut rng = Prng::new(4);
        let f = FrozenExtractor::new(30, 7, &mut rng);
        assert_eq!(f.macs(5), 5 * 30 * 7);
    }

    #[test]
    fn deep_extractor_chains_stages() {
        let mut rng = Prng::new(5);
        let f = FrozenExtractor::deep(&[20, 12, 8], &mut rng);
        assert_eq!(f.depth(), 2);
        assert_eq!(f.raw_dim(), 20);
        assert_eq!(f.latent_dim(), 8);
        let raw: Vec<f32> = (0..20).map(|_| rng.randn()).collect();
        let latent = f.extract(&raw);
        assert_eq!(latent.len(), 8);
        assert!(latent.iter().all(|&v| v >= 0.0));
        assert_eq!(f.macs(2), 2 * (20 * 12 + 12 * 8) as u64);
    }

    #[test]
    fn deep_and_shallow_extractors_differ() {
        let mut rng = Prng::new(6);
        let shallow = FrozenExtractor::deep(&[10, 6], &mut rng);
        let mut rng2 = Prng::new(6);
        let deep = FrozenExtractor::deep(&[10, 8, 6], &mut rng2);
        let raw = vec![0.5; 10];
        assert_ne!(shallow.extract(&raw), deep.extract(&raw));
    }
}
