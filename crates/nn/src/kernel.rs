//! Kernel-path selection for the trainable head's hot loops.

use chameleon_tensor::{kernels, ops};

/// Which implementation the head's matmul/softmax hot paths use.
///
/// `Scalar` is the legacy sequential-reduction path and stays the
/// default: its rounding order is baked into every golden checkpoint
/// and determinism contract at `f32` precision. `Chunked` selects the
/// autovectorizable kernels in [`chameleon_tensor::kernels`] and rides
/// along with the quantized latent codec (`Precision::F16`/`Int8`),
/// where both sides of every replay-determinism comparison run the same
/// kernel so the reassociated rounding cancels out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Sequential scalar reductions — bit-compatible with pre-codec runs.
    #[default]
    Scalar,
    /// Chunked multi-accumulator reductions (SIMD-friendly).
    Chunked,
}

impl Kernel {
    /// Numerically stable softmax through the selected kernel.
    pub fn softmax(self, logits: &[f32]) -> Vec<f32> {
        match self {
            Kernel::Scalar => ops::softmax(logits),
            Kernel::Chunked => kernels::softmax_chunked(logits),
        }
    }
}
