//! Minimal neural-network substrate for the Chameleon reproduction.
//!
//! The paper trains a MobileNetV1 whose feature extractor `f_θ` is frozen
//! (pre-trained, never updated) while a small head `g_φ` is trained online
//! with single-pass SGD. This crate provides both pieces from scratch:
//!
//! * [`FrozenExtractor`] — a fixed (never-trained) raw→latent map standing
//!   in for the frozen MobileNetV1 trunk (see `DESIGN.md` for why this
//!   substitution preserves the learning dynamics under study),
//! * [`MlpHead`] — the trainable classifier `g_φ` with explicit
//!   forward/backward so strategies can inspect and reuse gradients
//!   (GSS needs per-sample gradient vectors, EWC++ needs Fisher terms),
//! * [`loss`] — cross-entropy, logit-MSE (DER) and distillation (LwF)
//!   losses, each returning the loss value *and* the logit gradient,
//! * [`Sgd`] — SGD with momentum and weight decay,
//! * [`FisherDiagonal`] — the online Fisher accumulator used by EWC++.
//!
//! # Example: one training step
//!
//! ```
//! use chameleon_nn::{loss, MlpHead, Sgd};
//! use chameleon_tensor::{Matrix, Prng};
//!
//! let mut rng = Prng::new(0);
//! let mut head = MlpHead::new(&[8, 4], &mut rng);
//! let mut sgd = Sgd::new(0.1);
//! let x = Matrix::randn(2, 8, &mut rng);
//! let labels = [0usize, 3];
//!
//! let fwd = head.forward(&x);
//! let (loss_value, dlogits) = loss::softmax_cross_entropy(fwd.logits(), &labels);
//! let grads = head.backward(&fwd, &dlogits);
//! head.apply(&grads, &mut sgd);
//! assert!(loss_value.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod extractor;
mod fisher;
mod head;
mod kernel;
mod linear;
pub mod loss;
mod sgd;

pub use extractor::FrozenExtractor;
pub use fisher::FisherDiagonal;
pub use head::{Forward, Gradients, MlpHead};
pub use kernel::Kernel;
pub use linear::Linear;
pub use sgd::Sgd;
