//! SGD optimizer with momentum and weight decay.

use std::collections::HashMap;

use chameleon_tensor::Matrix;

use crate::Linear;

/// Stochastic gradient descent, the optimizer the paper uses for all
/// experiments (lr = 0.001, batch size 10, single pass).
///
/// Momentum buffers are allocated lazily per layer index, so one `Sgd` value
/// serves a whole [`MlpHead`](crate::MlpHead) regardless of depth.
///
/// # Example
///
/// ```
/// use chameleon_nn::Sgd;
///
/// let sgd = Sgd::new(0.001).with_momentum(0.9).with_weight_decay(1e-4);
/// assert_eq!(sgd.learning_rate(), 0.001);
/// ```
/// A corrupted replay sample (e.g. a memory upset flipping a float's
/// exponent) can push activations to ±∞ and poison the gradients; one such
/// step would destroy the head and, with momentum, keep destroying it on
/// every later step. `step` therefore rejects any update whose gradients
/// contain NaN/Inf, counting it in [`Sgd::skipped_updates`] instead of
/// applying it.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<usize, (Matrix, Vec<f32>)>,
    skipped_updates: u64,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate (no momentum, no
    /// weight decay).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: HashMap::new(),
            skipped_updates: 0,
        }
    }

    /// Builder: sets the momentum coefficient in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Builder: sets L2 weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay < 0`.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (e.g. for schedules in ablations).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one step to `layer` (identified by `layer_index` for the
    /// momentum buffer) with gradients `(dw, db)`.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shapes do not match the layer.
    /// Does nothing (beyond incrementing [`Sgd::skipped_updates`]) when any
    /// gradient entry is NaN or infinite.
    pub fn step(&mut self, layer_index: usize, layer: &mut Linear, dw: &Matrix, db: &[f32]) {
        let finite =
            dw.as_slice().iter().all(|v| v.is_finite()) && db.iter().all(|v| v.is_finite());
        if !finite {
            self.skipped_updates += 1;
            return;
        }
        let mut dw_eff = dw.clone();
        if self.weight_decay > 0.0 {
            dw_eff.axpy(self.weight_decay, layer.weight());
        }
        let mut db_eff = db.to_vec();
        if self.weight_decay > 0.0 {
            for (g, &b) in db_eff.iter_mut().zip(layer.bias()) {
                *g += self.weight_decay * b;
            }
        }

        if self.momentum > 0.0 {
            let (vw, vb) = self
                .velocity
                .entry(layer_index)
                .or_insert_with(|| (Matrix::zeros(dw.rows(), dw.cols()), vec![0.0; db.len()]));
            vw.scale(self.momentum);
            vw.axpy(1.0, &dw_eff);
            for (v, &g) in vb.iter_mut().zip(&db_eff) {
                *v = self.momentum * *v + g;
            }
            layer.apply_raw(vw, vb, self.lr);
        } else {
            layer.apply_raw(&dw_eff, &db_eff, self.lr);
        }
    }

    /// Clears momentum state (used when a strategy resets between domains).
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }

    /// Number of updates rejected because their gradients contained
    /// NaN/Inf values.
    pub fn skipped_updates(&self) -> u64 {
        self.skipped_updates
    }

    /// Overwrites the skipped-update counter — used when restoring a
    /// checkpointed learner so its lifetime resilience counts survive
    /// eviction.
    pub fn restore_skipped_updates(&mut self, count: u64) {
        self.skipped_updates = count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_tensor::Prng;

    fn quadratic_grad(layer: &Linear) -> (Matrix, Vec<f32>) {
        // Gradient of 0.5‖W‖² + 0.5‖b‖² is (W, b): descending should shrink
        // the parameters toward zero.
        (layer.weight().clone(), layer.bias().to_vec())
    }

    #[test]
    fn plain_sgd_shrinks_quadratic() {
        let mut rng = Prng::new(0);
        let mut layer = Linear::new(3, 3, &mut rng);
        let mut sgd = Sgd::new(0.1);
        let initial = layer.weight().frobenius_norm();
        for _ in 0..100 {
            let (dw, db) = quadratic_grad(&layer);
            sgd.step(0, &mut layer, &dw, &db);
        }
        assert!(layer.weight().frobenius_norm() < initial * 0.01);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let mut rng = Prng::new(1);
        let layer0 = Linear::new(4, 4, &mut rng);

        let run = |mut sgd: Sgd| {
            let mut layer = layer0.clone();
            for _ in 0..20 {
                let (dw, db) = quadratic_grad(&layer);
                sgd.step(0, &mut layer, &dw, &db);
            }
            layer.weight().frobenius_norm()
        };
        let plain = run(Sgd::new(0.05));
        let momentum = run(Sgd::new(0.05).with_momentum(0.9));
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn weight_decay_pulls_toward_zero_with_zero_gradient() {
        let mut rng = Prng::new(2);
        let mut layer = Linear::new(2, 2, &mut rng);
        let mut sgd = Sgd::new(0.1).with_weight_decay(0.5);
        let initial = layer.weight().frobenius_norm();
        let zero_dw = Matrix::zeros(2, 2);
        let zero_db = vec![0.0; 2];
        for _ in 0..50 {
            sgd.step(0, &mut layer, &zero_dw, &zero_db);
        }
        assert!(layer.weight().frobenius_norm() < initial * 0.1);
    }

    #[test]
    fn reset_state_clears_momentum() {
        let mut rng = Prng::new(3);
        let mut layer = Linear::new(2, 2, &mut rng);
        let mut sgd = Sgd::new(0.1).with_momentum(0.9);
        let (dw, db) = quadratic_grad(&layer);
        sgd.step(0, &mut layer, &dw, &db);
        assert!(!sgd.velocity.is_empty());
        sgd.reset_state();
        assert!(sgd.velocity.is_empty());
    }

    #[test]
    fn non_finite_gradients_are_skipped_not_applied() {
        let mut rng = Prng::new(4);
        let mut layer = Linear::new(2, 2, &mut rng);
        let mut sgd = Sgd::new(0.1).with_momentum(0.9);
        let before = layer.weight().clone();

        let mut bad_dw = Matrix::zeros(2, 2);
        bad_dw.set(0, 1, f32::NAN);
        sgd.step(0, &mut layer, &bad_dw, &[0.0, 0.0]);
        sgd.step(0, &mut layer, &Matrix::zeros(2, 2), &[f32::INFINITY, 0.0]);

        assert_eq!(sgd.skipped_updates(), 2);
        assert_eq!(layer.weight().as_slice(), before.as_slice());
        assert!(
            sgd.velocity.is_empty(),
            "skipped steps must not touch momentum"
        );

        // A clean step afterwards still works.
        let (dw, db) = quadratic_grad(&layer);
        sgd.step(0, &mut layer, &dw, &db);
        assert_eq!(sgd.skipped_updates(), 2);
        assert!(layer.weight().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0);
    }
}
