//! Fully-connected layer with explicit forward/backward.

use chameleon_tensor::{Matrix, Prng};

/// A dense affine layer `y = x · Wᵀ + b`.
///
/// Weights are stored as an `out × in` matrix so a batch forward pass is a
/// single `matmul_nt`. The layer itself is stateless across calls — the
/// input needed for the backward pass is carried by the caller (see
/// [`MlpHead`](crate::MlpHead)), which keeps the layer trivially `Clone`
/// for strategies that snapshot old models (LwF, DER teacher logits).
#[derive(Clone, Debug, PartialEq)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with Kaiming/He-style `N(0, 2/fan_in)` weights and
    /// zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Prng) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "layer dimensions must be non-zero"
        );
        let scale = (2.0 / in_features as f32).sqrt();
        let mut weight = Matrix::randn(out_features, in_features, rng);
        weight.scale(scale);
        Self {
            weight,
            bias: vec![0.0; out_features],
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.cols()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.rows()
    }

    /// Borrow the weight matrix (`out × in`).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Borrow the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Total trainable parameter count (`out·in + out`).
    pub fn parameter_count(&self) -> usize {
        self.weight.rows() * self.weight.cols() + self.bias.len()
    }

    /// Forward pass: `x` is `batch × in`, returns `batch × out`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_features()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_with(x, crate::Kernel::Scalar)
    }

    /// Forward pass through an explicit kernel path (see
    /// [`Kernel`](crate::Kernel) for when the chunked path is legal).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_features()`.
    pub fn forward_with(&self, x: &Matrix, kernel: crate::Kernel) -> Matrix {
        let mut y = match kernel {
            crate::Kernel::Scalar => x.matmul_nt(&self.weight),
            crate::Kernel::Chunked => chameleon_tensor::kernels::matmul_nt_chunked(x, &self.weight),
        };
        y.add_row_broadcast(&self.bias);
        y
    }

    /// Backward pass. Given the layer input `x` and upstream gradient `dy`
    /// (`batch × out`), returns `(dx, dw, db)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches between `x`, `dy`, and the layer.
    pub fn backward(&self, x: &Matrix, dy: &Matrix) -> (Matrix, Matrix, Vec<f32>) {
        assert_eq!(x.rows(), dy.rows(), "batch size mismatch in backward");
        assert_eq!(
            dy.cols(),
            self.out_features(),
            "dy width must equal out_features"
        );
        let dx = dy.matmul(&self.weight);
        let dw = dy.matmul_tn(x);
        let db = dy.sum_rows();
        (dx, dw, db)
    }

    /// Applies a raw gradient step `W -= lr·dW`, `b -= lr·db` (no momentum;
    /// momentum lives in [`Sgd`](crate::Sgd)).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn apply_raw(&mut self, dw: &Matrix, db: &[f32], lr: f32) {
        self.weight.axpy(-lr, dw);
        assert_eq!(db.len(), self.bias.len(), "db length mismatch");
        for (b, &g) in self.bias.iter_mut().zip(db) {
            *b -= lr * g;
        }
    }

    /// Flattens parameters into `out` (weights row-major, then bias).
    pub fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weight.as_slice());
        out.extend_from_slice(&self.bias);
    }

    /// Reads parameters back from a flat slice; returns the number consumed.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is shorter than [`Self::parameter_count`].
    pub fn read_params(&mut self, flat: &[f32]) -> usize {
        let wn = self.weight.rows() * self.weight.cols();
        let total = wn + self.bias.len();
        assert!(flat.len() >= total, "flat parameter slice too short");
        self.weight.as_mut_slice().copy_from_slice(&flat[..wn]);
        self.bias.copy_from_slice(&flat[wn..total]);
        total
    }

    /// Forward MAC count for a batch of `n` rows.
    pub fn forward_macs(&self, n: usize) -> u64 {
        (n * self.weight.rows() * self.weight.cols()) as u64
    }

    /// Backward MAC count for a batch of `n` rows (dx + dw passes).
    pub fn backward_macs(&self, n: usize) -> u64 {
        2 * self.forward_macs(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Prng::new(0);
        let mut layer = Linear::new(3, 2, &mut rng);
        // Zero the weights; output should equal the bias broadcast.
        layer.weight.scale(0.0);
        layer.bias = vec![1.0, -1.0];
        let x = Matrix::filled(4, 3, 5.0);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut rng = Prng::new(1);
        let layer = Linear::new(4, 3, &mut rng);
        let x = Matrix::randn(2, 4, &mut rng);

        // Scalar objective: sum of outputs. Then dy = ones and analytic
        // dW[r][c] = Σ_batch x[b][c], db[r] = batch size.
        let dy = Matrix::filled(2, 3, 1.0);
        let (dx, dw, db) = layer.backward(&x, &dy);

        let col_sums = {
            let mut s = vec![0.0f32; 4];
            for r in 0..2 {
                for (c, &v) in x.row(r).iter().enumerate() {
                    s[c] += v;
                }
            }
            s
        };
        for r in 0..3 {
            for (c, &want) in col_sums.iter().enumerate() {
                assert!((dw.get(r, c) - want).abs() < 1e-5);
            }
        }
        assert!(db.iter().all(|&g| (g - 2.0).abs() < 1e-6));
        // dx = dy · W = column sums of W rows.
        for b in 0..2 {
            for c in 0..4 {
                let want: f32 = (0..3).map(|r| layer.weight.get(r, c)).sum();
                assert!((dx.get(b, c) - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn numeric_gradient_check_on_loss() {
        // Full finite-difference check of dL/dW for L = 0.5 * Σ y².
        let mut rng = Prng::new(2);
        let layer = Linear::new(3, 2, &mut rng);
        let x = Matrix::randn(2, 3, &mut rng);

        let loss = |l: &Linear| -> f32 {
            let y = l.forward(&x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        let y = layer.forward(&x);
        let (_, dw, db) = layer.backward(&x, &y); // dL/dy = y

        let eps = 1e-3;
        #[allow(clippy::needless_range_loop)]
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = layer.clone();
                plus.weight.set(r, c, plus.weight.get(r, c) + eps);
                let mut minus = layer.clone();
                minus.weight.set(r, c, minus.weight.get(r, c) - eps);
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                assert!(
                    (numeric - dw.get(r, c)).abs() < 2e-2,
                    "dW[{r}][{c}] numeric {numeric} analytic {}",
                    dw.get(r, c)
                );
            }
            let mut plus = layer.clone();
            plus.bias[r] += eps;
            let mut minus = layer.clone();
            minus.bias[r] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!((numeric - db[r]).abs() < 2e-2);
        }
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = Prng::new(3);
        let layer = Linear::new(5, 4, &mut rng);
        let mut flat = Vec::new();
        layer.write_params(&mut flat);
        assert_eq!(flat.len(), layer.parameter_count());
        let mut copy = Linear::new(5, 4, &mut rng);
        let consumed = copy.read_params(&flat);
        assert_eq!(consumed, flat.len());
        assert_eq!(copy, layer);
    }

    #[test]
    fn apply_raw_moves_against_gradient() {
        let mut rng = Prng::new(4);
        let mut layer = Linear::new(2, 2, &mut rng);
        let before = layer.weight.get(0, 0);
        let dw = Matrix::filled(2, 2, 1.0);
        layer.apply_raw(&dw, &[0.0, 0.0], 0.5);
        assert!((layer.weight.get(0, 0) - (before - 0.5)).abs() < 1e-6);
    }

    #[test]
    fn mac_counts() {
        let mut rng = Prng::new(5);
        let layer = Linear::new(10, 7, &mut rng);
        assert_eq!(layer.forward_macs(3), 3 * 10 * 7);
        assert_eq!(layer.backward_macs(3), 2 * 3 * 10 * 7);
    }
}
