//! Online Fisher-information accumulator for EWC++.

/// Diagonal Fisher information maintained online, as in EWC++
/// (Chaudhry et al., 2018): `F ← γ·F + (1−γ)·g²` after every step, with a
/// moving anchor `θ*` of the parameters.
///
/// The quadratic penalty `λ/2 · Σ_i F_i (θ_i − θ*_i)²` is added to the loss;
/// its gradient `λ · F_i (θ_i − θ*_i)` is what [`Self::penalty_gradient`]
/// returns.
#[derive(Clone, Debug, PartialEq)]
pub struct FisherDiagonal {
    fisher: Vec<f32>,
    anchor: Vec<f32>,
    decay: f32,
}

impl FisherDiagonal {
    /// Creates an accumulator for `dim` parameters with EMA decay `γ`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `decay` is outside `[0, 1)`.
    pub fn new(dim: usize, decay: f32) -> Self {
        assert!(dim > 0, "parameter dimension must be non-zero");
        assert!((0.0..1.0).contains(&decay), "decay must be in [0,1)");
        Self {
            fisher: vec![0.0; dim],
            anchor: vec![0.0; dim],
            decay,
        }
    }

    /// Number of tracked parameters.
    pub fn dim(&self) -> usize {
        self.fisher.len()
    }

    /// Current Fisher diagonal.
    pub fn fisher(&self) -> &[f32] {
        &self.fisher
    }

    /// Current anchor parameters `θ*`.
    pub fn anchor(&self) -> &[f32] {
        &self.anchor
    }

    /// Folds a new gradient sample into the running Fisher estimate:
    /// `F ← γ·F + (1−γ)·g²`.
    ///
    /// # Panics
    ///
    /// Panics if `gradient.len() != self.dim()`.
    pub fn observe_gradient(&mut self, gradient: &[f32]) {
        assert_eq!(
            gradient.len(),
            self.fisher.len(),
            "gradient dimension mismatch"
        );
        let keep = self.decay;
        let add = 1.0 - self.decay;
        for (f, &g) in self.fisher.iter_mut().zip(gradient) {
            *f = keep * *f + add * g * g;
        }
    }

    /// Re-anchors `θ*` at the given parameters (called at domain/window
    /// boundaries or every step in fully-online mode).
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.dim()`.
    pub fn update_anchor(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.fisher.len(),
            "parameter dimension mismatch"
        );
        self.anchor.copy_from_slice(params);
    }

    /// Gradient of the EWC penalty at `params`: `λ · F ⊙ (θ − θ*)`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.dim()`.
    pub fn penalty_gradient(&self, params: &[f32], lambda: f32) -> Vec<f32> {
        assert_eq!(
            params.len(),
            self.fisher.len(),
            "parameter dimension mismatch"
        );
        self.fisher
            .iter()
            .zip(params)
            .zip(&self.anchor)
            .map(|((&f, &p), &a)| lambda * f * (p - a))
            .collect()
    }

    /// Value of the EWC penalty `λ/2 · Σ F (θ − θ*)²`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.dim()`.
    pub fn penalty(&self, params: &[f32], lambda: f32) -> f32 {
        assert_eq!(
            params.len(),
            self.fisher.len(),
            "parameter dimension mismatch"
        );
        0.5 * lambda
            * self
                .fisher
                .iter()
                .zip(params)
                .zip(&self.anchor)
                .map(|((&f, &p), &a)| f * (p - a) * (p - a))
                .sum::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fisher_accumulates_squared_gradients() {
        let mut f = FisherDiagonal::new(3, 0.0);
        f.observe_gradient(&[1.0, -2.0, 0.5]);
        assert_eq!(f.fisher(), &[1.0, 4.0, 0.25]);
    }

    #[test]
    fn decay_blends_old_and_new() {
        let mut f = FisherDiagonal::new(1, 0.9);
        f.observe_gradient(&[1.0]); // F = 0.1
        f.observe_gradient(&[0.0]); // F = 0.09
        assert!((f.fisher()[0] - 0.09).abs() < 1e-6);
    }

    #[test]
    fn penalty_is_zero_at_anchor() {
        let mut f = FisherDiagonal::new(2, 0.5);
        f.observe_gradient(&[1.0, 1.0]);
        f.update_anchor(&[0.3, -0.7]);
        assert_eq!(f.penalty(&[0.3, -0.7], 10.0), 0.0);
        assert!(f
            .penalty_gradient(&[0.3, -0.7], 10.0)
            .iter()
            .all(|&g| g == 0.0));
    }

    #[test]
    fn penalty_grows_quadratically_away_from_anchor() {
        let mut f = FisherDiagonal::new(1, 0.0);
        f.observe_gradient(&[2.0]); // F = 4
        f.update_anchor(&[0.0]);
        let p1 = f.penalty(&[1.0], 1.0);
        let p2 = f.penalty(&[2.0], 1.0);
        assert!((p1 - 2.0).abs() < 1e-6); // 0.5·4·1
        assert!((p2 - 8.0).abs() < 1e-6); // 0.5·4·4
    }

    #[test]
    fn penalty_gradient_matches_finite_difference() {
        let mut f = FisherDiagonal::new(3, 0.0);
        f.observe_gradient(&[1.0, 0.5, 2.0]);
        f.update_anchor(&[0.1, 0.2, 0.3]);
        let params = [0.5, -0.4, 1.0];
        let lambda = 3.0;
        let grad = f.penalty_gradient(&params, lambda);
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = params;
            plus[i] += eps;
            let mut minus = params;
            minus[i] -= eps;
            let numeric = (f.penalty(&plus, lambda) - f.penalty(&minus, lambda)) / (2.0 * eps);
            assert!((numeric - grad[i]).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn invalid_decay_panics() {
        let _ = FisherDiagonal::new(3, 1.0);
    }
}
