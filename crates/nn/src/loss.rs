//! Loss functions, each returning `(loss, dloss/dlogits)`.
//!
//! Every continual-learning baseline in the paper combines one or more of
//! these on the logit tensor:
//!
//! * cross-entropy — all methods' primary objective,
//! * MSE on logits — DER's dark-knowledge replay term,
//! * temperature-scaled distillation KL — LwF's old-task term.

use chameleon_tensor::ops;
use chameleon_tensor::Matrix;

/// Softmax cross-entropy averaged over the batch.
///
/// Returns the mean loss and the logit gradient `(softmax − one_hot)/n`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
///
/// # Example
///
/// ```
/// use chameleon_nn::loss::softmax_cross_entropy;
/// use chameleon_tensor::Matrix;
///
/// let logits = Matrix::from_rows(&[&[10.0, -10.0]]);
/// let (l, _) = softmax_cross_entropy(&logits, &[0]);
/// assert!(l < 1e-3); // confidently correct
/// ```
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "one label per batch row required"
    );
    let n = logits.rows();
    let classes = logits.cols();
    let mut grad = Matrix::zeros(n, classes);
    let mut total = 0.0;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range ({classes})");
        let probs = ops::softmax(logits.row(r));
        total += ops::cross_entropy(&probs, label);
        let grow = grad.row_mut(r);
        for (c, &p) in probs.iter().enumerate() {
            grow[c] = (p - if c == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    (total / n as f32, grad)
}

/// Squared error between logits and stored target logits, summed over the
/// class dimension and averaged over the batch — DER's replay loss
/// (`α·‖z − h(x)‖²`, Buzzega et al. Eq. 1).
///
/// Per-row (not per-element) normalization keeps the replay gradient on the
/// same scale as the cross-entropy term regardless of the class count, so
/// DER's `α` means the same thing at 10 or 50 classes.
///
/// Returns the mean loss and the gradient `2(logits − target)/n`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn logit_mse(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    assert_eq!(
        (logits.rows(), logits.cols()),
        (targets.rows(), targets.cols()),
        "logit_mse shape mismatch"
    );
    let scale = 1.0 / logits.rows() as f32;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let mut total = 0.0;
    for ((g, &l), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(logits.as_slice())
        .zip(targets.as_slice())
    {
        let diff = l - t;
        total += diff * diff;
        *g = 2.0 * diff * scale;
    }
    (total * scale, grad)
}

/// Temperature-scaled distillation loss (LwF): cross-entropy of the student's
/// tempered softmax against the teacher's tempered softmax, averaged over the
/// batch and multiplied by `T²` (the standard gradient-scale correction).
///
/// Returns the loss and its gradient with respect to the *student* logits.
///
/// # Panics
///
/// Panics if the shapes differ or `temperature <= 0`.
pub fn distillation(student: &Matrix, teacher: &Matrix, temperature: f32) -> (f32, Matrix) {
    assert_eq!(
        (student.rows(), student.cols()),
        (teacher.rows(), teacher.cols()),
        "distillation shape mismatch"
    );
    assert!(temperature > 0.0, "temperature must be positive");
    let n = student.rows();
    let t = temperature;
    let mut grad = Matrix::zeros(student.rows(), student.cols());
    let mut total = 0.0;
    for r in 0..n {
        let s_temp: Vec<f32> = student.row(r).iter().map(|&v| v / t).collect();
        let q_temp: Vec<f32> = teacher.row(r).iter().map(|&v| v / t).collect();
        let p_student = ops::softmax(&s_temp);
        let p_teacher = ops::softmax(&q_temp);
        let log_student = ops::log_softmax(&s_temp);
        // CE(teacher ‖ student) = −Σ p_teacher · log p_student.
        total += -p_teacher
            .iter()
            .zip(&log_student)
            .map(|(&pt, &ls)| pt * ls)
            .sum::<f32>();
        // d/ds of T²·CE averaged over batch: T·(p_student − p_teacher)/n.
        let grow = grad.row_mut(r);
        for (c, g) in grow.iter_mut().enumerate() {
            *g = t * (p_student[c] - p_teacher[c]) / n as f32;
        }
    }
    (total * t * t / n as f32, grad)
}

/// Batch accuracy: fraction of rows whose argmax logit equals the label.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f32 {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "one label per batch row required"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|&(r, &label)| ops::argmax(logits.row(r)) == label)
        .count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_tensor::Prng;

    #[test]
    fn cross_entropy_gradient_sums_to_zero_per_row() {
        let mut rng = Prng::new(0);
        let logits = Matrix::randn(3, 5, &mut rng);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 2, 4]);
        for r in 0..3 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn cross_entropy_gradient_is_negative_at_label() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0, 0.0]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        assert!(grad.get(0, 1) < 0.0);
        assert!(grad.get(0, 0) > 0.0);
    }

    #[test]
    fn cross_entropy_matches_finite_difference() {
        let mut rng = Prng::new(1);
        let logits = Matrix::randn(2, 4, &mut rng);
        let labels = [3usize, 1];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..4 {
                let mut plus = logits.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = logits.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let numeric = (softmax_cross_entropy(&plus, &labels).0
                    - softmax_cross_entropy(&minus, &labels).0)
                    / (2.0 * eps);
                assert!((numeric - grad.get(r, c)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn logit_mse_zero_when_equal() {
        let mut rng = Prng::new(2);
        let a = Matrix::randn(2, 3, &mut rng);
        let (l, g) = logit_mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn logit_mse_matches_finite_difference() {
        let mut rng = Prng::new(3);
        let logits = Matrix::randn(2, 3, &mut rng);
        let targets = Matrix::randn(2, 3, &mut rng);
        let (_, grad) = logit_mse(&logits, &targets);
        let eps = 1e-3;
        let mut plus = logits.clone();
        plus.set(1, 2, plus.get(1, 2) + eps);
        let mut minus = logits.clone();
        minus.set(1, 2, minus.get(1, 2) - eps);
        let numeric = (logit_mse(&plus, &targets).0 - logit_mse(&minus, &targets).0) / (2.0 * eps);
        assert!((numeric - grad.get(1, 2)).abs() < 1e-3);
    }

    #[test]
    fn distillation_zero_when_student_equals_teacher() {
        let mut rng = Prng::new(4);
        let logits = Matrix::randn(3, 6, &mut rng);
        let (_, grad) = distillation(&logits, &logits, 2.0);
        assert!(grad.as_slice().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn distillation_gradient_matches_finite_difference() {
        let mut rng = Prng::new(5);
        let student = Matrix::randn(2, 4, &mut rng);
        let teacher = Matrix::randn(2, 4, &mut rng);
        let t = 2.0;
        let (_, grad) = distillation(&student, &teacher, t);
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..4 {
                let mut plus = student.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = student.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let numeric = (distillation(&plus, &teacher, t).0
                    - distillation(&minus, &teacher, t).0)
                    / (2.0 * eps);
                assert!(
                    (numeric - grad.get(r, c)).abs() < 2e-3,
                    "({r},{c}) numeric {numeric} analytic {}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[5.0, -5.0]]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_of_empty_batch_is_zero() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0]]);
        // One-row matrix with mismatched empty labels panics; build a valid
        // empty check through the public contract instead.
        let (l, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(l.is_finite());
    }
}
