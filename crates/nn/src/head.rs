//! The trainable classifier head `g_φ`.

use chameleon_tensor::{Matrix, Prng};

use crate::{Kernel, Linear, Sgd};

/// The trainable head `g_φ` mapping latent activations to class logits —
/// the only part of the network that learns online, exactly as in the paper
/// (the MobileNetV1 trunk below layer 21 stays frozen).
///
/// The head is a stack of [`Linear`] layers with ReLU between them (none
/// after the last). A single-layer head (`&[latent_dim, classes]`) is the
/// default configuration used in the experiments; deeper heads are supported
/// for ablations.
///
/// # Example
///
/// ```
/// use chameleon_nn::MlpHead;
/// use chameleon_tensor::{Matrix, Prng};
///
/// let mut rng = Prng::new(0);
/// let head = MlpHead::new(&[16, 32, 10], &mut rng);
/// let x = Matrix::randn(4, 16, &mut rng);
/// let logits = head.logits(&x);
/// assert_eq!((logits.rows(), logits.cols()), (4, 10));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MlpHead {
    layers: Vec<Linear>,
    /// Hot-path implementation for forward matmuls. Not a learnable
    /// quantity — it changes rounding order, so it is part of a run's
    /// determinism configuration, selected once from the precision knob.
    kernel: Kernel,
}

/// Cached activations from a forward pass, needed for the backward pass.
///
/// `inputs[i]` is the input to layer `i` *after* the preceding ReLU; the
/// final entry of `post` is the logits.
#[derive(Clone, Debug)]
pub struct Forward {
    /// Input to each layer (post-activation of the previous one).
    inputs: Vec<Matrix>,
    /// Pre-activation output of each layer.
    pre: Vec<Matrix>,
}

impl Forward {
    /// The network output (logits of the last layer).
    pub fn logits(&self) -> &Matrix {
        self.pre
            .last()
            .expect("forward pass has at least one layer")
    }
}

/// Per-layer gradients produced by [`MlpHead::backward`].
#[derive(Clone, Debug)]
pub struct Gradients {
    /// `(dW, db)` for each layer, in layer order.
    pub per_layer: Vec<(Matrix, Vec<f32>)>,
}

impl Gradients {
    /// Flattens all gradients into a single vector, matching the layout of
    /// [`MlpHead::parameters`]. Used by GSS (gradient-direction buffer
    /// scores) and EWC++ (Fisher accumulation).
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for (dw, db) in &self.per_layer {
            out.extend_from_slice(dw.as_slice());
            out.extend_from_slice(db);
        }
        out
    }

    /// Scales every gradient in place.
    pub fn scale(&mut self, alpha: f32) {
        for (dw, db) in &mut self.per_layer {
            dw.scale(alpha);
            for g in db.iter_mut() {
                *g *= alpha;
            }
        }
    }

    /// Accumulates `alpha * other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the layer structures differ.
    pub fn axpy(&mut self, alpha: f32, other: &Gradients) {
        assert_eq!(
            self.per_layer.len(),
            other.per_layer.len(),
            "layer count mismatch"
        );
        for ((dw, db), (odw, odb)) in self.per_layer.iter_mut().zip(&other.per_layer) {
            dw.axpy(alpha, odw);
            for (g, &og) in db.iter_mut().zip(odb) {
                *g += alpha * og;
            }
        }
    }
}

impl MlpHead {
    /// Creates a head from a dimension chain `[in, hidden…, classes]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given or any is zero.
    pub fn new(dims: &[usize], rng: &mut Prng) -> Self {
        assert!(dims.len() >= 2, "head needs at least [input, output] dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self {
            layers,
            kernel: Kernel::Scalar,
        }
    }

    /// The kernel path this head's forward passes run through.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Selects the kernel path (see [`Kernel`] for the determinism
    /// contract). Does not affect parameters or gradients' layout, only
    /// the reduction order of forward matmuls.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// Input (latent) dimension.
    pub fn in_features(&self) -> usize {
        self.layers[0].in_features()
    }

    /// Output (class) dimension.
    pub fn num_classes(&self) -> usize {
        self.layers
            .last()
            .expect("at least one layer")
            .out_features()
    }

    /// Total trainable parameter count.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Linear::parameter_count).sum()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Inference-only forward pass returning logits.
    pub fn logits(&self, x: &Matrix) -> Matrix {
        self.forward(x).pre.pop_last()
    }

    /// Forward pass that caches activations for [`Self::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_features()`.
    pub fn forward(&self, x: &Matrix) -> Forward {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(cur.clone());
            let y = layer.forward_with(&cur, self.kernel);
            pre.push(y.clone());
            if i + 1 < self.layers.len() {
                // ReLU between layers.
                let mut act = y;
                for v in act.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                cur = act;
            }
        }
        Forward { inputs, pre }
    }

    /// Backward pass from a logit gradient, producing per-layer gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dlogits` does not match the forward batch/logit shape.
    pub fn backward(&self, fwd: &Forward, dlogits: &Matrix) -> Gradients {
        assert_eq!(
            fwd.inputs.len(),
            self.layers.len(),
            "forward/head layer mismatch"
        );
        let mut per_layer = vec![None; self.layers.len()];
        let mut upstream = dlogits.clone();
        for i in (0..self.layers.len()).rev() {
            let (dx, dw, db) = self.layers[i].backward(&fwd.inputs[i], &upstream);
            per_layer[i] = Some((dw, db));
            if i > 0 {
                // Gate through the ReLU that fed this layer: derivative is
                // 1 where the pre-activation of layer i-1 was positive.
                let mut gated = dx;
                for (g, &p) in gated
                    .as_mut_slice()
                    .iter_mut()
                    .zip(fwd.pre[i - 1].as_slice())
                {
                    if p <= 0.0 {
                        *g = 0.0;
                    }
                }
                upstream = gated;
            }
        }
        Gradients {
            per_layer: per_layer
                .into_iter()
                .map(|g| g.expect("filled above"))
                .collect(),
        }
    }

    /// Applies gradients through the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the gradient structure does not match the head.
    pub fn apply(&mut self, grads: &Gradients, sgd: &mut Sgd) {
        assert_eq!(
            grads.per_layer.len(),
            self.layers.len(),
            "gradient/layer mismatch"
        );
        for (i, (layer, (dw, db))) in self.layers.iter_mut().zip(&grads.per_layer).enumerate() {
            sgd.step(i, layer, dw, db);
        }
    }

    /// Flattened parameter vector (layer order, weights then bias per layer).
    pub fn parameters(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.parameter_count());
        for layer in &self.layers {
            layer.write_params(&mut out);
        }
        out
    }

    /// Restores parameters from a flat vector produced by
    /// [`Self::parameters`].
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != self.parameter_count()`.
    pub fn set_parameters(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.parameter_count(),
            "parameter vector length mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.read_params(&flat[offset..]);
        }
    }

    /// Convenience: per-sample gradient (flat) of the cross-entropy loss,
    /// without updating the model. Used by GSS.
    pub fn sample_gradient(&self, latent: &[f32], label: usize) -> Vec<f32> {
        let x = Matrix::from_vec(1, latent.len(), latent.to_vec());
        let fwd = self.forward(&x);
        let (_, dlogits) = crate::loss::softmax_cross_entropy(fwd.logits(), &[label]);
        self.backward(&fwd, &dlogits).to_flat()
    }

    /// Forward MAC count for a batch of `n` rows.
    pub fn forward_macs(&self, n: usize) -> u64 {
        self.layers.iter().map(|l| l.forward_macs(n)).sum()
    }

    /// Backward MAC count for a batch of `n` rows.
    pub fn backward_macs(&self, n: usize) -> u64 {
        self.layers.iter().map(|l| l.backward_macs(n)).sum()
    }
}

/// Internal helper: move the last element out of a Vec.
trait PopLast<T> {
    fn pop_last(self) -> T;
}

impl<T> PopLast<T> for Vec<T> {
    fn pop_last(mut self) -> T {
        self.pop().expect("non-empty vector")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;

    #[test]
    fn logits_shape() {
        let mut rng = Prng::new(0);
        let head = MlpHead::new(&[6, 12, 5], &mut rng);
        let x = Matrix::randn(3, 6, &mut rng);
        let y = head.logits(&x);
        assert_eq!((y.rows(), y.cols()), (3, 5));
        assert_eq!(head.num_classes(), 5);
        assert_eq!(head.in_features(), 6);
        assert_eq!(head.num_layers(), 2);
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        let mut rng = Prng::new(1);
        let mut head = MlpHead::new(&[8, 4], &mut rng);
        let mut sgd = Sgd::new(0.5);
        let x = Matrix::randn(16, 8, &mut rng);
        let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();

        let initial = {
            let fwd = head.forward(&x);
            loss::softmax_cross_entropy(fwd.logits(), &labels).0
        };
        for _ in 0..50 {
            let fwd = head.forward(&x);
            let (_, dl) = loss::softmax_cross_entropy(fwd.logits(), &labels);
            let grads = head.backward(&fwd, &dl);
            head.apply(&grads, &mut sgd);
        }
        let fin = {
            let fwd = head.forward(&x);
            loss::softmax_cross_entropy(fwd.logits(), &labels).0
        };
        assert!(fin < initial * 0.5, "loss {initial} -> {fin}");
    }

    #[test]
    fn deep_head_training_reduces_loss() {
        let mut rng = Prng::new(2);
        let mut head = MlpHead::new(&[8, 16, 16, 4], &mut rng);
        let mut sgd = Sgd::new(0.2);
        let x = Matrix::randn(12, 8, &mut rng);
        let labels: Vec<usize> = (0..12).map(|i| i % 4).collect();
        let initial = loss::softmax_cross_entropy(head.forward(&x).logits(), &labels).0;
        for _ in 0..200 {
            let fwd = head.forward(&x);
            let (_, dl) = loss::softmax_cross_entropy(fwd.logits(), &labels);
            let grads = head.backward(&fwd, &dl);
            head.apply(&grads, &mut sgd);
        }
        let fin = loss::softmax_cross_entropy(head.forward(&x).logits(), &labels).0;
        assert!(fin < initial * 0.5, "loss {initial} -> {fin}");
    }

    #[test]
    fn backward_matches_finite_difference_through_relu() {
        let mut rng = Prng::new(3);
        let head = MlpHead::new(&[4, 6, 3], &mut rng);
        let x = Matrix::randn(2, 4, &mut rng);
        let labels = [1usize, 2];

        let fwd = head.forward(&x);
        let (_, dl) = loss::softmax_cross_entropy(fwd.logits(), &labels);
        let analytic = head.backward(&fwd, &dl).to_flat();

        let loss_at = |params: &[f32]| -> f32 {
            let mut h = head.clone();
            h.set_parameters(params);
            loss::softmax_cross_entropy(h.forward(&x).logits(), &labels).0
        };
        let base = head.parameters();
        let eps = 1e-3;
        // Spot-check a spread of parameter coordinates.
        for idx in (0..base.len()).step_by(base.len() / 10 + 1) {
            let mut plus = base.clone();
            plus[idx] += eps;
            let mut minus = base.clone();
            minus[idx] -= eps;
            let numeric = (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 3e-2,
                "param {idx}: numeric {numeric} analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn parameters_roundtrip() {
        let mut rng = Prng::new(4);
        let head = MlpHead::new(&[5, 7, 3], &mut rng);
        let params = head.parameters();
        assert_eq!(params.len(), head.parameter_count());
        let mut other = MlpHead::new(&[5, 7, 3], &mut rng);
        other.set_parameters(&params);
        assert_eq!(other, head);
    }

    #[test]
    fn sample_gradient_has_parameter_layout() {
        let mut rng = Prng::new(5);
        let head = MlpHead::new(&[4, 3], &mut rng);
        let g = head.sample_gradient(&[0.1, -0.2, 0.3, 0.4], 2);
        assert_eq!(g.len(), head.parameter_count());
        assert!(g.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gradients_scale_and_axpy() {
        let mut rng = Prng::new(6);
        let head = MlpHead::new(&[3, 2], &mut rng);
        let x = Matrix::randn(2, 3, &mut rng);
        let fwd = head.forward(&x);
        let (_, dl) = loss::softmax_cross_entropy(fwd.logits(), &[0, 1]);
        let g1 = head.backward(&fwd, &dl);
        let mut g2 = g1.clone();
        g2.scale(2.0);
        let mut g3 = g1.clone();
        g3.axpy(1.0, &g1);
        for (a, b) in g2.to_flat().iter().zip(g3.to_flat()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn mac_counts_sum_over_layers() {
        let mut rng = Prng::new(7);
        let head = MlpHead::new(&[10, 20, 5], &mut rng);
        assert_eq!(head.forward_macs(2), 2 * (10 * 20 + 20 * 5) as u64);
        assert_eq!(head.backward_macs(2), 2 * head.forward_macs(2));
    }
}
