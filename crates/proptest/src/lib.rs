//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no network access to a
//! crates.io registry, so the real proptest cannot be fetched. This crate
//! implements the small API subset the workspace's tests actually use —
//! `proptest!`, the `prop_assert*` macros, `prop_assume!`, range
//! strategies, and `prop::collection::vec` — with deterministic case
//! generation. It intentionally omits shrinking: a failing case panics with
//! the generated inputs printed, which is enough to reproduce (generation
//! is seeded from the test's module path and name, so reruns are
//! bit-identical).

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Default number of cases each `proptest!` test runs (see [`cases`]).
pub const CASES: u32 = 64;

/// Number of cases each `proptest!` test runs: the value of the
/// `CHAM_PROPTEST_CASES` environment variable, or [`CASES`] when it is
/// unset or unparsable. Zero is clamped to one so every property is
/// exercised at least once. Raise it for a deeper local/nightly sweep
/// (`CHAM_PROPTEST_CASES=1000 cargo test`), lower it to smoke-test;
/// generation stays deterministic either way — a larger count runs a
/// superset of the smaller count's cases.
pub fn cases() -> u32 {
    std::env::var("CHAM_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .map_or(CASES, |n: u32| n.max(1))
}

/// Deterministic per-test random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seeds a generator from a test's fully-qualified name, so every test
    /// has its own stable stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A value generator. The stand-in's `Strategy` produces values directly
/// (no shrink tree).
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                self.start + rng.below(span as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                self.start() + rng.below(span as u64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range generator for primitives.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// The `any::<T>()` entry point of the real proptest.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::collection::vec;
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Size specification accepted by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)` — vectors whose length is
    /// drawn from `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        Strategy,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running [`cases()`](cases) deterministic cases
/// (default [`CASES`], overridable via `CHAM_PROPTEST_CASES`); a failing
/// `prop_assert*` aborts the case with the generated inputs printed.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let case_inputs = {
                        let mut s = String::new();
                        $(s.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), $arg
                        ));)+
                        s
                    };
                    let outcome: ::std::result::Result<(), String> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(message) = outcome {
                        panic!(
                            "proptest case {case} of {} failed: {message}\nwith inputs:\n{case_inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` for proptest bodies: fails the current case (with formatting)
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!($($fmt)+));
        }
    }};
}

/// `assert_ne!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn case_count_defaults_and_never_hits_zero() {
        assert!(crate::cases() >= 1);
        if std::env::var("CHAM_PROPTEST_CASES").is_err() {
            assert_eq!(crate::cases(), crate::CASES);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = crate::Strategy::generate(&(0u8..=255), &mut rng);
            let _ = i;
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::new(8);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&prop::collection::vec(0u64..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #[test]
        fn macro_roundtrip(a in 0usize..100, b in 0usize..100) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(a + b < 200, "sum {} too large", a + b);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
