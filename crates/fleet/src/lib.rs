//! `chameleon-fleet`: a sharded multi-session engine for concurrent
//! per-user continual learning.
//!
//! The paper evaluates one Chameleon learner against one user's stream.
//! Deployed on an edge gateway, the same learner runs once *per user* —
//! many small, independent `(Strategy, dual-memory state, stream cursor)`
//! triples that must share constrained compute and memory. This crate
//! provides that hosting layer:
//!
//! * [`FleetEngine`] — multiplexes sessions across N shard worker threads
//!   (`std::thread` + bounded `std::sync::mpsc` queues, no external deps),
//! * [`UserSession`] — one user's resident session, bit-identical to a
//!   solo `Trainer` run over the same spec,
//! * [`SessionCheckpoint`] — the eviction format: learner blob +
//!   replay-buffer integrity metadata + exact stream position,
//! * [`ShardMetrics`]/[`FleetMetrics`] — per-shard and fleet-wide
//!   counters, including a merged [`chameleon_core::StepTrace`] that
//!   `chameleon-hw` can price.
//!
//! # Determinism contract
//!
//! Session→shard assignment is a seeded hash of the session id
//! ([`FleetEngine::shard_of`]) — independent of arrival order and shard
//! load. Sessions never share mutable state, and fault plans are mixed
//! per session ([`session_fault_plan`]), so every session's outcome is a
//! pure function of `(scenario, spec, fault plan, command sequence)`:
//! the same fleet run with 1 shard, 4 shards, or as solo sessions yields
//! bit-identical evaluation reports and checkpoints, as long as the
//! per-session command sequence is the same and no budget eviction
//! occurs. Evictions preserve all *observable* state (stores, integrity
//! quarantine, counters, stream position) but restart transient training
//! state (sampling RNG, momentum, learning window) exactly as the PR-1
//! learner checkpoint format documents.
//!
//! # Example
//!
//! A compiling, runnable end-to-end fleet: every submit error propagates
//! through `?` (backpressure is absorbed by the `_blocking` variants, so
//! the remaining failures — duplicate ids, dead shards — are real bugs
//! worth surfacing, not `unwrap()` fodder).
//!
//! ```
//! use std::sync::Arc;
//! use chameleon_core::ChameleonConfig;
//! use chameleon_fleet::{FleetConfig, FleetEngine, FleetError, SessionCommand, SessionSpec};
//! use chameleon_stream::{DatasetSpec, DomainIlScenario, StreamConfig};
//!
//! fn run() -> Result<(), FleetError> {
//!     let scenario = Arc::new(DomainIlScenario::generate(&DatasetSpec::core50_tiny(), 1));
//!     let mut fleet = FleetEngine::new(scenario, FleetConfig::default());
//!     for user in 0..4u64 {
//!         let spec = SessionSpec {
//!             learner: ChameleonConfig::default(),
//!             stream: StreamConfig::default(),
//!             learner_seed: user,
//!             stream_seed: user,
//!         };
//!         fleet.create_blocking(user, spec)?;
//!         fleet.command_blocking(user, SessionCommand::Step { batches: 4 })?;
//!     }
//!     let events = fleet.drain_pending();
//!     assert_eq!(events.len(), 8); // one ack per create + step
//!     assert_eq!(fleet.metrics().batches(), 16);
//!     Ok(())
//! }
//! run().expect("fleet example");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod engine;
mod metrics;
mod session;
mod shard;
mod sim;

pub use checkpoint::{SessionCheckpoint, FLEET_MAGIC, FLEET_MAGIC_V2};
pub use engine::{
    Backpressure, FleetConfig, FleetEngine, FleetError, RecoveryReport, MIGRATION_CORRELATION,
};
pub use metrics::{FleetMetrics, ShardMetrics};
pub use session::{session_fault_plan, SessionId, SessionSpec, UserSession};
pub use shard::{SessionCommand, SessionEvent, SessionEventKind};
