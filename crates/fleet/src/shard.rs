//! A shard worker: owns a disjoint subset of the fleet's sessions and
//! processes requests from its bounded queue one at a time.
//!
//! Sessions a shard hosts are either **resident** (live [`UserSession`])
//! or **cold** (a [`SessionCheckpoint`]). Whenever the resident footprint
//! exceeds the shard's session-memory budget, the least-recently-used
//! resident session is evicted to checkpoint form; touching a cold session
//! restores it first. Budget-driven evictions are implicit — they show up
//! in [`ShardMetrics`] but emit no events; only an explicit
//! [`SessionCommand::Evict`] acknowledges with an event.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use chameleon_core::EvalReport;
use chameleon_faults::FaultPlan;
use chameleon_obs::{Observer, Stage};
use chameleon_runtime::Clock;
use chameleon_stream::DomainIlScenario;

use crate::checkpoint::SessionCheckpoint;
use crate::metrics::ShardMetrics;
use crate::session::{SessionId, SessionSpec, UserSession};

/// An operation on one already-created session.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionCommand {
    /// Deliver up to this many stream batches to the session's learner.
    Step {
        /// Maximum batches to deliver (fewer when the stream ends).
        batches: usize,
    },
    /// Evaluate the learner on the scenario's all-domain test set.
    Evaluate,
    /// Serialize the session to a portable checkpoint blob (the session
    /// stays in whatever residency state it was).
    Checkpoint,
    /// Force the session out of residency into checkpoint form.
    Evict,
    /// Serialize the session to its checkpoint blob and *forget* it —
    /// the handoff export: after this the session no longer lives on
    /// this engine, and exactly one node owns it at a time.
    Export,
}

/// What a shard did in response to one request. Every accepted `Create` or
/// `Command` produces exactly one event.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionEventKind {
    /// The session was created and is resident.
    Created,
    /// A `Step` command ran.
    Stepped {
        /// Batches actually delivered.
        delivered: usize,
        /// Whether the session's stream is now exhausted and finalized.
        done: bool,
    },
    /// An `Evaluate` command ran.
    Evaluated(Box<EvalReport>),
    /// A `Checkpoint` command ran; the serialized `CHAMFLT1` blob.
    Checkpointed(Vec<u8>),
    /// An explicit `Evict` command completed (idempotent when the session
    /// was already cold).
    Evicted,
    /// An `Export` command ran: the serialized `CHAMFLT1` blob, with the
    /// session removed from this engine.
    Exported(Vec<u8>),
    /// A handed-off session was imported from its checkpoint blob.
    Imported,
    /// The request could not be honored; human-readable reason.
    Failed(String),
}

/// A shard's response to one request, tagged with its origin.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionEvent {
    /// Session the request addressed.
    pub session: SessionId,
    /// Shard that processed it.
    pub shard: usize,
    /// Correlation id the request was submitted with (0 for the untagged
    /// submit paths). Network frontends use this to match an event back to
    /// the wire request that caused it without relying on per-session
    /// ordering.
    pub correlation: u64,
    /// What happened.
    pub kind: SessionEventKind,
}

/// A request on a shard's bounded queue.
pub(crate) enum Request {
    Create {
        id: SessionId,
        spec: Box<SessionSpec>,
        correlation: u64,
    },
    Command {
        id: SessionId,
        command: SessionCommand,
        correlation: u64,
    },
    Import {
        id: SessionId,
        blob: Vec<u8>,
        correlation: u64,
    },
    Metrics {
        reply: Sender<ShardMetrics>,
    },
    Shutdown,
}

struct Resident {
    session: UserSession,
    last_touch: u64,
    bytes: u64,
}

/// A non-resident session: either its checkpoint held in RAM (no durable
/// store attached, or the store write failed) or a marker for a blob whose
/// latest sealed record lives in the session store — the genuine spill
/// path, where eviction actually frees the checkpoint's memory.
enum Cold {
    Ram(Box<SessionCheckpoint>),
    Disk {
        /// Sequence number the store acknowledged for the latest record.
        #[allow(dead_code)] // diagnostic; the store's index is authoritative
        seq: u64,
        /// Counters kept aside so metrics snapshots and trace merges do not
        /// need a disk read.
        counters: chameleon_core::LearnerCounters,
    },
}

/// A session pre-seeded into a shard's cold map by engine recovery.
pub(crate) type RecoveredSession = (SessionId, u64, chameleon_core::LearnerCounters);

/// The state owned by one shard worker — on its own thread in
/// production, or driven request-by-request by the simulation executor.
pub(crate) struct ShardWorker {
    shard: usize,
    scenario: Arc<DomainIlScenario>,
    faults: Option<FaultPlan>,
    budget_bytes: u64,
    resident: HashMap<SessionId, Resident>,
    cold: HashMap<SessionId, Cold>,
    resident_bytes: u64,
    lru_clock: u64,
    time: Arc<dyn Clock>,
    events: Sender<SessionEvent>,
    metrics: ShardMetrics,
    /// Fleet-wide span recorder + event log. Spans are fed the *same*
    /// elapsed nanos the `metrics.*_nanos` counters accumulate (no extra
    /// clock reads on the hot path), so per-stage span totals reconcile
    /// exactly with [`ShardMetrics`] and simulation digests stay put.
    obs: Arc<Observer>,
    /// Durable session store; when attached, evictions write through it
    /// and restores read through it.
    store: Option<chameleon_store::SharedStore>,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: usize,
        scenario: Arc<DomainIlScenario>,
        faults: Option<FaultPlan>,
        budget_bytes: u64,
        time: Arc<dyn Clock>,
        events: Sender<SessionEvent>,
        obs: Arc<Observer>,
    ) -> Self {
        Self {
            shard,
            scenario,
            faults,
            budget_bytes,
            resident: HashMap::new(),
            cold: HashMap::new(),
            resident_bytes: 0,
            lru_clock: 0,
            time,
            events,
            metrics: ShardMetrics {
                shard,
                budget_bytes,
                ..ShardMetrics::default()
            },
            obs,
            store: None,
        }
    }

    /// Attaches the durable store and pre-seeds recovered sessions as
    /// disk-cold. Called by the engine between worker construction and
    /// first request; recovered sessions restore lazily on first touch.
    pub(crate) fn attach_store(
        &mut self,
        store: chameleon_store::SharedStore,
        recovered: Vec<RecoveredSession>,
    ) {
        for (id, seq, counters) in recovered {
            self.cold.insert(id, Cold::Disk { seq, counters });
        }
        self.store = Some(store);
    }

    /// Reads a cold session's blob back from the attached store.
    fn fetch_cold_blob(&mut self, id: SessionId) -> Result<Vec<u8>, String> {
        let store = self
            .store
            .as_ref()
            .expect("disk-cold session without a store");
        match store.get(id) {
            Ok(Some(blob)) => Ok(blob),
            Ok(None) => Err(format!("store lost session {id}: no sealed record")),
            Err(e) => Err(format!("store read failed: {e}")),
        }
    }

    /// Blocking request loop; returns when `Shutdown` arrives or every
    /// engine handle hung up.
    pub(crate) fn run(mut self, requests: Receiver<Request>) {
        while let Ok(request) = requests.recv() {
            if !self.process(request) {
                break;
            }
        }
    }

    /// Processes one request; returns `false` on `Shutdown`. This is the
    /// single entry point both execution modes share: the thread loop
    /// above and the simulation executor's seeded step function.
    pub(crate) fn process(&mut self, request: Request) -> bool {
        match request {
            Request::Create {
                id,
                spec,
                correlation,
            } => self.handle_create(id, *spec, correlation),
            Request::Command {
                id,
                command,
                correlation,
            } => self.handle_command(id, command, correlation),
            Request::Import {
                id,
                blob,
                correlation,
            } => self.handle_import(id, &blob, correlation),
            Request::Metrics { reply } => {
                let _ = reply.send(self.snapshot());
            }
            Request::Shutdown => return false,
        }
        true
    }

    fn emit(&self, session: SessionId, correlation: u64, kind: SessionEventKind) {
        // The engine may have dropped the receiver during teardown; events
        // are best-effort at that point.
        let _ = self.events.send(SessionEvent {
            session,
            shard: self.shard,
            correlation,
            kind,
        });
    }

    fn handle_create(&mut self, id: SessionId, spec: SessionSpec, correlation: u64) {
        if self.resident.contains_key(&id) || self.cold.contains_key(&id) {
            self.emit(
                id,
                correlation,
                SessionEventKind::Failed("session already exists".into()),
            );
            return;
        }
        if let Err(e) = spec.learner.validate() {
            self.emit(
                id,
                correlation,
                SessionEventKind::Failed(format!("invalid learner config: {e}")),
            );
            return;
        }
        if let Err(e) = spec.stream.validate() {
            self.emit(
                id,
                correlation,
                SessionEventKind::Failed(format!("invalid stream config: {e}")),
            );
            return;
        }
        let session = UserSession::new(id, spec, Arc::clone(&self.scenario), self.faults.as_ref());
        self.admit(id, session);
        self.metrics.sessions_created += 1;
        self.enforce_budget(id);
        self.emit(id, correlation, SessionEventKind::Created);
    }

    fn handle_command(&mut self, id: SessionId, command: SessionCommand, correlation: u64) {
        match command {
            SessionCommand::Step { batches } => match self.touch(id) {
                Err(reason) => self.emit(id, correlation, SessionEventKind::Failed(reason)),
                Ok(()) => {
                    let start = self.time.now_nanos();
                    let resident = self.resident.get_mut(&id).expect("touched");
                    let delivered = resident.session.step_batches(batches);
                    let done = resident.session.is_done();
                    let elapsed = self.time.now_nanos().saturating_sub(start);
                    self.metrics.step_nanos += elapsed;
                    self.obs.record(Stage::Step, elapsed);
                    self.metrics.step_commands += 1;
                    self.metrics.batches += delivered as u64;
                    self.refresh_footprint(id);
                    self.emit(
                        id,
                        correlation,
                        SessionEventKind::Stepped { delivered, done },
                    );
                }
            },
            SessionCommand::Evaluate => match self.touch(id) {
                Err(reason) => self.emit(id, correlation, SessionEventKind::Failed(reason)),
                Ok(()) => {
                    let start = self.time.now_nanos();
                    let report = self.resident[&id].session.evaluate();
                    let elapsed = self.time.now_nanos().saturating_sub(start);
                    self.metrics.eval_nanos += elapsed;
                    self.obs.record(Stage::Eval, elapsed);
                    self.emit(
                        id,
                        correlation,
                        SessionEventKind::Evaluated(Box::new(report)),
                    );
                }
            },
            SessionCommand::Checkpoint => {
                // Served from either residency state without changing it —
                // a cold session's blob is re-serialized directly.
                let blob = if let Some(resident) = self.resident.get(&id) {
                    let start = self.time.now_nanos();
                    let blob = SessionCheckpoint::capture(&resident.session).to_bytes();
                    let elapsed = self.time.now_nanos().saturating_sub(start);
                    self.metrics.checkpoint_nanos += elapsed;
                    self.obs.record(Stage::Checkpoint, elapsed);
                    Ok(Some(blob))
                } else {
                    match self.cold.get(&id) {
                        Some(Cold::Ram(checkpoint)) => Ok(Some(checkpoint.to_bytes())),
                        // A disk-cold blob is served verbatim: the stored
                        // record *is* the CHAMFLT1 envelope.
                        Some(Cold::Disk { .. }) => self.fetch_cold_blob(id).map(Some),
                        None => Ok(None),
                    }
                };
                match blob {
                    Ok(Some(blob)) => {
                        self.emit(id, correlation, SessionEventKind::Checkpointed(blob));
                    }
                    Ok(None) => self.emit(
                        id,
                        correlation,
                        SessionEventKind::Failed("session unknown to this shard".into()),
                    ),
                    Err(reason) => self.emit(id, correlation, SessionEventKind::Failed(reason)),
                }
            }
            SessionCommand::Evict => {
                if self.resident.contains_key(&id) {
                    self.evict(id);
                    self.emit(id, correlation, SessionEventKind::Evicted);
                } else if self.cold.contains_key(&id) {
                    self.emit(id, correlation, SessionEventKind::Evicted);
                } else {
                    self.emit(
                        id,
                        correlation,
                        SessionEventKind::Failed("session unknown to this shard".into()),
                    );
                }
            }
            SessionCommand::Export => {
                // Capture from whichever residency state the session is
                // in, then forget it entirely: after a successful export
                // the blob is the only copy, so exactly one node can own
                // the session. A stale record may remain in the durable
                // store; re-import (or router ownership) supersedes it.
                let blob = if let Some(resident) = self.resident.get(&id) {
                    let start = self.time.now_nanos();
                    let blob = SessionCheckpoint::capture(&resident.session).to_bytes();
                    let elapsed = self.time.now_nanos().saturating_sub(start);
                    self.metrics.checkpoint_nanos += elapsed;
                    self.obs.record(Stage::Checkpoint, elapsed);
                    Ok(Some(blob))
                } else {
                    match self.cold.get(&id) {
                        Some(Cold::Ram(checkpoint)) => Ok(Some(checkpoint.to_bytes())),
                        Some(Cold::Disk { .. }) => self.fetch_cold_blob(id).map(Some),
                        None => Ok(None),
                    }
                };
                match blob {
                    Ok(Some(blob)) => {
                        if let Some(resident) = self.resident.remove(&id) {
                            self.resident_bytes =
                                self.resident_bytes.saturating_sub(resident.bytes);
                        }
                        self.cold.remove(&id);
                        self.obs
                            .event(format!("shard {}: session {id} exported", self.shard));
                        self.emit(id, correlation, SessionEventKind::Exported(blob));
                    }
                    Ok(None) => self.emit(
                        id,
                        correlation,
                        SessionEventKind::Failed("session unknown to this shard".into()),
                    ),
                    Err(reason) => self.emit(id, correlation, SessionEventKind::Failed(reason)),
                }
            }
        }
    }

    /// Imports a handed-off session from its `CHAMFLT1` blob: the inverse
    /// of `Export`. The checkpoint is parsed and admitted cold (RAM), so
    /// the learner rebuild cost lands on first touch, exactly like an
    /// eviction restore — bit-identical learning outcomes included.
    fn handle_import(&mut self, id: SessionId, blob: &[u8], correlation: u64) {
        if self.resident.contains_key(&id) || self.cold.contains_key(&id) {
            self.emit(
                id,
                correlation,
                SessionEventKind::Failed("session already exists".into()),
            );
            return;
        }
        let checkpoint = match SessionCheckpoint::from_bytes(blob) {
            Ok(checkpoint) => checkpoint,
            Err(e) => {
                self.emit(
                    id,
                    correlation,
                    SessionEventKind::Failed(format!("handoff blob rejected: {e:?}")),
                );
                return;
            }
        };
        if checkpoint.session != id {
            self.emit(
                id,
                correlation,
                SessionEventKind::Failed(format!(
                    "handoff blob names session {}, not {id}",
                    checkpoint.session
                )),
            );
            return;
        }
        self.cold.insert(id, Cold::Ram(Box::new(checkpoint)));
        self.metrics.sessions_created += 1;
        self.obs
            .event(format!("shard {}: session {id} imported", self.shard));
        self.emit(id, correlation, SessionEventKind::Imported);
    }

    /// Makes `id` resident (restoring from cold if needed), bumps its LRU
    /// stamp, and re-enforces the budget with `id` protected.
    fn touch(&mut self, id: SessionId) -> Result<(), String> {
        if let Some(resident) = self.resident.get_mut(&id) {
            self.lru_clock += 1;
            resident.last_touch = self.lru_clock;
            return Ok(());
        }
        let Some(cold) = self.cold.remove(&id) else {
            return Err("session unknown to this shard".into());
        };
        // Resolve the checkpoint; a disk-cold session reads through the
        // store first. On any failure the cold entry is put back so the
        // session is not silently lost.
        let checkpoint = match cold {
            Cold::Ram(checkpoint) => checkpoint,
            Cold::Disk { seq, counters } => {
                let loaded = self.fetch_cold_blob(id).and_then(|blob| {
                    SessionCheckpoint::from_bytes(&blob)
                        .map_err(|e| format!("stored checkpoint rejected: {e:?}"))
                });
                match loaded {
                    Ok(checkpoint) => Box::new(checkpoint),
                    Err(reason) => {
                        self.cold.insert(id, Cold::Disk { seq, counters });
                        self.obs.event(format!(
                            "shard {}: session {id} restore failed: {reason}",
                            self.shard
                        ));
                        return Err(format!("restore failed: {reason}"));
                    }
                }
            }
        };
        let start = self.time.now_nanos();
        let restored = checkpoint.restore(Arc::clone(&self.scenario), self.faults.as_ref());
        let elapsed = self.time.now_nanos().saturating_sub(start);
        self.metrics.restore_nanos += elapsed;
        self.obs.record(Stage::Restore, elapsed);
        match restored {
            Ok(session) => {
                self.metrics.restores += 1;
                self.obs
                    .event(format!("shard {}: session {id} restored", self.shard));
                self.admit(id, session);
                self.enforce_budget(id);
                Ok(())
            }
            Err(e) => {
                // Put the blob back so the session is not silently lost.
                self.cold.insert(id, Cold::Ram(checkpoint));
                self.obs.event(format!(
                    "shard {}: session {id} restore failed: {e:?}",
                    self.shard
                ));
                Err(format!("restore failed: {e:?}"))
            }
        }
    }

    /// Admits a session as resident, pricing its footprint from the
    /// session *as admitted* — never from a figure remembered across an
    /// evict/restore cycle, which would let the shard-wide accounting
    /// drift from the real footprint.
    fn admit(&mut self, id: SessionId, session: UserSession) {
        self.lru_clock += 1;
        let bytes = session.resident_bytes();
        self.resident_bytes += bytes;
        self.resident.insert(
            id,
            Resident {
                session,
                last_touch: self.lru_clock,
                bytes,
            },
        );
    }

    /// Re-prices a resident session after it ran, folding any footprint
    /// change into the shard-wide accounting. Keeps `Resident::bytes`
    /// equal to what `session.resident_bytes()` reports *now*, so the
    /// figure subtracted at eviction/export time is always the figure
    /// that was added — the invariant
    /// `resident_bytes == Σ resident sessions' resident_bytes()` holds
    /// through arbitrary create/step/evict/restore/export/import churn.
    fn refresh_footprint(&mut self, id: SessionId) {
        if let Some(resident) = self.resident.get_mut(&id) {
            let bytes = resident.session.resident_bytes();
            self.resident_bytes = self
                .resident_bytes
                .saturating_sub(resident.bytes)
                .saturating_add(bytes);
            resident.bytes = bytes;
        }
    }

    /// Evicts least-recently-used residents (never `protect`, never the
    /// last one) until the footprint fits the budget.
    fn enforce_budget(&mut self, protect: SessionId) {
        while self.resident_bytes > self.budget_bytes && self.resident.len() > 1 {
            let victim = self
                .resident
                .iter()
                .filter(|(id, _)| **id != protect)
                .min_by_key(|(_, r)| r.last_touch)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => self.evict(id),
                None => break,
            }
        }
    }

    fn evict(&mut self, id: SessionId) {
        let resident = self.resident.remove(&id).expect("evict target resident");
        self.resident_bytes = self.resident_bytes.saturating_sub(resident.bytes);
        let start = self.time.now_nanos();
        let checkpoint = SessionCheckpoint::capture(&resident.session);
        let elapsed = self.time.now_nanos().saturating_sub(start);
        self.metrics.checkpoint_nanos += elapsed;
        self.obs.record(Stage::Checkpoint, elapsed);
        self.metrics.evictions += 1;
        self.obs
            .event(format!("shard {}: session {id} evicted", self.shard));
        let cold = match &self.store {
            Some(store) => {
                // Write-ahead discipline: append seals + fsyncs before it
                // returns; only an acknowledged write lets the RAM copy go.
                match store.append(id, &checkpoint.to_bytes()) {
                    Ok(seq) => Cold::Disk {
                        seq,
                        counters: checkpoint.counters,
                    },
                    Err(e) => {
                        self.obs.event(format!(
                            "shard {}: session {id} spill failed, kept in RAM: {e}",
                            self.shard
                        ));
                        Cold::Ram(Box::new(checkpoint))
                    }
                }
            }
            None => Cold::Ram(Box::new(checkpoint)),
        };
        self.cold.insert(id, cold);
    }

    pub(crate) fn snapshot(&self) -> ShardMetrics {
        let mut m = self.metrics.clone();
        m.sessions_resident = self.resident.len();
        m.sessions_cold = self.cold.len();
        m.resident_bytes = self.resident_bytes;
        m.codec_bytes_saved = self
            .resident
            .values()
            .map(|r| r.session.codec_bytes_saved())
            .sum();
        m.trace = chameleon_core::StepTrace::new();
        for resident in self.resident.values() {
            m.trace.merge(&resident.session.trace());
        }
        for cold in self.cold.values() {
            match cold {
                Cold::Ram(checkpoint) => m.trace.merge(&checkpoint.counters.trace),
                Cold::Disk { counters, .. } => m.trace.merge(&counters.trace),
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_core::ChameleonConfig;
    use chameleon_stream::{DatasetSpec, StreamConfig};
    use std::sync::mpsc;

    fn tiny_worker(budget_bytes: u64) -> (ShardWorker, Receiver<SessionEvent>) {
        let scenario = Arc::new(DomainIlScenario::generate(
            &DatasetSpec::core50_tiny(),
            0xDA7A,
        ));
        let (tx, rx) = mpsc::channel();
        let clock = chameleon_runtime::WallClock::shared();
        let obs = Arc::new(Observer::new(Arc::clone(&clock)));
        (
            ShardWorker::new(0, scenario, None, budget_bytes, clock, tx, obs),
            rx,
        )
    }

    fn tiny_spec(stream_seed: u64) -> SessionSpec {
        SessionSpec {
            learner: ChameleonConfig {
                long_term_capacity: 30,
                ..ChameleonConfig::default()
            },
            stream: StreamConfig::default(),
            learner_seed: 5,
            stream_seed,
        }
    }

    #[test]
    fn lru_eviction_kicks_in_over_budget() {
        // Budget fits roughly one session, so the second create evicts the
        // first, and stepping the first swaps residency back.
        let (mut worker, rx) = tiny_worker(1);
        worker.handle_create(1, tiny_spec(1), 0);
        worker.handle_create(2, tiny_spec(2), 0);
        assert_eq!(worker.resident.len(), 1);
        assert_eq!(worker.cold.len(), 1);
        assert!(worker.cold.contains_key(&1));
        assert_eq!(worker.metrics.evictions, 1);

        worker.handle_command(1, SessionCommand::Step { batches: 4 }, 0);
        assert!(worker.resident.contains_key(&1));
        assert!(worker.cold.contains_key(&2));
        assert_eq!(worker.metrics.restores, 1);
        assert_eq!(worker.metrics.evictions, 2);

        let kinds: Vec<_> = rx.try_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SessionEventKind::Created,
                SessionEventKind::Created,
                SessionEventKind::Stepped {
                    delivered: 4,
                    done: false
                },
            ],
            "implicit evictions must not emit events"
        );
    }

    #[test]
    fn eviction_roundtrip_preserves_progress() {
        let (mut worker, rx) = tiny_worker(u64::MAX);
        worker.handle_create(7, tiny_spec(7), 0);
        worker.handle_command(7, SessionCommand::Step { batches: 17 }, 0);
        let before = worker.resident[&7].session.trace();
        worker.handle_command(7, SessionCommand::Evict, 0);
        assert!(worker.cold.contains_key(&7));
        worker.handle_command(7, SessionCommand::Step { batches: 0 }, 0);
        let after = worker.resident[&7].session.trace();
        assert_eq!(before, after);
        assert_eq!(worker.resident[&7].session.batches_into_domain(), 5);
        let last = rx.try_iter().last().expect("events");
        assert_eq!(
            last.kind,
            SessionEventKind::Stepped {
                delivered: 0,
                done: false
            }
        );
    }

    #[test]
    fn unknown_and_duplicate_sessions_fail_with_events() {
        let (mut worker, rx) = tiny_worker(u64::MAX);
        worker.handle_command(9, SessionCommand::Evaluate, 0);
        worker.handle_create(3, tiny_spec(3), 0);
        worker.handle_create(3, tiny_spec(3), 0);
        let kinds: Vec<_> = rx.try_iter().map(|e| e.kind).collect();
        assert!(matches!(kinds[0], SessionEventKind::Failed(_)));
        assert_eq!(kinds[1], SessionEventKind::Created);
        assert!(matches!(kinds[2], SessionEventKind::Failed(_)));
    }

    #[test]
    fn checkpoint_command_serves_cold_sessions_without_restoring() {
        let (mut worker, rx) = tiny_worker(u64::MAX);
        worker.handle_create(5, tiny_spec(5), 0);
        worker.handle_command(5, SessionCommand::Step { batches: 6 }, 0);
        worker.handle_command(5, SessionCommand::Evict, 0);
        worker.handle_command(5, SessionCommand::Checkpoint, 0);
        assert_eq!(worker.metrics.restores, 0);
        let blob = match rx.try_iter().last().expect("events").kind {
            SessionEventKind::Checkpointed(blob) => blob,
            other => panic!("expected checkpoint, got {other:?}"),
        };
        let ck = SessionCheckpoint::from_bytes(&blob).expect("valid blob");
        assert_eq!(ck.session, 5);
        assert_eq!(ck.batches_into_domain, 6);
    }

    #[test]
    fn export_forgets_the_session_and_import_restores_it_bit_identically() {
        let (mut worker, rx) = tiny_worker(u64::MAX);
        worker.handle_create(4, tiny_spec(4), 0);
        worker.handle_command(4, SessionCommand::Step { batches: 9 }, 0);
        worker.handle_command(4, SessionCommand::Export, 0);
        assert!(worker.resident.is_empty());
        assert!(worker.cold.is_empty());
        let blob = match rx.try_iter().last().expect("events").kind {
            SessionEventKind::Exported(blob) => blob,
            other => panic!("expected export, got {other:?}"),
        };
        // Stepping the exported session now fails: nobody owns it here.
        worker.handle_command(4, SessionCommand::Step { batches: 1 }, 0);
        assert!(matches!(
            rx.try_iter().last().expect("events").kind,
            SessionEventKind::Failed(_)
        ));
        // Import on the same worker (stands in for the new owner).
        worker.handle_import(4, &blob, 0);
        assert_eq!(
            rx.try_iter().last().expect("events").kind,
            SessionEventKind::Imported
        );
        worker.handle_command(4, SessionCommand::Checkpoint, 0);
        let back = match rx.try_iter().last().expect("events").kind {
            SessionEventKind::Checkpointed(blob) => blob,
            other => panic!("expected checkpoint, got {other:?}"),
        };
        assert_eq!(back, blob, "import must preserve the exact bytes");
    }

    #[test]
    fn import_rejects_duplicates_and_corrupt_or_mismatched_blobs() {
        let (mut worker, rx) = tiny_worker(u64::MAX);
        worker.handle_create(6, tiny_spec(6), 0);
        worker.handle_command(6, SessionCommand::Export, 0);
        let blob = match rx.try_iter().last().expect("events").kind {
            SessionEventKind::Exported(blob) => blob,
            other => panic!("expected export, got {other:?}"),
        };
        // Blob id and target id must agree.
        worker.handle_import(7, &blob, 0);
        assert!(matches!(
            rx.try_iter().last().expect("events").kind,
            SessionEventKind::Failed(_)
        ));
        // Corruption is rejected.
        let mut bad = blob.clone();
        bad[10] ^= 0x40;
        worker.handle_import(6, &bad, 0);
        assert!(matches!(
            rx.try_iter().last().expect("events").kind,
            SessionEventKind::Failed(_)
        ));
        // Clean import succeeds once, then duplicates are refused.
        worker.handle_import(6, &blob, 0);
        assert_eq!(
            rx.try_iter().last().expect("events").kind,
            SessionEventKind::Imported
        );
        worker.handle_import(6, &blob, 0);
        assert!(matches!(
            rx.try_iter().last().expect("events").kind,
            SessionEventKind::Failed(_)
        ));
    }

    #[test]
    fn resident_bytes_accounting_never_drifts_across_churn() {
        // Regression: the shard-wide footprint must always equal the sum
        // of what the resident sessions report *right now* — never a
        // figure remembered from before an evict/restore or export/import
        // cycle. Drive every residency transition and check the invariant
        // after each one.
        fn assert_reconciled(worker: &ShardWorker, at: &str) {
            let expected: u64 = worker
                .resident
                .values()
                .map(|r| r.session.resident_bytes())
                .sum();
            assert_eq!(
                worker.resident_bytes, expected,
                "resident_bytes drifted after {at}"
            );
            assert_eq!(worker.snapshot().resident_bytes, expected);
        }

        let (mut worker, rx) = tiny_worker(u64::MAX);
        for id in 0..4u64 {
            worker.handle_create(id, tiny_spec(id), 0);
            assert_reconciled(&worker, "create");
        }
        for id in 0..4u64 {
            worker.handle_command(id, SessionCommand::Step { batches: 5 }, 0);
            assert_reconciled(&worker, "step");
        }
        worker.handle_command(1, SessionCommand::Evict, 0);
        assert_reconciled(&worker, "evict");
        // Restore-after-evict is the cycle the figure must survive.
        worker.handle_command(1, SessionCommand::Step { batches: 3 }, 0);
        assert_reconciled(&worker, "restore");
        worker.handle_command(2, SessionCommand::Export, 0);
        assert_reconciled(&worker, "export of a resident session");
        let blob = match rx.try_iter().last().expect("events").kind {
            SessionEventKind::Exported(blob) => blob,
            other => panic!("expected export, got {other:?}"),
        };
        worker.handle_import(2, &blob, 0);
        assert_reconciled(&worker, "import (admitted cold)");
        worker.handle_command(2, SessionCommand::Step { batches: 2 }, 0);
        assert_reconciled(&worker, "first touch after import");
        // Export straight out of cold must not disturb the resident sum.
        worker.handle_command(3, SessionCommand::Evict, 0);
        worker.handle_command(3, SessionCommand::Export, 0);
        assert_reconciled(&worker, "export of a cold session");
    }

    #[test]
    fn eviction_under_budget_pressure_reconciles_accounting() {
        // Same invariant under a budget tight enough that every create
        // and restore triggers implicit LRU eviction churn.
        let (mut worker, _rx) = tiny_worker(1);
        for id in 0..3u64 {
            worker.handle_create(id, tiny_spec(id), 0);
        }
        for round in 0..3 {
            for id in 0..3u64 {
                worker.handle_command(id, SessionCommand::Step { batches: 2 }, 0);
                let expected: u64 = worker
                    .resident
                    .values()
                    .map(|r| r.session.resident_bytes())
                    .sum();
                assert_eq!(
                    worker.resident_bytes, expected,
                    "drift at round {round} session {id}"
                );
            }
        }
        assert!(worker.metrics.evictions > 0, "budget pressure must churn");
    }

    #[test]
    fn quantized_sessions_reprice_and_reconcile_accounting() {
        use chameleon_core::Precision;
        // Satellite invariant for the latent codec: int8 sessions must
        // reprice resident_bytes (half the nominal footprint), the shard
        // gauge must reconcile through evict/restore/export/import churn
        // with mixed precisions, and codec_bytes_saved must account the
        // exact delta versus nominal pricing.
        fn spec_at(stream_seed: u64, precision: Precision) -> SessionSpec {
            SessionSpec {
                learner: ChameleonConfig {
                    long_term_capacity: 30,
                    precision,
                    ..ChameleonConfig::default()
                },
                stream: StreamConfig::default(),
                learner_seed: 5,
                stream_seed,
            }
        }
        fn assert_reconciled(worker: &ShardWorker, at: &str) {
            let expected: u64 = worker
                .resident
                .values()
                .map(|r| r.session.resident_bytes())
                .sum();
            assert_eq!(
                worker.resident_bytes, expected,
                "resident_bytes drifted after {at}"
            );
            let saved: u64 = worker
                .resident
                .values()
                .map(|r| r.session.codec_bytes_saved())
                .sum();
            assert_eq!(worker.snapshot().codec_bytes_saved, saved);
        }

        let (mut worker, rx) = tiny_worker(u64::MAX);
        let precisions = [Precision::Int8, Precision::F32, Precision::Int8];
        for (id, &p) in precisions.iter().enumerate() {
            worker.handle_create(id as u64, spec_at(id as u64, p), 0);
            assert_reconciled(&worker, "create");
        }
        // An int8 session must be priced strictly below its f32 twin, and
        // its savings gauge must equal the difference exactly.
        let int8 = &worker.resident[&0].session;
        let f32s = &worker.resident[&1].session;
        assert!(int8.resident_bytes() * 2 <= f32s.resident_bytes() + 1024 * 1024);
        assert!(int8.resident_bytes() < f32s.resident_bytes());
        assert_eq!(
            int8.codec_bytes_saved(),
            f32s.resident_bytes() - int8.resident_bytes()
        );
        assert_eq!(f32s.codec_bytes_saved(), 0);

        for id in 0..3u64 {
            worker.handle_command(id, SessionCommand::Step { batches: 5 }, 0);
            assert_reconciled(&worker, "step");
        }
        worker.handle_command(0, SessionCommand::Evict, 0);
        assert_reconciled(&worker, "evict of an int8 session");
        worker.handle_command(0, SessionCommand::Step { batches: 3 }, 0);
        assert_reconciled(&worker, "restore of an int8 session");
        worker.handle_command(0, SessionCommand::Export, 0);
        let blob = match rx.try_iter().last().expect("events").kind {
            SessionEventKind::Exported(blob) => blob,
            other => panic!("expected export, got {other:?}"),
        };
        assert_eq!(&blob[..8], crate::FLEET_MAGIC_V2);
        worker.handle_import(0, &blob, 0);
        assert_reconciled(&worker, "import of an int8 session");
        worker.handle_command(0, SessionCommand::Step { batches: 2 }, 0);
        assert_reconciled(&worker, "first touch after import");
    }

    #[test]
    fn snapshot_merges_resident_and_cold_traces() {
        let (mut worker, _rx) = tiny_worker(u64::MAX);
        worker.handle_create(1, tiny_spec(1), 0);
        worker.handle_create(2, tiny_spec(2), 0);
        worker.handle_command(1, SessionCommand::Step { batches: 3 }, 0);
        worker.handle_command(2, SessionCommand::Step { batches: 2 }, 0);
        worker.handle_command(2, SessionCommand::Evict, 0);
        let snap = worker.snapshot();
        assert_eq!(snap.sessions_resident, 1);
        assert_eq!(snap.sessions_cold, 1);
        assert_eq!(snap.batches, 5);
        // Default batch size is 10 inputs per batch.
        assert_eq!(snap.trace.inputs, 50);
    }
}
