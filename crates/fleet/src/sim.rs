//! Deterministic single-threaded execution of the shard workers.
//!
//! Production mode runs each [`ShardWorker`] on its own thread behind a
//! bounded `mpsc` queue; the OS scheduler decides which shard makes
//! progress when. [`SimExecutor`] replaces both: the workers live in one
//! `Vec`, each behind an in-memory `VecDeque` with the same bounded
//! depth and the same reject-when-full backpressure, and a seeded
//! [`SimScheduler`] decides — one draw per step — which non-empty queue
//! processes its next request. Per-shard FIFO order is preserved (the
//! fleet's per-session ordering guarantee); *cross*-shard interleaving
//! becomes a pure function of the scheduler seed, so any interleaving
//! bug replays bit-identically from a u64.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::Arc;

use chameleon_obs::Observer;
use chameleon_runtime::{Clock, SimScheduler};
use chameleon_stream::DomainIlScenario;

use crate::engine::{Backpressure, FleetConfig, FleetError};
use crate::metrics::ShardMetrics;
use crate::shard::{RecoveredSession, Request, SessionEvent, ShardWorker};

/// All shard workers of one fleet, executed cooperatively under a
/// seeded scheduler on a shared virtual clock.
pub(crate) struct SimExecutor {
    scheduler: SimScheduler,
    workers: Vec<ShardWorker>,
    queues: Vec<VecDeque<Request>>,
    queue_depth: usize,
}

impl SimExecutor {
    pub(crate) fn new(
        scenario: Arc<DomainIlScenario>,
        config: &FleetConfig,
        scheduler: SimScheduler,
        events: Sender<SessionEvent>,
        observer: Arc<Observer>,
        store: Option<chameleon_store::SharedStore>,
        mut recovered: Vec<Vec<RecoveredSession>>,
    ) -> Self {
        let clock: Arc<dyn Clock> = scheduler.clock();
        let workers = (0..config.num_shards)
            .map(|shard| {
                let mut worker = ShardWorker::new(
                    shard,
                    Arc::clone(&scenario),
                    config.faults,
                    config.budget_bytes,
                    Arc::clone(&clock),
                    events.clone(),
                    Arc::clone(&observer),
                );
                if let Some(store) = &store {
                    let seeds = recovered.get_mut(shard).map(std::mem::take);
                    worker.attach_store(store.clone(), seeds.unwrap_or_default());
                }
                worker
            })
            .collect();
        Self {
            scheduler,
            workers,
            queues: (0..config.num_shards).map(|_| VecDeque::new()).collect(),
            queue_depth: config.queue_depth,
        }
    }

    /// Seed this executor's scheduler was built from (for failure
    /// reports: any run replays from this value).
    pub(crate) fn seed(&self) -> u64 {
        self.scheduler.seed()
    }

    /// Enqueues a request on `shard`'s queue with exactly the bounded
    /// semantics of the threaded path's `try_send`.
    pub(crate) fn try_submit(&mut self, shard: usize, request: Request) -> Result<(), FleetError> {
        let queue = &mut self.queues[shard];
        if queue.len() >= self.queue_depth {
            return Err(FleetError::Rejected(Backpressure {
                shard,
                queue_depth: self.queue_depth,
            }));
        }
        queue.push_back(request);
        Ok(())
    }

    /// Executes one request: the scheduler picks which non-empty shard
    /// queue progresses. Returns `false` when every queue is empty.
    pub(crate) fn step(&mut self) -> bool {
        let runnable: Vec<usize> = (0..self.queues.len())
            .filter(|&s| !self.queues[s].is_empty())
            .collect();
        if runnable.is_empty() {
            return false;
        }
        let shard = runnable[self.scheduler.pick(runnable.len())];
        let request = self.queues[shard].pop_front().expect("runnable shard");
        self.workers[shard].process(request);
        true
    }

    /// Runs until every queue is empty; returns requests processed.
    pub(crate) fn run_until_idle(&mut self) -> usize {
        let mut steps = 0;
        while self.step() {
            steps += 1;
        }
        steps
    }

    /// Snapshots every worker directly — no reply channels needed when
    /// the workers live on the calling thread.
    pub(crate) fn metrics(&self) -> Vec<ShardMetrics> {
        self.workers
            .iter()
            .enumerate()
            .map(|(index, worker)| {
                let mut snapshot = worker.snapshot();
                snapshot.shard = index;
                snapshot.queue_depth = self.queues[index].len();
                snapshot
            })
            .collect()
    }
}
