//! One user's continual-learning session: learner + dual-memory state +
//! stream cursor, advanced batch by batch.

use std::sync::Arc;

use chameleon_core::{Chameleon, ChameleonConfig, EvalReport, ModelConfig, StepTrace, Strategy};
use chameleon_faults::{FaultInjector, FaultPlan};
use chameleon_stream::{DomainIlScenario, StreamConfig, StreamCursor};

/// Identifier of a user session, unique within a fleet.
pub type SessionId = u64;

/// Everything needed to (re)build one user's session deterministically.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSpec {
    /// Chameleon hyperparameters of this user's private learner.
    pub learner: ChameleonConfig,
    /// Stream shaping — per-user preference skew lives here.
    pub stream: StreamConfig,
    /// Seed of the learner's head init and sampling RNG.
    pub learner_seed: u64,
    /// Base seed of the user's domain streams (the per-domain seed is
    /// derived exactly as the sequential `Trainer` derives it).
    pub stream_seed: u64,
}

/// Mixes a fleet-wide fault plan down to one session's private plan.
///
/// Each session gets independently seeded fault RNG streams (splitmix64
/// over the session id), so per-session fault sequences do not depend on
/// how sessions are interleaved across shards — the key to the fleet's
/// determinism contract. Exposed so solo reference runs (and the
/// determinism tests) can reproduce a fleet session exactly.
pub fn session_fault_plan(base: &FaultPlan, session: SessionId) -> FaultPlan {
    FaultPlan {
        seed: base.seed ^ splitmix64(session),
        ..*base
    }
}

/// SplitMix64 — the standard 64-bit finalizer, used for seed mixing and
/// shard assignment hashing.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One resident user session: a `(Strategy, dual-memory state, stream
/// cursor)` triple that can be advanced one batch at a time, suspended,
/// checkpointed, and resumed.
///
/// Stepping replicates the sequential `Trainer` protocol exactly —
/// identity domain order, the same per-domain stream seeds, and the same
/// fault-injection ordering per batch — so a fleet-hosted session is
/// bit-identical to a solo `Trainer::run`/`run_with_faults` over the same
/// scenario and spec.
#[derive(Debug)]
pub struct UserSession {
    id: SessionId,
    spec: SessionSpec,
    scenario: Arc<DomainIlScenario>,
    learner: Chameleon,
    injector: Option<FaultInjector>,
    cursor: Option<StreamCursor>,
    next_domain: usize,
    batches_into_domain: u64,
    finalized: bool,
}

impl UserSession {
    /// Creates a fresh session at the start of its stream.
    ///
    /// `fleet_faults` is the fleet-wide plan; the session derives its
    /// private plan via [`session_fault_plan`]. A no-op plan wires no
    /// injector (bit-identical to `None`).
    ///
    /// # Panics
    ///
    /// Panics if the spec's learner or stream config is invalid for the
    /// scenario.
    pub fn new(
        id: SessionId,
        spec: SessionSpec,
        scenario: Arc<DomainIlScenario>,
        fleet_faults: Option<&FaultPlan>,
    ) -> Self {
        let model = ModelConfig::for_spec(scenario.spec());
        let learner = Chameleon::new(&model, spec.learner.clone(), spec.learner_seed);
        let injector = fleet_faults
            .filter(|plan| !plan.is_noop())
            .map(|plan| FaultInjector::new(session_fault_plan(plan, id)));
        Self {
            id,
            spec,
            scenario,
            learner,
            injector,
            cursor: None,
            next_domain: 0,
            batches_into_domain: 0,
            finalized: false,
        }
    }

    /// Session identifier.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The session's rebuild spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Whether the whole stream has been consumed and the learner
    /// finalized.
    pub fn is_done(&self) -> bool {
        self.finalized
    }

    /// Index of the domain currently streaming (or next to stream).
    pub fn current_domain(&self) -> usize {
        self.next_domain
    }

    /// Batches already delivered within the current domain.
    pub fn batches_into_domain(&self) -> u64 {
        self.batches_into_domain
    }

    /// The hosted learner (inspection / fault-injection hooks for tests).
    pub fn learner(&self) -> &Chameleon {
        &self.learner
    }

    /// Mutable access to the hosted learner (test hooks only; mutating
    /// mid-stream voids the determinism contract).
    pub fn learner_mut(&mut self) -> &mut Chameleon {
        &mut self.learner
    }

    /// Accumulated operation trace of the learner.
    pub fn trace(&self) -> StepTrace {
        self.learner.trace()
    }

    /// Nominal resident footprint of the session's replay stores, in
    /// bytes — what shard session-memory budgets are accounted against.
    pub fn resident_bytes(&self) -> u64 {
        (self.learner.memory_overhead_mb() * 1024.0 * 1024.0).ceil() as u64
    }

    /// Bytes the latent codec saves for this session versus the nominal
    /// (unquantized) pricing of the same stores — zero for `F32`/`F16`
    /// sessions, roughly half the nominal footprint for `Int8`.
    pub fn codec_bytes_saved(&self) -> u64 {
        let nominal = (self
            .learner
            .memory_overhead_mb_at(chameleon_core::Precision::F32)
            * 1024.0
            * 1024.0)
            .ceil() as u64;
        nominal.saturating_sub(self.resident_bytes())
    }

    /// Advances the session by at most one stream batch, mirroring the
    /// sequential trainer loop (begin/end-domain hooks, per-domain stream
    /// seeds, fault ordering). Returns `false` once the stream is
    /// exhausted and the learner finalized; further calls are no-ops.
    pub fn step_batch(&mut self) -> bool {
        if self.finalized {
            return false;
        }
        loop {
            if self.cursor.is_none() {
                if self.next_domain == self.scenario.spec().num_domains {
                    self.learner.finalize();
                    self.finalized = true;
                    return false;
                }
                self.learner.begin_domain(self.next_domain);
                self.cursor = Some(self.scenario.stream_cursor(
                    self.next_domain,
                    &self.spec.stream,
                    self.domain_seed(self.next_domain),
                ));
                self.batches_into_domain = 0;
            }
            let cursor = self.cursor.as_mut().expect("cursor set above");
            match cursor.next_batch(self.scenario.generator()) {
                Some(batch) => {
                    self.batches_into_domain += 1;
                    match self.injector.as_mut() {
                        None => self.learner.observe(&batch),
                        Some(injector) => {
                            // Same ordering as the sequential trainer:
                            // stream time passes whether or not the batch
                            // is delivered, then resident stores age.
                            let ticks = batch.len() as u64;
                            for delivered in injector.mangle_batch(batch) {
                                self.learner.observe(&delivered);
                            }
                            self.learner.visit_stores(&mut |placement, sample| {
                                injector.flip_bits(&mut sample.features, ticks, placement);
                            });
                        }
                    }
                    return true;
                }
                None => {
                    self.learner.end_domain(self.next_domain);
                    self.cursor = None;
                    self.next_domain += 1;
                }
            }
        }
    }

    /// Advances by up to `batches` stream batches; returns how many were
    /// actually delivered (fewer when the stream ends).
    pub fn step_batches(&mut self, batches: usize) -> usize {
        let mut done = 0;
        for _ in 0..batches {
            if !self.step_batch() {
                break;
            }
            done += 1;
        }
        done
    }

    /// Evaluates the learner on the scenario's all-domain test set.
    pub fn evaluate(&self) -> EvalReport {
        EvalReport::evaluate(&self.scenario, &self.learner)
    }

    /// The exact per-domain stream seed the sequential trainer would use
    /// (identity domain order: position == domain).
    fn domain_seed(&self, domain: usize) -> u64 {
        self.spec.stream_seed.wrapping_add(domain as u64 * 0x9E37)
    }

    pub(crate) fn parts_for_checkpoint(&self) -> (&Chameleon, usize, bool, u64, bool) {
        (
            &self.learner,
            self.next_domain,
            self.cursor.is_some(),
            self.batches_into_domain,
            self.finalized,
        )
    }

    /// Rebuilds a session from checkpointed progress: a reloaded learner
    /// plus the stream position. The cursor is recreated from the
    /// deterministic per-domain seed and fast-forwarded by replaying
    /// `progress.batches_into_domain` batches, reproducing the exact
    /// stream state at eviction time.
    pub(crate) fn from_restored_parts(
        id: SessionId,
        spec: SessionSpec,
        scenario: Arc<DomainIlScenario>,
        learner: Chameleon,
        fleet_faults: Option<&FaultPlan>,
        progress: StreamProgress,
    ) -> Self {
        let injector = fleet_faults
            .filter(|plan| !plan.is_noop())
            .map(|plan| FaultInjector::new(session_fault_plan(plan, id)));
        let mut session = Self {
            id,
            spec,
            scenario,
            learner,
            injector,
            cursor: None,
            next_domain: progress.next_domain,
            batches_into_domain: 0,
            finalized: progress.finalized,
        };
        if progress.mid_domain && !progress.finalized {
            let mut cursor = session.scenario.stream_cursor(
                progress.next_domain,
                &session.spec.stream,
                session.domain_seed(progress.next_domain),
            );
            let generator = session.scenario.generator();
            for _ in 0..progress.batches_into_domain {
                let _ = cursor.next_batch(generator);
            }
            session.cursor = Some(cursor);
            session.batches_into_domain = progress.batches_into_domain;
        }
        session
    }
}

/// Stream position captured at eviction time, as a unit.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StreamProgress {
    pub(crate) next_domain: usize,
    pub(crate) mid_domain: bool,
    pub(crate) batches_into_domain: u64,
    pub(crate) finalized: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_core::Trainer;
    use chameleon_stream::DatasetSpec;

    fn tiny_scenario() -> Arc<DomainIlScenario> {
        Arc::new(DomainIlScenario::generate(
            &DatasetSpec::core50_tiny(),
            0xDA7A,
        ))
    }

    fn tiny_spec(stream_seed: u64) -> SessionSpec {
        SessionSpec {
            learner: ChameleonConfig {
                long_term_capacity: 30,
                ..ChameleonConfig::default()
            },
            stream: StreamConfig::default(),
            learner_seed: 5,
            stream_seed,
        }
    }

    #[test]
    fn session_matches_sequential_trainer_bit_for_bit() {
        let scenario = tiny_scenario();
        let spec = tiny_spec(9);
        let mut session = UserSession::new(1, spec.clone(), Arc::clone(&scenario), None);
        while session.step_batch() {}
        assert!(session.is_done());

        let model = ModelConfig::for_spec(scenario.spec());
        let mut solo = Chameleon::new(&model, spec.learner.clone(), spec.learner_seed);
        let solo_report = Trainer::new(spec.stream).run(&scenario, &mut solo, spec.stream_seed);

        assert_eq!(session.evaluate(), solo_report);
        assert_eq!(session.trace(), solo.trace());
    }

    #[test]
    fn session_with_faults_matches_solo_faulted_run() {
        let scenario = tiny_scenario();
        let spec = tiny_spec(3);
        let plan = FaultPlan::bit_flips(77, 1e-4);
        let mut session = UserSession::new(4, spec.clone(), Arc::clone(&scenario), Some(&plan));
        while session.step_batch() {}

        let model = ModelConfig::for_spec(scenario.spec());
        let mut solo = Chameleon::new(&model, spec.learner.clone(), spec.learner_seed);
        let mut injector = FaultInjector::new(session_fault_plan(&plan, 4));
        let solo_report = Trainer::new(spec.stream).run_with_faults(
            &scenario,
            &mut solo,
            spec.stream_seed,
            &mut injector,
        );

        assert_eq!(session.evaluate(), solo_report);
        assert_eq!(session.learner().resilience(), solo.resilience());
    }

    #[test]
    fn step_batches_counts_deliveries_and_stops_at_end() {
        let scenario = tiny_scenario();
        let mut session = UserSession::new(0, tiny_spec(1), scenario, None);
        // core50-tiny: 4 domains × 12 batches of 10.
        assert_eq!(session.step_batches(20), 20);
        assert_eq!(session.current_domain(), 1);
        assert_eq!(session.step_batches(1000), 28);
        assert!(session.is_done());
        assert_eq!(session.step_batches(5), 0);
    }

    #[test]
    fn per_session_fault_plans_are_distinct_but_deterministic() {
        let base = FaultPlan::bit_flips(1, 1e-5);
        assert_ne!(
            session_fault_plan(&base, 0).seed,
            session_fault_plan(&base, 1).seed
        );
        assert_eq!(session_fault_plan(&base, 7), session_fault_plan(&base, 7));
        assert_eq!(session_fault_plan(&base, 7).memory, base.memory);
    }

    #[test]
    fn resident_bytes_tracks_store_capacity() {
        let scenario = tiny_scenario();
        let small = UserSession::new(0, tiny_spec(1), Arc::clone(&scenario), None);
        let mut big_spec = tiny_spec(1);
        big_spec.learner.long_term_capacity = 300;
        let big = UserSession::new(1, big_spec, scenario, None);
        assert!(big.resident_bytes() > small.resident_bytes());
    }
}
