//! The fleet engine: multiplexes many user sessions across N shard worker
//! threads with deterministic assignment and bounded-queue backpressure.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use chameleon_faults::FaultPlan;
use chameleon_obs::Observer;
use chameleon_runtime::{Runtime, WallClock};
use chameleon_store::{SharedStore, StoreCounters, StoreError};
use chameleon_stream::{ConfigError, DomainIlScenario};

use crate::checkpoint::SessionCheckpoint;
use crate::metrics::FleetMetrics;
use crate::session::{splitmix64, SessionId, SessionSpec};
use crate::shard::{
    RecoveredSession, Request, SessionCommand, SessionEvent, SessionEventKind, ShardWorker,
};
use crate::sim::SimExecutor;

/// Shape of a fleet: shard count, queue bound, per-shard session-memory
/// budget, and optional fleet-wide fault plan.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetConfig {
    /// Worker shard count (threads).
    pub num_shards: usize,
    /// Bounded request-queue depth per shard; a full queue rejects with
    /// [`FleetError::Rejected`] instead of blocking the caller.
    pub queue_depth: usize,
    /// Per-shard resident session-memory budget in bytes; exceeding it
    /// evicts least-recently-used sessions to checkpoint form.
    pub budget_bytes: u64,
    /// Seed of the session→shard hash. Assignment depends only on this
    /// seed and the session id, never on arrival order.
    pub assignment_seed: u64,
    /// Optional fleet-wide fault plan; each session derives a private,
    /// interleaving-independent plan from it.
    pub faults: Option<FaultPlan>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            num_shards: 2,
            queue_depth: 64,
            budget_bytes: u64::MAX,
            assignment_seed: 0,
            faults: None,
        }
    }
}

impl FleetConfig {
    /// Checks structural validity.
    ///
    /// # Errors
    ///
    /// Returns the first violated requirement.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_shards == 0 {
            return Err(ConfigError {
                field: "shard count",
                requirement: "must be positive",
            });
        }
        if self.queue_depth == 0 {
            return Err(ConfigError {
                field: "queue depth",
                requirement: "must be positive",
            });
        }
        if self.budget_bytes == 0 {
            return Err(ConfigError {
                field: "session-memory budget",
                requirement: "must be positive",
            });
        }
        Ok(())
    }
}

/// Why a request was turned down at the engine boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// The target shard's bounded queue is full; retry after draining
    /// events (or use the `_blocking` submit variants).
    Rejected(Backpressure),
    /// The session id was never created on this engine.
    UnknownSession,
    /// The session id already exists.
    DuplicateSession,
    /// The shard's worker thread is gone (it can no longer accept work).
    ShardDown(usize),
}

/// Details of a backpressure rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// Shard whose queue was full.
    pub shard: usize,
    /// The configured queue bound that was hit.
    pub queue_depth: usize,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Rejected(bp) => write!(
                f,
                "shard {} queue full (depth {})",
                bp.shard, bp.queue_depth
            ),
            Self::UnknownSession => write!(f, "unknown session"),
            Self::DuplicateSession => write!(f, "session already exists"),
            Self::ShardDown(shard) => write!(f, "shard {shard} worker is down"),
        }
    }
}

impl std::error::Error for FleetError {}

struct ShardHandle {
    sender: SyncSender<Request>,
    in_flight: Arc<AtomicUsize>,
    join: Option<JoinHandle<()>>,
}

/// Correlation id reserved for engine-internal migration traffic.
///
/// Safe to reserve: the untagged submit paths use correlation `0` and
/// network frontends allocate correlations counting up from `1`, so a
/// caller-chosen id can never collide with this sentinel before the heat
/// death of the universe.
pub const MIGRATION_CORRELATION: u64 = u64::MAX;

/// How this engine executes its shard workers.
enum Backend {
    /// One OS thread per shard behind a bounded `mpsc` queue.
    Threads(Vec<ShardHandle>),
    /// Single-threaded seeded cooperative execution (`chameleon-simtest`).
    Sim(SimExecutor),
}

/// What [`FleetEngine::recover`] rebuilt from the durable session store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sessions whose last sealed checkpoint was validated and re-seeded
    /// as cold state on their home shard.
    pub sessions_recovered: usize,
    /// Sealed records that failed validation (corrupt payload, session
    /// mismatch) and were skipped.
    pub decode_rejects: usize,
}

/// A sharded multi-session engine.
///
/// Sessions are assigned to shards by seeded hash of their id, so an
/// N-shard run processes each session with exactly the same request
/// sequence a 1-shard run (or a solo [`crate::UserSession`]) would — the
/// basis of the fleet's determinism contract (see `DESIGN.md`).
pub struct FleetEngine {
    config: FleetConfig,
    backend: Backend,
    events: Receiver<SessionEvent>,
    buffered: VecDeque<SessionEvent>,
    known: HashSet<SessionId>,
    /// Placement override table: sessions re-homed by online migration.
    /// Consulted by [`Self::shard_of`] before the seeded-hash default.
    /// In-memory only — after a crash, recovery re-seeds every session on
    /// its hash-home shard, which is always correct because the durable
    /// store is fleet-wide, not per-shard.
    overrides: HashMap<SessionId, usize>,
    /// Sessions moved by [`Self::migrate_session`] over this engine's
    /// lifetime (counts re-homes back to the hash default too).
    migrations: u64,
    pending: usize,
    observer: Arc<Observer>,
    store: Option<SharedStore>,
}

impl FleetEngine {
    /// Spawns the shard workers on real threads ([`Runtime::Threads`]).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`FleetConfig::validate`].
    pub fn new(scenario: Arc<DomainIlScenario>, config: FleetConfig) -> Self {
        Self::with_runtime(scenario, config, Runtime::Threads)
    }

    /// An engine under deterministic simulation: no threads, a seeded
    /// scheduler picks which shard queue progresses, and all timing
    /// reads a shared virtual clock. The same `(scenario, config, seed,
    /// request sequence)` reproduces the same event log and checkpoint
    /// bytes, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`FleetConfig::validate`].
    pub fn new_sim(scenario: Arc<DomainIlScenario>, config: FleetConfig, seed: u64) -> Self {
        Self::with_runtime(scenario, config, Runtime::sim(seed))
    }

    /// Builds an engine on an explicit [`Runtime`].
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`FleetConfig::validate`].
    pub fn with_runtime(
        scenario: Arc<DomainIlScenario>,
        config: FleetConfig,
        runtime: Runtime,
    ) -> Self {
        // A default observer on the runtime-matching clock: wall time for
        // threads, the scheduler's shared virtual clock for simulation.
        let observer = match &runtime {
            Runtime::Threads => Arc::new(Observer::new(WallClock::shared())),
            Runtime::Sim(scheduler) => Arc::new(Observer::new(scheduler.clock())),
        };
        Self::with_observer(scenario, config, runtime, observer)
    }

    /// Builds an engine on an explicit [`Runtime`] with a caller-supplied
    /// span/event [`Observer`] — the serving layer passes its own so the
    /// fleet's per-stage spans land beside its encode/decode spans.
    ///
    /// The observer's clock should match the runtime's (wall vs virtual);
    /// the shard workers feed it the *same* elapsed nanos that accumulate
    /// in [`crate::ShardMetrics`], so span totals reconcile exactly.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`FleetConfig::validate`].
    pub fn with_observer(
        scenario: Arc<DomainIlScenario>,
        config: FleetConfig,
        runtime: Runtime,
        observer: Arc<Observer>,
    ) -> Self {
        Self::build(scenario, config, runtime, observer, None, Vec::new())
    }

    /// Builds an engine with the durable session store attached: LRU
    /// evictions write through it (checkpoint sealed + fsynced before the
    /// RAM copy is dropped) and cold restores read through it. Starts from
    /// whatever the store already holds *without* recovering it — use
    /// [`Self::recover`] to also re-seed sessions from disk.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`FleetConfig::validate`].
    pub fn with_store(
        scenario: Arc<DomainIlScenario>,
        config: FleetConfig,
        runtime: Runtime,
        store: SharedStore,
    ) -> Self {
        let observer = Self::default_observer(&runtime);
        Self::build(scenario, config, runtime, observer, Some(store), Vec::new())
    }

    /// [`Self::with_store`] with a caller-supplied [`Observer`].
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`FleetConfig::validate`].
    pub fn with_observer_and_store(
        scenario: Arc<DomainIlScenario>,
        config: FleetConfig,
        runtime: Runtime,
        observer: Arc<Observer>,
        store: SharedStore,
    ) -> Self {
        Self::build(scenario, config, runtime, observer, Some(store), Vec::new())
    }

    /// Rebuilds a fleet from the durable session store after a crash:
    /// every session with a sealed record is validated against its
    /// `CHAMFLT1` envelope and re-seeded cold on its home shard, to be
    /// restored (to exactly its last sealed checkpoint) on first touch.
    /// Records that fail validation are counted and skipped, never
    /// panicked on.
    ///
    /// # Errors
    ///
    /// I/O or manifest failures reading the store. Per-record corruption
    /// is *not* an error — it lands in [`RecoveryReport::decode_rejects`].
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`FleetConfig::validate`].
    pub fn recover(
        scenario: Arc<DomainIlScenario>,
        config: FleetConfig,
        runtime: Runtime,
        store: SharedStore,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let observer = Self::default_observer(&runtime);
        Self::recover_with_observer(scenario, config, runtime, observer, store)
    }

    /// [`Self::recover`] with a caller-supplied [`Observer`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::recover`].
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`FleetConfig::validate`].
    pub fn recover_with_observer(
        scenario: Arc<DomainIlScenario>,
        config: FleetConfig,
        runtime: Runtime,
        observer: Arc<Observer>,
        store: SharedStore,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        if let Err(e) = config.validate() {
            panic!("invalid fleet config: {e}");
        }
        let mut per_shard: Vec<Vec<RecoveredSession>> = vec![Vec::new(); config.num_shards];
        let mut rejects = 0usize;
        for id in store.sessions() {
            match store.get(id) {
                Ok(Some(blob)) => match SessionCheckpoint::from_bytes(&blob) {
                    Ok(checkpoint) if checkpoint.session == id => {
                        let seq = store.latest_seq(id).unwrap_or(0);
                        let shard = (splitmix64(id ^ config.assignment_seed)
                            % config.num_shards as u64)
                            as usize;
                        per_shard[shard].push((id, seq, checkpoint.counters));
                    }
                    _ => rejects += 1,
                },
                Ok(None) => {}
                Err(error @ (StoreError::Io { .. } | StoreError::Manifest { .. })) => {
                    return Err(error)
                }
                Err(StoreError::Crashed) => return Err(StoreError::Crashed),
                // Corrupt / IndexMismatch: that session's record is bad;
                // skip it and keep recovering the rest.
                Err(_) => rejects += 1,
            }
        }
        let sessions_recovered = per_shard.iter().map(Vec::len).sum();
        let engine = Self::build(scenario, config, runtime, observer, Some(store), per_shard);
        engine.observer.event(format!(
            "store: recovered {sessions_recovered} sessions ({rejects} rejects)"
        ));
        Ok((
            engine,
            RecoveryReport {
                sessions_recovered,
                decode_rejects: rejects,
            },
        ))
    }

    /// A default observer on the runtime-matching clock.
    fn default_observer(runtime: &Runtime) -> Arc<Observer> {
        match runtime {
            Runtime::Threads => Arc::new(Observer::new(WallClock::shared())),
            Runtime::Sim(scheduler) => Arc::new(Observer::new(scheduler.clock())),
        }
    }

    fn build(
        scenario: Arc<DomainIlScenario>,
        config: FleetConfig,
        runtime: Runtime,
        observer: Arc<Observer>,
        store: Option<SharedStore>,
        mut recovered: Vec<Vec<RecoveredSession>>,
    ) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid fleet config: {e}");
        }
        let known: HashSet<SessionId> = recovered
            .iter()
            .flat_map(|seeds| seeds.iter().map(|(id, _, _)| *id))
            .collect();
        let (event_tx, event_rx) = mpsc::channel();
        let backend = match runtime {
            Runtime::Threads => {
                let clock = WallClock::shared();
                let shards = (0..config.num_shards)
                    .map(|shard| {
                        let (tx, rx) = mpsc::sync_channel(config.queue_depth);
                        let mut worker = ShardWorker::new(
                            shard,
                            Arc::clone(&scenario),
                            config.faults,
                            config.budget_bytes,
                            Arc::clone(&clock),
                            event_tx.clone(),
                            Arc::clone(&observer),
                        );
                        if let Some(store) = &store {
                            let seeds = recovered.get_mut(shard).map(std::mem::take);
                            worker.attach_store(store.clone(), seeds.unwrap_or_default());
                        }
                        let join = std::thread::Builder::new()
                            .name(format!("fleet-shard-{shard}"))
                            .spawn(move || worker.run(rx))
                            .expect("spawn shard worker");
                        ShardHandle {
                            sender: tx,
                            in_flight: Arc::new(AtomicUsize::new(0)),
                            join: Some(join),
                        }
                    })
                    .collect();
                Backend::Threads(shards)
            }
            Runtime::Sim(scheduler) => Backend::Sim(SimExecutor::new(
                scenario,
                &config,
                scheduler,
                event_tx,
                Arc::clone(&observer),
                store.clone(),
                recovered,
            )),
        };
        Self {
            config,
            backend,
            events: event_rx,
            buffered: VecDeque::new(),
            known,
            overrides: HashMap::new(),
            migrations: 0,
            pending: 0,
            observer,
            store,
        }
    }

    /// The span recorder + event log this engine's shard workers feed.
    pub fn observer(&self) -> Arc<Observer> {
        Arc::clone(&self.observer)
    }

    /// Counters of the attached durable session store, `None` when the
    /// engine runs RAM-only.
    pub fn store_counters(&self) -> Option<StoreCounters> {
        self.store.as_ref().map(SharedStore::counters)
    }

    /// The scheduler seed when running under simulation, else `None`.
    pub fn sim_seed(&self) -> Option<u64> {
        match &self.backend {
            Backend::Threads(_) => None,
            Backend::Sim(exec) => Some(exec.seed()),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Current session→shard placement: the migration override when one
    /// exists, else the seeded-hash default ([`Self::home_shard`]).
    pub fn shard_of(&self, id: SessionId) -> usize {
        match self.overrides.get(&id) {
            Some(&shard) => shard,
            None => self.home_shard(id),
        }
    }

    /// The seeded-hash default placement, ignoring migration overrides:
    /// a pure function of the id and the assignment seed, independent of
    /// creation order and of every other session.
    pub fn home_shard(&self, id: SessionId) -> usize {
        (splitmix64(id ^ self.config.assignment_seed) % self.config.num_shards as u64) as usize
    }

    /// Known sessions currently placed on `shard`, in ascending id order
    /// (deterministic victim enumeration for rebalance policies).
    pub fn sessions_on(&self, shard: usize) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .known
            .iter()
            .copied()
            .filter(|&id| self.shard_of(id) == shard)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Sessions currently placed away from their hash-home shard.
    pub fn placement_overrides(&self) -> usize {
        self.overrides.len()
    }

    /// Sessions moved by [`Self::migrate_session`] since construction.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Moves one session to another shard, online: exports it to its
    /// `CHAMFLT1` checkpoint on the current owner, records the new
    /// placement in the override table, and imports the blob cold on the
    /// target shard. The move is synchronous — when this returns the
    /// session is owned by exactly one shard — and observably identical
    /// to an [`SessionCommand::Evict`] at the same command boundary:
    /// observable state (stores, quarantine, counters, stream position)
    /// is preserved bit for bit, transient training state restarts
    /// exactly as the checkpoint format documents. Events of unrelated
    /// sessions arriving mid-move are buffered for the next
    /// [`Self::drain`] in arrival order.
    ///
    /// Returns `Ok(true)` when the session moved, `Ok(false)` when the
    /// move was skipped — already on `to`, or the export was declined
    /// (e.g. a cold read from a hostile disk failed) and the session
    /// safely stays where it was.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownSession`] for an id never created,
    /// [`FleetError::ShardDown`] if a worker died mid-move.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a valid shard index, or on the engine
    /// invariant that a blob this engine just exported always re-imports.
    pub fn migrate_session(&mut self, id: SessionId, to: usize) -> Result<bool, FleetError> {
        assert!(
            to < self.config.num_shards,
            "migration target shard {to} out of range (num_shards {})",
            self.config.num_shards
        );
        if !self.known.contains(&id) {
            return Err(FleetError::UnknownSession);
        }
        let from = self.shard_of(id);
        if from == to {
            return Ok(false);
        }
        loop {
            let request = Request::Command {
                id,
                command: SessionCommand::Export,
                correlation: MIGRATION_CORRELATION,
            };
            match self.dispatch(id, request) {
                Ok(()) => break,
                Err(FleetError::Rejected(_)) => self.absorb_backpressure(),
                Err(other) => return Err(other),
            }
        }
        let blob = match self.await_migration_event(id)? {
            SessionEventKind::Exported(blob) => blob,
            SessionEventKind::Failed(reason) => {
                // Export declined: the current owner still holds the
                // session, so skipping the move is safe.
                self.observer
                    .event(format!("migrate: session {id} export declined: {reason}"));
                return Ok(false);
            }
            other => panic!("export acknowledged with unexpected event {other:?}"),
        };
        if to == self.home_shard(id) {
            self.overrides.remove(&id);
        } else {
            self.overrides.insert(id, to);
        }
        loop {
            let request = Request::Import {
                id,
                blob: blob.clone(),
                correlation: MIGRATION_CORRELATION,
            };
            match self.dispatch(id, request) {
                Ok(()) => break,
                Err(FleetError::Rejected(_)) => self.absorb_backpressure(),
                Err(other) => return Err(other),
            }
        }
        self.known.insert(id);
        match self.await_migration_event(id)? {
            SessionEventKind::Imported => {
                self.migrations += 1;
                self.observer
                    .event(format!("migrate: session {id} moved {from} -> {to}"));
                Ok(true)
            }
            other => panic!("re-import of a just-exported blob failed: {other:?}"),
        }
    }

    /// Waits for the migration-correlated event of `id`, buffering every
    /// unrelated event for the next [`Self::drain`] in arrival order.
    fn await_migration_event(&mut self, id: SessionId) -> Result<SessionEventKind, FleetError> {
        if let Backend::Sim(exec) = &mut self.backend {
            exec.run_until_idle();
        }
        loop {
            let received = match &self.backend {
                // Simulation ran every queued request above, so the event
                // is already in the channel.
                Backend::Sim(_) => self.events.try_recv().map_err(|_| ()),
                Backend::Threads(_) => self.events.recv().map_err(|_| ()),
            };
            let Ok(event) = received else {
                return Err(FleetError::ShardDown(self.shard_of(id)));
            };
            self.account(&event);
            if event.session == id && event.correlation == MIGRATION_CORRELATION {
                return Ok(event.kind);
            }
            self.buffered.push_back(event);
        }
    }

    /// Requests (once acknowledged by an event) not yet drained.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Whether `id` was ever successfully created on this engine.
    pub fn known(&self, id: SessionId) -> bool {
        self.known.contains(&id)
    }

    /// Submits session creation; acknowledged later by a `Created` event.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateSession`] for a known id,
    /// [`FleetError::Rejected`] under backpressure,
    /// [`FleetError::ShardDown`] if the worker died.
    pub fn create(&mut self, id: SessionId, spec: SessionSpec) -> Result<(), FleetError> {
        self.create_correlated(id, spec, 0)
    }

    /// [`Self::create`] with a caller-chosen correlation id echoed on the
    /// acknowledging event — the hook network frontends (`chameleon-serve`)
    /// use to match events to wire requests.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::create`].
    pub fn create_correlated(
        &mut self,
        id: SessionId,
        spec: SessionSpec,
        correlation: u64,
    ) -> Result<(), FleetError> {
        if self.known.contains(&id) {
            return Err(FleetError::DuplicateSession);
        }
        self.dispatch(
            id,
            Request::Create {
                id,
                spec: Box::new(spec),
                correlation,
            },
        )?;
        self.known.insert(id);
        Ok(())
    }

    /// Submits a command on an existing session; acknowledged later by
    /// exactly one event.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownSession`] for an id never created,
    /// [`FleetError::Rejected`] under backpressure,
    /// [`FleetError::ShardDown`] if the worker died.
    pub fn command(&mut self, id: SessionId, command: SessionCommand) -> Result<(), FleetError> {
        self.command_correlated(id, command, 0)
    }

    /// [`Self::command`] with a caller-chosen correlation id echoed on the
    /// acknowledging event.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::command`].
    pub fn command_correlated(
        &mut self,
        id: SessionId,
        command: SessionCommand,
        correlation: u64,
    ) -> Result<(), FleetError> {
        if !self.known.contains(&id) {
            return Err(FleetError::UnknownSession);
        }
        self.dispatch(
            id,
            Request::Command {
                id,
                command,
                correlation,
            },
        )
    }

    /// Imports a handed-off session from its `CHAMFLT1` blob, with a
    /// caller-chosen correlation id; acknowledged later by an `Imported`
    /// event (or `Failed` when the blob is corrupt or misaddressed). The
    /// inverse of [`SessionCommand::Export`]: the blob is admitted cold
    /// and restored on first touch, so subsequent training is
    /// bit-identical to the exporting node continuing uninterrupted.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateSession`] for a known id,
    /// [`FleetError::Rejected`] under backpressure,
    /// [`FleetError::ShardDown`] if the worker died.
    pub fn import_correlated(
        &mut self,
        id: SessionId,
        blob: Vec<u8>,
        correlation: u64,
    ) -> Result<(), FleetError> {
        if self.known.contains(&id) {
            return Err(FleetError::DuplicateSession);
        }
        self.dispatch(
            id,
            Request::Import {
                id,
                blob,
                correlation,
            },
        )?;
        self.known.insert(id);
        Ok(())
    }

    /// [`Self::import_correlated`] that rides out backpressure by
    /// draining events (buffering them for the next [`Self::drain`]) and
    /// retrying.
    ///
    /// # Errors
    ///
    /// Propagates every failure except `Rejected`.
    pub fn import_blocking(&mut self, id: SessionId, blob: Vec<u8>) -> Result<(), FleetError> {
        loop {
            match self.import_correlated(id, blob.clone(), 0) {
                Err(FleetError::Rejected(_)) => self.absorb_backpressure(),
                other => return other,
            }
        }
    }

    /// [`Self::create`] that rides out backpressure by draining events
    /// (buffering them for the next [`Self::drain`]) and retrying.
    ///
    /// # Errors
    ///
    /// Propagates every failure except `Rejected`.
    pub fn create_blocking(&mut self, id: SessionId, spec: SessionSpec) -> Result<(), FleetError> {
        if self.known.contains(&id) {
            return Err(FleetError::DuplicateSession);
        }
        loop {
            let request = Request::Create {
                id,
                spec: Box::new(spec.clone()),
                correlation: 0,
            };
            match self.dispatch(id, request) {
                Ok(()) => {
                    self.known.insert(id);
                    return Ok(());
                }
                Err(FleetError::Rejected(_)) => self.absorb_backpressure(),
                Err(other) => return Err(other),
            }
        }
    }

    /// [`Self::command`] that rides out backpressure by draining events
    /// (buffering them for the next [`Self::drain`]) and retrying.
    ///
    /// # Errors
    ///
    /// Propagates every failure except `Rejected`.
    pub fn command_blocking(
        &mut self,
        id: SessionId,
        command: SessionCommand,
    ) -> Result<(), FleetError> {
        loop {
            match self.command(id, command.clone()) {
                Err(FleetError::Rejected(_)) => self.absorb_backpressure(),
                other => return other,
            }
        }
    }

    /// Pulls every event currently available without blocking. Buffered
    /// events from `_blocking` submits come first, in arrival order.
    ///
    /// Under simulation nothing runs until the engine is asked to, so
    /// "currently available" means *after executing all queued work* in
    /// scheduler order.
    pub fn drain(&mut self) -> Vec<SessionEvent> {
        if let Backend::Sim(exec) = &mut self.backend {
            exec.run_until_idle();
        }
        let mut out: Vec<SessionEvent> = self.buffered.drain(..).collect();
        while let Ok(event) = self.events.try_recv() {
            self.account(&event);
            out.push(event);
        }
        out
    }

    /// Blocks until every submitted request has been acknowledged, then
    /// returns all events (buffered first, then in arrival order).
    pub fn drain_pending(&mut self) -> Vec<SessionEvent> {
        let mut out = self.drain();
        if matches!(self.backend, Backend::Sim(_)) {
            // drain() already ran every queued request to completion and
            // each accepted request produced exactly one event.
            return out;
        }
        while self.pending > 0 {
            match self.events.recv() {
                Ok(event) => {
                    self.account(&event);
                    out.push(event);
                }
                Err(_) => break,
            }
        }
        out
    }

    /// Snapshots every shard's metrics (blocking round-trip per shard in
    /// threaded mode; direct reads under simulation).
    pub fn metrics(&mut self) -> FleetMetrics {
        let shards = match &mut self.backend {
            Backend::Sim(exec) => {
                return FleetMetrics {
                    per_shard: exec.metrics(),
                }
            }
            Backend::Threads(shards) => shards,
        };
        let mut per_shard = Vec::with_capacity(shards.len());
        for (index, shard) in shards.iter().enumerate() {
            let (reply_tx, reply_rx) = mpsc::channel();
            // A metrics request bypasses the bounded submit path: block
            // for space rather than reject, since it emits no event.
            if shard
                .sender
                .send(Request::Metrics { reply: reply_tx })
                .is_err()
            {
                continue;
            }
            let mut snapshot = match reply_rx.recv() {
                Ok(snapshot) => snapshot,
                Err(_) => continue,
            };
            snapshot.shard = index;
            snapshot.queue_depth = shard.in_flight.load(Ordering::Relaxed);
            per_shard.push(snapshot);
        }
        FleetMetrics { per_shard }
    }

    /// Stops all workers and joins their threads (runs queued work to
    /// completion under simulation). Called by `Drop`; explicit calls
    /// are idempotent.
    pub fn shutdown(&mut self) {
        match &mut self.backend {
            Backend::Sim(exec) => {
                exec.run_until_idle();
            }
            Backend::Threads(shards) => {
                for shard in shards.iter_mut() {
                    let _ = shard.sender.send(Request::Shutdown);
                }
                for shard in shards.iter_mut() {
                    if let Some(join) = shard.join.take() {
                        let _ = join.join();
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, id: SessionId, request: Request) -> Result<(), FleetError> {
        let shard = self.shard_of(id);
        match &mut self.backend {
            Backend::Sim(exec) => {
                exec.try_submit(shard, request)?;
                self.pending += 1;
                Ok(())
            }
            Backend::Threads(shards) => {
                let handle = &shards[shard];
                match handle.sender.try_send(request) {
                    Ok(()) => {
                        handle.in_flight.fetch_add(1, Ordering::Relaxed);
                        self.pending += 1;
                        Ok(())
                    }
                    Err(TrySendError::Full(_)) => Err(FleetError::Rejected(Backpressure {
                        shard,
                        queue_depth: self.config.queue_depth,
                    })),
                    Err(TrySendError::Disconnected(_)) => Err(FleetError::ShardDown(shard)),
                }
            }
        }
    }

    fn account(&mut self, event: &SessionEvent) {
        self.pending = self.pending.saturating_sub(1);
        // A successful export removes the session from this engine: the
        // blob carried on the event is now the only copy, and the id may
        // be re-imported (or re-created) later.
        if matches!(event.kind, SessionEventKind::Exported(_)) {
            self.known.remove(&event.session);
        }
        if let Backend::Threads(shards) = &mut self.backend {
            if let Some(shard) = shards.get(event.shard) {
                shard
                    .in_flight
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        Some(v.saturating_sub(1))
                    })
                    .ok();
            }
        }
    }

    /// Under backpressure: make progress and buffer the resulting events
    /// so submit order is preserved for the caller's next `drain`. The
    /// threaded path waits for workers; the sim path *is* the worker, so
    /// it executes exactly one scheduler step (freeing one queue slot).
    fn absorb_backpressure(&mut self) {
        if let Backend::Sim(exec) = &mut self.backend {
            exec.step();
        }
        let mut drained = false;
        while let Ok(event) = self.events.try_recv() {
            self.account(&event);
            self.buffered.push_back(event);
            drained = true;
        }
        if !drained {
            if let Backend::Threads(_) = &self.backend {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }
}

impl Drop for FleetEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}
