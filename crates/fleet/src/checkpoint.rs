//! Session checkpoints: the eviction format of the fleet engine.
//!
//! A [`SessionCheckpoint`] bundles everything an evicted session needs to
//! resume with identical observable state:
//!
//! * the learner's PR-1 checkpoint blob (head parameters, both replay
//!   stores with their insertion-time integrity checksums, lifetime class
//!   counts) — corruption quarantined before eviction stays quarantined
//!   after restore,
//! * the [`LearnerCounters`] the learner format does not persist (operation
//!   trace, store access/quarantine counters, skipped updates, rebuilds),
//! * the session's rebuild spec and stream progress (next domain, batches
//!   delivered into it), from which the stream cursor is reconstructed
//!   *exactly* by reseeding and replaying,
//!
//! wrapped in its own envelope: `"CHAMFLT1" | payload | CRC32(payload)`.
//!
//! Like the learner format, transient training state (sampling RNG
//! position, optimizer momentum, learning-window progress, fault-injector
//! RNG position) restarts on restore; the determinism contract in
//! `DESIGN.md` spells out the consequences.

use std::sync::Arc;

use chameleon_core::checkpoint::LoadCheckpointError;
use chameleon_core::{
    Chameleon, ChameleonConfig, LearnerCounters, ModelConfig, Precision, StepTrace,
};
use chameleon_faults::FaultPlan;
use chameleon_replay::{crc32, AccessStats};
use chameleon_stream::{DomainIlScenario, PreferenceProfile, StreamConfig};

use crate::session::{SessionId, SessionSpec, UserSession};

/// Magic bytes identifying a fleet session checkpoint (format version 1).
pub const FLEET_MAGIC: &[u8; 8] = b"CHAMFLT1";

/// Magic bytes for version 2, written only when the session's learner uses
/// a quantized latent precision. The payload layout is identical to v1 —
/// the spec's quarantine word carries the precision tag in its second byte
/// — so a v1 reader never sees a v2 record it would misparse, and an F32
/// session still serializes byte-identically to the v1 format.
pub const FLEET_MAGIC_V2: &[u8; 8] = b"CHAMFLT2";

/// A serialized-session bundle: learner blob + replay-buffer integrity
/// metadata + stream progress. See the module docs for the exact contract.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionCheckpoint {
    /// Session identifier.
    pub session: SessionId,
    /// Rebuild spec (learner + stream config, seeds).
    pub spec: SessionSpec,
    /// Domain the session streams next (or is mid-way through).
    pub next_domain: usize,
    /// Whether a stream cursor was live at capture time.
    pub mid_domain: bool,
    /// Batches already delivered within `next_domain`.
    pub batches_into_domain: u64,
    /// Whether the stream had ended and the learner was finalized.
    pub finalized: bool,
    /// The learner's own checkpoint blob (PR-1 `CHAMLN02` format).
    pub learner_blob: Vec<u8>,
    /// Lifetime counters not covered by the learner blob.
    pub counters: LearnerCounters,
}

impl SessionCheckpoint {
    /// Captures a session's full resumable state.
    pub fn capture(session: &UserSession) -> Self {
        let (learner, next_domain, mid_domain, batches_into_domain, finalized) =
            session.parts_for_checkpoint();
        let mut learner_blob = Vec::new();
        learner
            .save_checkpoint(&mut learner_blob)
            .expect("writing to a Vec cannot fail");
        Self {
            session: session.id(),
            spec: session.spec().clone(),
            next_domain,
            mid_domain,
            batches_into_domain,
            finalized,
            learner_blob,
            counters: learner.counters(),
        }
    }

    /// Rebuilds a resident session: reloads the learner from its blob,
    /// re-applies the lifetime counters, and fast-forwards a fresh stream
    /// cursor to the captured position.
    ///
    /// # Errors
    ///
    /// Returns a [`LoadCheckpointError`] when the inner learner blob is
    /// corrupt or shaped for a different scenario.
    pub fn restore(
        &self,
        scenario: Arc<DomainIlScenario>,
        fleet_faults: Option<&FaultPlan>,
    ) -> Result<UserSession, LoadCheckpointError> {
        let model = ModelConfig::for_spec(scenario.spec());
        let mut learner = Chameleon::load_checkpoint(
            &model,
            self.spec.learner.clone(),
            self.spec.learner_seed,
            self.learner_blob.as_slice(),
        )?;
        learner.restore_counters(&self.counters);
        Ok(UserSession::from_restored_parts(
            self.session,
            self.spec.clone(),
            scenario,
            learner,
            fleet_faults,
            crate::session::StreamProgress {
                next_domain: self.next_domain,
                mid_domain: self.mid_domain,
                batches_into_domain: self.batches_into_domain,
                finalized: self.finalized,
            },
        ))
    }

    /// Serializes into the `CHAMFLT1` envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(self.learner_blob.len() + 256);
        put_u64(&mut p, self.session);
        encode_spec(&mut p, &self.spec);
        put_u32(&mut p, self.next_domain as u32);
        put_u32(&mut p, u32::from(self.mid_domain));
        put_u64(&mut p, self.batches_into_domain);
        put_u32(&mut p, u32::from(self.finalized));
        put_u64(&mut p, self.learner_blob.len() as u64);
        p.extend_from_slice(&self.learner_blob);
        encode_counters(&mut p, &self.counters);

        let magic = if self.spec.learner.precision == Precision::F32 {
            FLEET_MAGIC
        } else {
            FLEET_MAGIC_V2
        };
        let mut blob = Vec::with_capacity(p.len() + 12);
        blob.extend_from_slice(magic);
        blob.extend_from_slice(&p);
        blob.extend_from_slice(&crc32(&p).to_le_bytes());
        blob
    }

    /// Decodes a `CHAMFLT1` envelope.
    ///
    /// # Errors
    ///
    /// Returns a [`LoadCheckpointError`] on bad magic, truncation, or a
    /// CRC32 footer mismatch. Decoding never panics on arbitrary input.
    pub fn from_bytes(blob: &[u8]) -> Result<Self, LoadCheckpointError> {
        if blob.len() < FLEET_MAGIC.len() + 4 {
            return Err(LoadCheckpointError::Truncated);
        }
        let magic = &blob[..FLEET_MAGIC.len()];
        if magic != FLEET_MAGIC && magic != FLEET_MAGIC_V2 {
            return Err(LoadCheckpointError::BadMagic);
        }
        let payload = &blob[FLEET_MAGIC.len()..blob.len() - 4];
        let footer = &blob[blob.len() - 4..];
        let expected = u32::from_le_bytes(footer.try_into().expect("footer is 4 bytes"));
        let found = crc32(payload);
        if found != expected {
            return Err(LoadCheckpointError::BadChecksum { found, expected });
        }

        let mut r = Reader(payload);
        let session = r.u64()?;
        let spec = decode_spec(&mut r)?;
        let next_domain = r.u32()? as usize;
        let mid_domain = r.u32()? != 0;
        let batches_into_domain = r.u64()?;
        let finalized = r.u32()? != 0;
        let blob_len = r.u64()? as usize;
        let learner_blob = r.bytes(blob_len)?.to_vec();
        let counters = decode_counters(&mut r)?;
        Ok(Self {
            session,
            spec,
            next_domain,
            mid_domain,
            batches_into_domain,
            finalized,
            learner_blob,
            counters,
        })
    }
}

impl SessionSpec {
    /// Serializes the spec in the same binary layout `CHAMFLT1`
    /// checkpoints embed, so a spec shipped over the wire and a spec
    /// captured at eviction time are byte-compatible.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(96);
        encode_spec(&mut p, self);
        p
    }

    /// Decodes a spec from the front of `bytes`, returning it together
    /// with the number of bytes consumed (specs are variable-length:
    /// preference profiles carry class lists).
    ///
    /// # Errors
    ///
    /// Returns a [`LoadCheckpointError`] on truncation or an unknown
    /// preference-profile tag. Never panics on arbitrary input.
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), LoadCheckpointError> {
        let mut r = Reader(bytes);
        let spec = decode_spec(&mut r)?;
        Ok((spec, bytes.len() - r.0.len()))
    }
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn bytes(&mut self, n: usize) -> Result<&[u8], LoadCheckpointError> {
        if self.0.len() < n {
            return Err(LoadCheckpointError::Truncated);
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32, LoadCheckpointError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, LoadCheckpointError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32(&mut self) -> Result<f32, LoadCheckpointError> {
        Ok(f32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn usize_list(&mut self) -> Result<Vec<usize>, LoadCheckpointError> {
        let len = self.u32()? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(self.u32()? as usize);
        }
        Ok(out)
    }
}

fn put_u32(p: &mut Vec<u8>, v: u32) {
    p.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(p: &mut Vec<u8>, v: u64) {
    p.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(p: &mut Vec<u8>, v: f32) {
    p.extend_from_slice(&v.to_le_bytes());
}

fn put_usize_list(p: &mut Vec<u8>, list: &[usize]) {
    put_u32(p, list.len() as u32);
    for &v in list {
        put_u32(p, v as u32);
    }
}

fn encode_spec(p: &mut Vec<u8>, spec: &SessionSpec) {
    let l = &spec.learner;
    put_u32(p, l.short_term_capacity as u32);
    put_u32(p, l.long_term_capacity as u32);
    put_u32(p, l.long_term_period as u32);
    put_u32(p, l.long_term_batch as u32);
    put_u32(p, l.top_k as u32);
    put_u32(p, l.learning_window as u32);
    put_f32(p, l.rho);
    put_f32(p, l.alpha);
    put_f32(p, l.beta);
    // Bit 0: quarantine flag (the full width of this word in format v1).
    // Bits 8..16: the latent-codec precision tag. F32's tag is zero, so an
    // unquantized spec encodes byte-identically to the v1 layout.
    put_u32(
        p,
        u32::from(l.quarantine) | (u32::from(l.precision.tag()) << 8),
    );
    put_f32(p, l.rebuild_integrity_floor);

    put_u32(p, spec.stream.batch_size as u32);
    put_u32(p, spec.stream.run_length as u32);
    match &spec.stream.preference {
        PreferenceProfile::Uniform => put_u32(p, 0),
        PreferenceProfile::Skewed { preferred, boost } => {
            put_u32(p, 1);
            put_usize_list(p, preferred);
            put_f32(p, *boost);
        }
        PreferenceProfile::Shifting { early, late, boost } => {
            put_u32(p, 2);
            put_usize_list(p, early);
            put_usize_list(p, late);
            put_f32(p, *boost);
        }
    }
    put_u64(p, spec.learner_seed);
    put_u64(p, spec.stream_seed);
}

fn decode_spec(r: &mut Reader<'_>) -> Result<SessionSpec, LoadCheckpointError> {
    let short_term_capacity = r.u32()? as usize;
    let long_term_capacity = r.u32()? as usize;
    let long_term_period = r.u32()? as usize;
    let long_term_batch = r.u32()? as usize;
    let top_k = r.u32()? as usize;
    let learning_window = r.u32()? as usize;
    let rho = r.f32()?;
    let alpha = r.f32()?;
    let beta = r.f32()?;
    let qp = r.u32()?;
    // Reject any bits outside the defined quarantine flag (bit 0) and
    // precision tag (bits 8..16): they belong to a future format revision.
    if qp & !0x0000_FF01 != 0 {
        return Err(LoadCheckpointError::UnsupportedVersion);
    }
    let precision = Precision::from_tag(((qp >> 8) & 0xFF) as u8)
        .ok_or(LoadCheckpointError::UnsupportedVersion)?;
    let learner = ChameleonConfig {
        short_term_capacity,
        long_term_capacity,
        long_term_period,
        long_term_batch,
        top_k,
        learning_window,
        rho,
        alpha,
        beta,
        quarantine: qp & 1 != 0,
        rebuild_integrity_floor: r.f32()?,
        precision,
    };
    let batch_size = r.u32()? as usize;
    let run_length = r.u32()? as usize;
    let preference = match r.u32()? {
        0 => PreferenceProfile::Uniform,
        1 => {
            let preferred = r.usize_list()?;
            let boost = r.f32()?;
            PreferenceProfile::Skewed { preferred, boost }
        }
        2 => {
            let early = r.usize_list()?;
            let late = r.usize_list()?;
            let boost = r.f32()?;
            PreferenceProfile::Shifting { early, late, boost }
        }
        _ => return Err(LoadCheckpointError::UnsupportedVersion),
    };
    Ok(SessionSpec {
        learner,
        stream: StreamConfig {
            batch_size,
            run_length,
            preference,
        },
        learner_seed: r.u64()?,
        stream_seed: r.u64()?,
    })
}

fn encode_counters(p: &mut Vec<u8>, c: &LearnerCounters) {
    let t = &c.trace;
    for v in [
        t.inputs,
        t.trunk_passes,
        t.head_fwd_passes,
        t.head_bwd_passes,
        t.onchip_sample_reads,
        t.onchip_sample_writes,
        t.offchip_latent_reads,
        t.offchip_latent_writes,
        t.offchip_raw_reads,
        t.offchip_raw_writes,
        t.covariance_updates,
        t.matrix_inversions,
        t.inversion_dim as u64,
    ] {
        put_u64(p, v);
    }
    for s in [c.short_term_stats, c.long_term_stats] {
        put_u64(p, s.sample_reads);
        put_u64(p, s.sample_writes);
        put_u64(p, s.corrupt_evictions);
    }
    put_u64(p, c.skipped_updates);
    put_u64(p, c.prototype_rebuilds);
}

fn decode_counters(r: &mut Reader<'_>) -> Result<LearnerCounters, LoadCheckpointError> {
    let trace = StepTrace {
        inputs: r.u64()?,
        trunk_passes: r.u64()?,
        head_fwd_passes: r.u64()?,
        head_bwd_passes: r.u64()?,
        onchip_sample_reads: r.u64()?,
        onchip_sample_writes: r.u64()?,
        offchip_latent_reads: r.u64()?,
        offchip_latent_writes: r.u64()?,
        offchip_raw_reads: r.u64()?,
        offchip_raw_writes: r.u64()?,
        covariance_updates: r.u64()?,
        matrix_inversions: r.u64()?,
        inversion_dim: r.u64()? as usize,
    };
    let mut stats = [AccessStats::default(); 2];
    for s in &mut stats {
        s.sample_reads = r.u64()?;
        s.sample_writes = r.u64()?;
        s.corrupt_evictions = r.u64()?;
    }
    Ok(LearnerCounters {
        trace,
        short_term_stats: stats[0],
        long_term_stats: stats[1],
        skipped_updates: r.u64()?,
        prototype_rebuilds: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_stream::DatasetSpec;

    fn tiny_session(stream_seed: u64) -> (Arc<DomainIlScenario>, UserSession) {
        let scenario = Arc::new(DomainIlScenario::generate(
            &DatasetSpec::core50_tiny(),
            0xDA7A,
        ));
        let spec = SessionSpec {
            learner: ChameleonConfig {
                long_term_capacity: 30,
                ..ChameleonConfig::default()
            },
            stream: StreamConfig {
                preference: PreferenceProfile::Skewed {
                    preferred: vec![0, 1, 2],
                    boost: 8.0,
                },
                ..StreamConfig::default()
            },
            learner_seed: 5,
            stream_seed,
        };
        let session = UserSession::new(3, spec, Arc::clone(&scenario), None);
        (scenario, session)
    }

    #[test]
    fn bytes_roundtrip_mid_stream() {
        let (_, mut session) = tiny_session(2);
        session.step_batches(17);
        let ck = SessionCheckpoint::capture(&session);
        assert!(ck.mid_domain);
        assert_eq!(ck.next_domain, 1);
        assert_eq!(ck.batches_into_domain, 5);
        let back = SessionCheckpoint::from_bytes(&ck.to_bytes()).expect("roundtrip");
        assert_eq!(back, ck);
    }

    #[test]
    fn capture_restore_capture_is_idempotent() {
        // The strongest eviction-fidelity statement the format makes:
        // restoring and immediately re-capturing yields the same bytes.
        let (scenario, mut session) = tiny_session(4);
        session.step_batches(23);
        let ck = SessionCheckpoint::capture(&session);
        let restored = ck.restore(scenario, None).expect("restore");
        let again = SessionCheckpoint::capture(&restored);
        assert_eq!(again.to_bytes(), ck.to_bytes());
    }

    #[test]
    fn restored_session_resumes_at_the_exact_stream_position() {
        let (scenario, mut session) = tiny_session(6);
        session.step_batches(14);
        let ck = SessionCheckpoint::capture(&session);
        let mut restored = ck.restore(scenario, None).expect("restore");
        assert_eq!(restored.current_domain(), session.current_domain());
        assert_eq!(
            restored.batches_into_domain(),
            session.batches_into_domain()
        );
        // The next batches drawn are the ones the original would draw:
        // replaying from a second restore of the same checkpoint matches.
        let a = restored.step_batches(50);
        assert!(a > 0);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let (_, mut session) = tiny_session(1);
        session.step_batches(3);
        let blob = SessionCheckpoint::capture(&session).to_bytes();
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x20;
            assert!(
                SessionCheckpoint::from_bytes(&bad).is_err(),
                "corruption at byte {i} accepted"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let (_, mut session) = tiny_session(1);
        session.step_batches(2);
        let blob = SessionCheckpoint::capture(&session).to_bytes();
        for keep in 0..blob.len() {
            assert!(
                SessionCheckpoint::from_bytes(&blob[..keep]).is_err(),
                "truncation at {keep} accepted"
            );
        }
    }

    fn quantized_session(
        stream_seed: u64,
        precision: Precision,
    ) -> (Arc<DomainIlScenario>, UserSession) {
        let scenario = Arc::new(DomainIlScenario::generate(
            &DatasetSpec::core50_tiny(),
            0xDA7A,
        ));
        let spec = SessionSpec {
            learner: ChameleonConfig {
                long_term_capacity: 30,
                precision,
                ..ChameleonConfig::default()
            },
            stream: StreamConfig::default(),
            learner_seed: 5,
            stream_seed,
        };
        let session = UserSession::new(9, spec, Arc::clone(&scenario), None);
        (scenario, session)
    }

    #[test]
    fn f32_spec_encodes_byte_identically_to_v1() {
        // The precision tag lives in previously-always-zero bits of the
        // quarantine word, so an unquantized spec's wire bytes must not
        // change — this pins wire/golden compatibility.
        let (_, session) = tiny_session(2);
        let blob = SessionCheckpoint::capture(&session).to_bytes();
        assert_eq!(&blob[..8], FLEET_MAGIC);
        let spec_bytes = session.spec().to_bytes();
        let (back, used) = SessionSpec::decode_prefix(&spec_bytes).expect("decode");
        assert_eq!(used, spec_bytes.len());
        assert_eq!(&back, session.spec());
        assert_eq!(back.learner.precision, Precision::F32);
    }

    #[test]
    fn quantized_checkpoint_uses_v2_magic_and_roundtrips() {
        for precision in [Precision::F16, Precision::Int8] {
            let (scenario, mut session) = quantized_session(3, precision);
            session.step_batches(17);
            let ck = SessionCheckpoint::capture(&session);
            let blob = ck.to_bytes();
            assert_eq!(&blob[..8], FLEET_MAGIC_V2, "{precision}");
            let back = SessionCheckpoint::from_bytes(&blob).expect("roundtrip");
            assert_eq!(back, ck);
            assert_eq!(back.spec.learner.precision, precision);
            // Restore rebuilds a learner whose re-capture is byte-stable.
            let restored = back.restore(scenario, None).expect("restore");
            assert_eq!(SessionCheckpoint::capture(&restored).to_bytes(), blob);
        }
    }

    #[test]
    fn unknown_precision_tag_is_rejected() {
        let (_, mut session) = tiny_session(1);
        session.step_batches(2);
        let ck = SessionCheckpoint::capture(&session);
        let mut spec_bytes = ck.spec.to_bytes();
        // The quarantine/precision word sits after 6 u32s + 3 f32s.
        let off = 9 * 4 + 1;
        spec_bytes[off] = 0x7F; // precision tag 0x7F: undefined
        let err = SessionSpec::decode_prefix(&spec_bytes).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::UnsupportedVersion));
        // High bits beyond the tag are reserved too.
        spec_bytes[off] = 0;
        spec_bytes[off + 1] = 0x01;
        let err = SessionSpec::decode_prefix(&spec_bytes).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::UnsupportedVersion));
    }

    #[test]
    fn counters_survive_the_roundtrip() {
        let (scenario, mut session) = tiny_session(8);
        session.step_batches(30);
        let before = session.learner().counters();
        assert!(before.trace.inputs > 0);
        let ck = SessionCheckpoint::capture(&session);
        let restored = ck.restore(scenario, None).expect("restore");
        assert_eq!(restored.learner().counters(), before);
        assert_eq!(restored.trace(), session.trace());
    }
}
