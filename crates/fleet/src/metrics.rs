//! Per-shard and fleet-wide operational metrics.
//!
//! Shards keep their counters locally (no shared atomics on the step path)
//! and snapshot them on request; [`FleetMetrics`] aggregates the snapshots
//! and merges every session's [`StepTrace`] so `chameleon-hw` can price a
//! whole fleet's traffic in one call.

use chameleon_core::StepTrace;

/// Counter snapshot of one shard worker.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardMetrics {
    /// Shard index within the fleet.
    pub shard: usize,
    /// Sessions currently resident in memory.
    pub sessions_resident: usize,
    /// Sessions currently evicted to checkpoint form.
    pub sessions_cold: usize,
    /// Sessions ever created on this shard.
    pub sessions_created: u64,
    /// `Step` commands processed.
    pub step_commands: u64,
    /// Stream batches actually delivered to learners.
    pub batches: u64,
    /// Budget-driven (implicit) plus explicit evictions performed.
    pub evictions: u64,
    /// Cold sessions brought back to residency.
    pub restores: u64,
    /// Requests queued to the shard but not yet answered (sampled by the
    /// engine at snapshot time).
    pub queue_depth: usize,
    /// Resident session footprint currently accounted, in bytes.
    pub resident_bytes: u64,
    /// Bytes the latent codec saves across *resident* sessions versus the
    /// nominal (unquantized) pricing — zero unless sessions run a
    /// quantized `Precision`. Sampled at snapshot time; cold sessions are
    /// not included (their footprint is not resident either).
    pub codec_bytes_saved: u64,
    /// The shard's session-memory budget, in bytes.
    pub budget_bytes: u64,
    /// Wall time spent stepping learners, in nanoseconds.
    pub step_nanos: u64,
    /// Wall time spent serializing checkpoints (evictions included).
    pub checkpoint_nanos: u64,
    /// Wall time spent restoring evicted sessions.
    pub restore_nanos: u64,
    /// Wall time spent in test-set evaluation.
    pub eval_nanos: u64,
    /// Merged operation trace of every session hosted by this shard
    /// (resident and cold alike).
    pub trace: StepTrace,
}

impl ShardMetrics {
    /// Steps per wall-clock second of learner compute on this shard (0.0
    /// before any step ran).
    pub fn steps_per_sec(&self) -> f64 {
        if self.step_nanos == 0 {
            0.0
        } else {
            self.batches as f64 / (self.step_nanos as f64 * 1e-9)
        }
    }
}

/// Aggregated snapshot of every shard in a fleet.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetMetrics {
    /// One snapshot per shard, indexed by shard id.
    pub per_shard: Vec<ShardMetrics>,
}

impl FleetMetrics {
    /// Sessions resident across all shards.
    pub fn sessions_resident(&self) -> usize {
        self.per_shard.iter().map(|s| s.sessions_resident).sum()
    }

    /// Sessions evicted to checkpoint form across all shards.
    pub fn sessions_cold(&self) -> usize {
        self.per_shard.iter().map(|s| s.sessions_cold).sum()
    }

    /// Sessions ever created across all shards.
    pub fn sessions_created(&self) -> u64 {
        self.per_shard.iter().map(|s| s.sessions_created).sum()
    }

    /// Stream batches delivered fleet-wide.
    pub fn batches(&self) -> u64 {
        self.per_shard.iter().map(|s| s.batches).sum()
    }

    /// Evictions performed fleet-wide.
    pub fn evictions(&self) -> u64 {
        self.per_shard.iter().map(|s| s.evictions).sum()
    }

    /// Restores performed fleet-wide.
    pub fn restores(&self) -> u64 {
        self.per_shard.iter().map(|s| s.restores).sum()
    }

    /// Requests in flight fleet-wide at snapshot time.
    pub fn queue_depth(&self) -> usize {
        self.per_shard.iter().map(|s| s.queue_depth).sum()
    }

    /// Bytes saved by the latent codec across all resident sessions.
    pub fn codec_bytes_saved(&self) -> u64 {
        self.per_shard.iter().map(|s| s.codec_bytes_saved).sum()
    }

    /// Nanoseconds spent stepping learners, summed across shards. By
    /// construction this equals the fleet observer's `step` span total:
    /// the shard workers feed both from one measurement.
    pub fn step_nanos(&self) -> u64 {
        self.per_shard.iter().map(|s| s.step_nanos).sum()
    }

    /// Nanoseconds spent serializing checkpoints, summed across shards.
    pub fn checkpoint_nanos(&self) -> u64 {
        self.per_shard.iter().map(|s| s.checkpoint_nanos).sum()
    }

    /// Nanoseconds spent restoring evicted sessions, summed across shards.
    pub fn restore_nanos(&self) -> u64 {
        self.per_shard.iter().map(|s| s.restore_nanos).sum()
    }

    /// Nanoseconds spent in test-set evaluation, summed across shards.
    pub fn eval_nanos(&self) -> u64 {
        self.per_shard.iter().map(|s| s.eval_nanos).sum()
    }

    /// Every session's operation trace merged into one, ready for
    /// `chameleon-hw` pricing.
    pub fn merged_trace(&self) -> StepTrace {
        let mut out = StepTrace::new();
        for shard in &self.per_shard {
            out.merge(&shard.trace);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_across_shards() {
        let mut a = ShardMetrics {
            shard: 0,
            sessions_resident: 3,
            sessions_cold: 1,
            batches: 100,
            evictions: 4,
            restores: 2,
            ..ShardMetrics::default()
        };
        a.trace.inputs = 10;
        let mut b = ShardMetrics {
            shard: 1,
            sessions_resident: 2,
            batches: 50,
            ..ShardMetrics::default()
        };
        b.trace.inputs = 5;
        let fleet = FleetMetrics {
            per_shard: vec![a, b],
        };
        assert_eq!(fleet.sessions_resident(), 5);
        assert_eq!(fleet.sessions_cold(), 1);
        assert_eq!(fleet.batches(), 150);
        assert_eq!(fleet.evictions(), 4);
        assert_eq!(fleet.restores(), 2);
        assert_eq!(fleet.merged_trace().inputs, 15);
    }

    #[test]
    fn steps_per_sec_handles_zero_time() {
        assert_eq!(ShardMetrics::default().steps_per_sec(), 0.0);
        let m = ShardMetrics {
            batches: 10,
            step_nanos: 1_000_000_000,
            ..ShardMetrics::default()
        };
        assert!((m.steps_per_sec() - 10.0).abs() < 1e-9);
    }
}
