//! The bounded ring-buffer event log.
//!
//! Events are cheap, append-only annotations ("session 7 evicted",
//! "restore failed: …") stamped with the observer's clock. The log is a
//! fixed-capacity ring: every event gets a monotonically increasing
//! sequence number, and once the ring is full the oldest record is
//! dropped and counted — so a snapshot always tells you both what it
//! holds *and* how much history it lost (`next_seq`, `dropped`).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default ring capacity an [`crate::Observer`] is built with.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// One logged event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic sequence number (0-based, never reused).
    pub seq: u64,
    /// Clock reading when the event was logged.
    pub nanos: u64,
    /// Human-readable annotation.
    pub message: String,
}

/// Point-in-time view of the log: the retained tail plus the loss
/// accounting that makes gaps explicit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventLogStats {
    /// Ring capacity.
    pub capacity: u64,
    /// Next sequence number to be assigned — i.e. total events ever
    /// logged.
    pub next_seq: u64,
    /// Events dropped off the front of the ring.
    pub dropped: u64,
    /// Retained records, oldest first.
    pub recent: Vec<EventRecord>,
}

#[derive(Debug, Default)]
struct Inner {
    ring: VecDeque<EventRecord>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, thread-safe ring of [`EventRecord`]s.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl EventLog {
    /// Creates an empty log holding at most `capacity` records. A
    /// capacity of 0 drops (and counts) every event.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Appends one event at clock reading `nanos`, evicting (and
    /// counting) the oldest record if the ring is full.
    pub fn push(&self, nanos: u64, message: String) {
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.ring.push_back(EventRecord {
            seq,
            nanos,
            message,
        });
        while inner.ring.len() > self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
    }

    /// Snapshots the retained tail and loss counters.
    pub fn snapshot(&self) -> EventLogStats {
        let Ok(inner) = self.inner.lock() else {
            return EventLogStats::default();
        };
        EventLogStats {
            capacity: self.capacity as u64,
            next_seq: inner.next_seq,
            dropped: inner.dropped,
            recent: inner.ring.iter().cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_monotonic_and_gapless() {
        let log = EventLog::new(8);
        for i in 0..5 {
            log.push(i * 10, format!("event {i}"));
        }
        let stats = log.snapshot();
        assert_eq!(stats.next_seq, 5);
        assert_eq!(stats.dropped, 0);
        let seqs: Vec<u64> = stats.recent.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let log = EventLog::new(3);
        for i in 0..10u64 {
            log.push(i, format!("e{i}"));
        }
        let stats = log.snapshot();
        assert_eq!(stats.next_seq, 10);
        assert_eq!(stats.dropped, 7);
        let seqs: Vec<u64> = stats.recent.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9], "ring keeps the newest tail");
    }

    #[test]
    fn zero_capacity_drops_everything_but_still_counts() {
        let log = EventLog::new(0);
        log.push(1, "lost".to_string());
        let stats = log.snapshot();
        assert_eq!(stats.next_seq, 1);
        assert_eq!(stats.dropped, 1);
        assert!(stats.recent.is_empty());
    }
}
