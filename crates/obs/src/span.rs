//! The span recorder: per-stage timing aggregates on an injectable
//! clock.
//!
//! A *span* is one timed unit of pipeline work. The taxonomy is closed —
//! the six [`Stage`]s cover the fleet hot path (`step`, `checkpoint`,
//! `restore`, `eval`) and the serving hot path (`encode`, `decode`) —
//! so aggregates stay fixed-size and lock-free: each stage is a block of
//! relaxed `AtomicU64`s (count / total / max / log₂ histogram), updated
//! either by an RAII [`Span`] guard around a region of code or by
//! [`Observer::record`] when the caller already measured the elapsed
//! time itself (the fleet does this so span totals reconcile *exactly*
//! with its `ShardMetrics.*_nanos` counters, with no extra clock reads
//! on the simulated hot path).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chameleon_runtime::Clock;

use crate::event::{EventLog, EventLogStats, DEFAULT_EVENT_CAPACITY};
use crate::hist::{bucket_index, LatencyHistogram, LATENCY_BUCKETS};
use crate::observation::Observation;

/// One stage of the pipeline a span can time. The set is closed so the
/// recorder can keep fixed-size lock-free aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// One training-step batch inside a shard worker.
    Step,
    /// Serialising a session to its `CHAMFLT1` checkpoint (including
    /// eviction-driven checkpoints).
    Checkpoint,
    /// Restoring an evicted session from its checkpoint.
    Restore,
    /// A full evaluation pass.
    Eval,
    /// Encoding + writing one CHAMWIRE response frame.
    Encode,
    /// Decoding one CHAMWIRE request payload.
    Decode,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 6;

    /// Every stage, in wire/display order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Step,
        Stage::Checkpoint,
        Stage::Restore,
        Stage::Eval,
        Stage::Encode,
        Stage::Decode,
    ];

    /// Stable lowercase name (`"step"`, `"checkpoint"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Step => "step",
            Stage::Checkpoint => "checkpoint",
            Stage::Restore => "restore",
            Stage::Eval => "eval",
            Stage::Encode => "encode",
            Stage::Decode => "decode",
        }
    }

    /// Parses a [`Stage::name`] back into a stage.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Stable wire id (the index in [`Stage::ALL`]).
    #[must_use]
    pub fn id(self) -> u8 {
        self as u8
    }

    /// Parses a wire id back into a stage.
    #[must_use]
    pub fn from_id(id: u8) -> Option<Stage> {
        Stage::ALL.get(usize::from(id)).copied()
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Plain-struct aggregate of every span recorded for one stage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Completed spans.
    pub count: u64,
    /// Sum of elapsed nanoseconds across all spans.
    pub total_nanos: u64,
    /// Longest single span, in nanoseconds.
    pub max_nanos: u64,
    /// Log₂-µs distribution of span durations.
    pub histogram: LatencyHistogram,
}

impl StageStats {
    /// Mean span duration in nanoseconds (0 when no spans completed).
    #[must_use]
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.count).unwrap_or(0)
    }
}

/// Lock-free per-stage aggregate block.
#[derive(Debug)]
struct StageCell {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl StageCell {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StageStats {
        let mut histogram = LatencyHistogram::default();
        for (mine, theirs) in histogram.buckets.iter_mut().zip(self.buckets.iter()) {
            *mine = theirs.load(Ordering::Relaxed);
        }
        StageStats {
            count: self.count.load(Ordering::Relaxed),
            total_nanos: self.total_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
            histogram,
        }
    }
}

/// The process-wide span recorder + event log, shared by `Arc` across
/// shard workers, connection workers, and the engine thread.
///
/// All span updates are relaxed atomics; the event log is the only
/// mutex, and it is off the hot path.
pub struct Observer {
    cells: [StageCell; Stage::COUNT],
    events: EventLog,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("spans", &self.snapshot_spans())
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl Observer {
    /// Creates an observer timing spans on `clock`, with the default
    /// event-log capacity.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self::with_event_capacity(clock, DEFAULT_EVENT_CAPACITY)
    }

    /// Creates an observer with an explicit event-log capacity.
    pub fn with_event_capacity(clock: Arc<dyn Clock>, capacity: usize) -> Self {
        Self {
            cells: std::array::from_fn(|_| StageCell::new()),
            events: EventLog::new(capacity),
            clock,
        }
    }

    /// The clock spans and events are stamped with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Records one completed span whose elapsed time the caller already
    /// measured. Use this (rather than [`Observer::start`]) when the
    /// surrounding code takes its own clock readings, so the span total
    /// and the caller's own counter see the *same* nanoseconds.
    pub fn record(&self, stage: Stage, nanos: u64) {
        self.cells[stage as usize].record(nanos);
    }

    /// Opens a span on `stage`; it records itself when dropped (or via
    /// [`Span::finish`]).
    pub fn start(&self, stage: Stage) -> Span<'_> {
        Span {
            observer: self,
            stage,
            started_nanos: self.clock.now_nanos(),
            finished: false,
        }
    }

    /// Appends an event to the ring log, stamped with the observer's
    /// clock.
    pub fn event(&self, message: impl Into<String>) {
        self.events.push(self.clock.now_nanos(), message.into());
    }

    /// Aggregate for a single stage.
    pub fn stage_stats(&self, stage: Stage) -> StageStats {
        self.cells[stage as usize].snapshot()
    }

    /// Aggregates for every stage, in [`Stage::ALL`] order.
    pub fn snapshot_spans(&self) -> Vec<(Stage, StageStats)> {
        Stage::ALL
            .into_iter()
            .map(|stage| (stage, self.stage_stats(stage)))
            .collect()
    }

    /// Snapshot of the event log.
    pub fn snapshot_events(&self) -> EventLogStats {
        self.events.snapshot()
    }

    /// A full [`Observation`] of this observer: span aggregates plus the
    /// event log, with an empty counter section for the caller to fill
    /// (the serving layer merges `ServeCounters` / `FleetMetrics` /
    /// `StepTrace` in).
    pub fn observe(&self) -> Observation {
        Observation {
            spans: self.snapshot_spans(),
            events: self.snapshot_events(),
            counters: Vec::new(),
        }
    }
}

/// An open span; records into its [`Observer`] when dropped.
pub struct Span<'a> {
    observer: &'a Observer,
    stage: Stage,
    started_nanos: u64,
    finished: bool,
}

impl Span<'_> {
    /// Closes the span now, returning the elapsed nanoseconds it
    /// recorded.
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        if self.finished {
            return 0;
        }
        self.finished = true;
        let elapsed = self
            .observer
            .clock
            .now_nanos()
            .saturating_sub(self.started_nanos);
        self.observer.record(self.stage, elapsed);
        elapsed
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// Opens an RAII span on an [`Observer`] — `span!(observer, "step")`
/// or `span!(observer, Stage::Step)`. The span records itself when the
/// returned guard drops.
///
/// # Panics
///
/// Panics if a string stage name is not one of the six in the taxonomy.
#[macro_export]
macro_rules! span {
    ($observer:expr, $stage:literal) => {
        $observer.start($crate::Stage::from_name($stage).expect("unknown span stage name"))
    };
    ($observer:expr, $stage:expr) => {
        $observer.start($stage)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_runtime::VirtualClock;

    fn observer(tick: u64) -> Observer {
        Observer::new(VirtualClock::shared(tick))
    }

    #[test]
    fn stage_names_roundtrip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
            assert_eq!(Stage::from_id(stage.id()), Some(stage));
        }
        assert_eq!(Stage::from_name("nope"), None);
        assert_eq!(Stage::from_id(99), None);
    }

    #[test]
    fn spans_on_a_virtual_clock_aggregate_deterministically() {
        // Auto-tick 1 µs: every clock read advances time by exactly
        // 1000 ns, so each start/stop pair spans exactly one tick and
        // the aggregates are fully determined.
        let obs = observer(1_000);
        for _ in 0..5 {
            let span = obs.start(Stage::Step);
            span.finish();
        }
        let stats = obs.stage_stats(Stage::Step);
        assert_eq!(stats.count, 5);
        assert_eq!(stats.total_nanos, 5_000);
        assert_eq!(stats.max_nanos, 1_000);
        assert_eq!(stats.mean_nanos(), 1_000);
        assert_eq!(stats.histogram.buckets[0], 5, "1 µs spans → bucket 0");

        // A second observer on a fresh virtual clock reproduces the
        // exact same aggregates.
        let twin = observer(1_000);
        for _ in 0..5 {
            twin.start(Stage::Step).finish();
        }
        assert_eq!(twin.stage_stats(Stage::Step), stats);
    }

    #[test]
    fn drop_records_the_span_once() {
        let obs = observer(1_000);
        {
            let _guard = obs.start(Stage::Eval);
        }
        let span = obs.start(Stage::Eval);
        assert_eq!(span.finish(), 1_000);
        let stats = obs.stage_stats(Stage::Eval);
        assert_eq!(stats.count, 2, "finish + drop each record exactly once");
    }

    #[test]
    fn span_macro_accepts_names_and_stages() {
        let obs = observer(1_000);
        span!(obs, "decode").finish();
        span!(obs, Stage::Decode).finish();
        assert_eq!(obs.stage_stats(Stage::Decode).count, 2);
    }

    #[test]
    fn direct_record_takes_the_callers_nanos_verbatim() {
        let obs = observer(1_000);
        obs.record(Stage::Checkpoint, 123);
        obs.record(Stage::Checkpoint, 77);
        let stats = obs.stage_stats(Stage::Checkpoint);
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total_nanos, 200);
        assert_eq!(stats.max_nanos, 123);
    }

    #[test]
    fn events_are_stamped_with_the_injected_clock() {
        let obs = observer(500);
        obs.event("first");
        obs.event("second");
        let events = obs.snapshot_events();
        assert_eq!(events.next_seq, 2);
        assert_eq!(events.recent[0].nanos, 500);
        assert_eq!(events.recent[1].nanos, 1_000);
    }

    #[test]
    fn observe_carries_spans_and_events() {
        let obs = observer(1_000);
        obs.start(Stage::Restore).finish();
        obs.event("restored");
        let observation = obs.observe();
        assert_eq!(observation.spans.len(), Stage::COUNT);
        assert_eq!(observation.spans[2].0, Stage::Restore);
        assert_eq!(observation.spans[2].1.count, 1);
        assert_eq!(observation.events.next_seq, 1);
        assert!(observation.counters.is_empty());
    }
}
