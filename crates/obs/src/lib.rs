//! `chameleon-obs` — the std-only observability subsystem.
//!
//! The paper's evaluation is latency/energy pricing of every pipeline
//! stage on edge platforms; this crate is the repo's runtime counterpart
//! to that table. It unifies three previously fragmented telemetry
//! sources (serve counters, fleet metrics, step traces) behind one
//! vocabulary:
//!
//! * [`Observer`] — a lock-light span recorder: six fixed [`Stage`]s
//!   (`step`/`checkpoint`/`restore`/`eval`/`encode`/`decode`), each
//!   aggregated as relaxed atomics (count / total / max / log₂-µs
//!   [`LatencyHistogram`]). Spans are opened with the [`span!`] macro or
//!   [`Observer::start`] against the injectable
//!   [`chameleon_runtime::Clock`] — on a `VirtualClock` the aggregates
//!   are bit-for-bit deterministic — or fed pre-measured elapsed time
//!   via [`Observer::record`] so they reconcile exactly with existing
//!   counters.
//! * [`EventLog`] — a bounded ring of annotated events with monotonic
//!   sequence numbers and a drop counter, so history loss is explicit.
//! * [`Observation`] — the single snapshot type carried over the wire
//!   (`Request::Observe` in `chameleon-serve`) and printed by
//!   `chameleon stats`: span aggregates + event tail + a flat list of
//!   named counters the embedding layer fills in.
//! * [`expose`] — a Prometheus-style text exposition of an
//!   [`Observation`].
//!
//! # Example
//!
//! ```
//! use chameleon_obs::{span, Observer, Stage};
//! use chameleon_runtime::VirtualClock;
//!
//! let observer = Observer::new(VirtualClock::shared(1_000));
//! {
//!     let _span = span!(observer, "step"); // records on drop
//! }
//! observer.record(Stage::Eval, 2_500); // pre-measured nanos
//! let stats = observer.stage_stats(Stage::Step);
//! assert_eq!((stats.count, stats.total_nanos), (1, 1_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod observation;
mod span;

pub use event::{EventLog, EventLogStats, EventRecord, DEFAULT_EVENT_CAPACITY};
pub use hist::{bucket_index, bucket_upper_us, LatencyHistogram, LATENCY_BUCKETS};
pub use observation::{expose, Observation};
pub use span::{Observer, Span, Stage, StageStats};
