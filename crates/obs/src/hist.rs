//! The shared log₂-microsecond latency histogram.
//!
//! One bucketing rule serves both the serving layer's end-to-end request
//! latencies and the per-stage span aggregates: bucket `i` covers
//! `[2^i, 2^(i+1))` µs, with bucket 0 widened to `[0, 2)` µs and the
//! last bucket open-ended (the Prometheus `le="+Inf"` analog).

use std::time::Duration;

/// Number of histogram buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` microseconds; bucket 0 covers `[0, 2)` µs and the
/// last bucket is an open-ended catch-all from `2^19` µs ≈ 0.5 s up.
pub const LATENCY_BUCKETS: usize = 20;

/// Bucket index for one observation of `nanos` nanoseconds:
/// `floor(log2(µs))`, clamped so `< 2 µs` lands in bucket 0 and
/// everything from `2^19` µs up lands in the catch-all.
#[must_use]
pub fn bucket_index(nanos: u64) -> usize {
    let micros = nanos / 1_000;
    if micros < 2 {
        return 0;
    }
    (63 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
}

/// Exclusive upper bound, in µs, of bucket `index` — `2^(index+1)` for
/// bounded buckets, [`u64::MAX`] for the open-ended catch-all.
#[must_use]
pub fn bucket_upper_us(index: usize) -> u64 {
    if index >= LATENCY_BUCKETS - 1 {
        u64::MAX
    } else {
        2u64 << index
    }
}

/// A power-of-two-microsecond latency histogram (bucket `i` covers
/// `[2^i, 2^(i+1))` µs, bucket 0 is `< 2 µs`, the last bucket absorbs
/// everything from `2^19 µs` ≈ 0.5 s up).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Counts per bucket.
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Records one observation, in nanoseconds.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.buckets[bucket_index(nanos)] += 1;
    }

    /// Records one observation.
    pub fn record(&mut self, elapsed: Duration) {
        self.record_nanos(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), or 0 when empty. Bucket resolution, not exact;
    /// a quantile landing in the open-ended catch-all reports
    /// [`u64::MAX`].
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return bucket_upper_us(i);
            }
        }
        bucket_upper_us(LATENCY_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let mut h = LatencyHistogram::default();
        h.record_nanos(500); // <1 µs → bucket 0
        h.record_nanos(1_000); // 1 µs → bucket 0 (docs: bucket 0 is < 2 µs)
        h.record_nanos(3_000); // 3 µs → bucket 1 ([2, 4) µs)
        h.record_nanos(1_000_000); // 1 ms → bucket 9 ([512, 1024) µs)
        h.record_nanos(u64::MAX); // clamped to the catch-all
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.buckets[LATENCY_BUCKETS - 1], 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn exact_powers_of_two_open_their_own_bucket() {
        // Regression for the off-by-one: bucket `i` must cover
        // [2^i, 2^(i+1)) µs, so an observation of exactly 2^i µs opens
        // bucket i — the pre-fix code put it one bucket higher.
        for i in 1..LATENCY_BUCKETS - 1 {
            let mut h = LatencyHistogram::default();
            h.record_nanos((1u64 << i) * 1_000); // exactly 2^i µs
            assert_eq!(h.buckets[i], 1, "2^{i} µs must open bucket {i}");
            h.record_nanos(((1u64 << (i + 1)) - 1) * 1_000); // top of the bucket
            assert_eq!(
                h.buckets[i],
                2,
                "(2^{} - 1) µs must stay in bucket {i}",
                i + 1
            );
        }
    }

    #[test]
    fn zero_and_sub_two_micro_observations_land_in_bucket_zero() {
        let mut h = LatencyHistogram::default();
        h.record_nanos(0);
        h.record_nanos(1);
        h.record_nanos(999);
        h.record_nanos(1_999); // 1 µs after integer division
        assert_eq!(h.buckets[0], 4);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn u64_max_lands_in_the_catch_all() {
        let mut h = LatencyHistogram::default();
        h.record_nanos(u64::MAX);
        h.record(Duration::from_secs(u64::MAX)); // saturates, still catch-all
        assert_eq!(h.buckets[LATENCY_BUCKETS - 1], 2);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile_upper_us(0.5), 0);
        for _ in 0..98 {
            h.record_nanos(2_000); // bucket 1 ([2, 4) µs)
        }
        h.record_nanos(40_000_000); // 40 ms → bucket 15 ([32768, 65536) µs)
        h.record_nanos(40_000_000);
        assert_eq!(h.quantile_upper_us(0.5), 4);
        assert_eq!(h.quantile_upper_us(0.999), 65_536);
    }

    #[test]
    fn catch_all_quantile_is_open_ended() {
        let mut h = LatencyHistogram::default();
        h.record_nanos(u64::MAX);
        assert_eq!(h.quantile_upper_us(0.5), u64::MAX);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record_nanos(1_000);
        b.record_nanos(1_000);
        b.record_nanos(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    fn from_counts(counts: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for (bucket, &count) in h.buckets.iter_mut().zip(counts) {
            *bucket = count;
        }
        h
    }

    proptest! {
        #[test]
        fn quantile_upper_is_monotone_in_q(
            counts in prop::collection::vec(0u64..1_000, LATENCY_BUCKETS),
            qa in 0.0f64..1.0,
            qb in 0.0f64..1.0,
        ) {
            let h = from_counts(&counts);
            let (q1, q2) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            prop_assert!(h.quantile_upper_us(q1) <= h.quantile_upper_us(q2));
        }

        #[test]
        fn quantile_upper_is_merge_invariant(
            counts_a in prop::collection::vec(0u64..1_000, LATENCY_BUCKETS),
            counts_b in prop::collection::vec(0u64..1_000, LATENCY_BUCKETS),
            q in 0.0f64..1.0,
        ) {
            let a = from_counts(&counts_a);
            let b = from_counts(&counts_b);
            // Merging can only move a quantile between the two inputs'
            // values, never outside their envelope.
            let mut merged = a.clone();
            merged.merge(&b);
            let (qa, qb) = (a.quantile_upper_us(q), b.quantile_upper_us(q));
            let qm = merged.quantile_upper_us(q);
            // Empty inputs report 0, which is below any real bucket —
            // ignore them on the lower edge.
            let lo = match (a.count(), b.count()) {
                (0, _) => qb.min(qm),
                (_, 0) => qa.min(qm),
                _ => qa.min(qb),
            };
            prop_assert!(qm >= lo, "merged {qm} below both inputs {qa}/{qb}");
            prop_assert!(qm <= qa.max(qb), "merged {qm} above both inputs {qa}/{qb}");
        }

        #[test]
        fn every_observation_lands_in_exactly_one_bucket(nanos in any::<u64>()) {
            let mut h = LatencyHistogram::default();
            h.record_nanos(nanos);
            prop_assert_eq!(h.count(), 1);
            let index = bucket_index(nanos);
            prop_assert_eq!(h.buckets[index], 1);
            // The docs' bucket contract, checked directly.
            let micros = nanos / 1_000;
            if index == 0 {
                prop_assert!(micros < 2);
            } else if index < LATENCY_BUCKETS - 1 {
                prop_assert!(micros >= 1 << index);
                prop_assert!(micros < 1 << (index + 1));
            } else {
                prop_assert!(micros >= 1 << (LATENCY_BUCKETS - 1));
            }
        }
    }
}
