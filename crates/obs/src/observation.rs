//! The unified [`Observation`] snapshot and its Prometheus-style text
//! exposition.

use crate::event::EventLogStats;
use crate::hist::{bucket_upper_us, LATENCY_BUCKETS};
use crate::span::{Stage, StageStats};

/// One self-contained snapshot of everything observable: per-stage span
/// aggregates, the event-log tail, and a flat list of named counters
/// the embedding layer fills in (the serving layer merges
/// `ServeCounters`, `FleetMetrics`, and `StepTrace` here, so one
/// `Observe` round-trip answers every "where did the time go?"
/// question).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Observation {
    /// Span aggregates, one entry per stage in [`Stage::ALL`] order.
    pub spans: Vec<(Stage, StageStats)>,
    /// Event-log tail plus drop accounting.
    pub events: EventLogStats,
    /// Named scalar counters (`"fleet.batches"`, `"serve.frames_in"`,
    /// `"trace.inputs"`, …), in insertion order.
    pub counters: Vec<(String, u64)>,
}

impl Observation {
    /// Looks up the aggregate for one stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> Option<&StageStats> {
        self.spans
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, stats)| stats)
    }

    /// Looks up a named counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Appends a named counter.
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Folds another node's observation into this one, producing a
    /// fleet-wide view: per-stage span counts, totals, and histogram
    /// buckets are summed (max-of-max for the worst single span), named
    /// counters are summed by name (counters only `other` has are
    /// appended), and the event tails are concatenated with their drop
    /// accounting added. The routing tier uses this to answer one
    /// `Observe` with the aggregate of every live backend.
    pub fn merge(&mut self, other: &Observation) {
        for (stage, theirs) in &other.spans {
            match self.spans.iter_mut().find(|(s, _)| s == stage) {
                Some((_, ours)) => {
                    ours.count += theirs.count;
                    ours.total_nanos += theirs.total_nanos;
                    ours.max_nanos = ours.max_nanos.max(theirs.max_nanos);
                    for (mine, their) in ours
                        .histogram
                        .buckets
                        .iter_mut()
                        .zip(theirs.histogram.buckets.iter())
                    {
                        *mine += their;
                    }
                }
                None => self.spans.push((*stage, theirs.clone())),
            }
        }
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += value,
                None => self.counters.push((name.clone(), *value)),
            }
        }
        self.events.capacity = self.events.capacity.max(other.events.capacity);
        self.events.next_seq += other.events.next_seq;
        self.events.dropped += other.events.dropped;
        self.events
            .recent
            .extend(other.events.recent.iter().cloned());
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders an [`Observation`] in the Prometheus text exposition style:
/// `# HELP`/`# TYPE` headers, `{stage="…"}` labels, and cumulative
/// `_bucket{le="…"}` histogram lines ending in `le="+Inf"`.
#[must_use]
pub fn expose(observation: &Observation) -> String {
    let mut out = String::new();

    out.push_str("# HELP chameleon_span_count Completed spans per pipeline stage.\n");
    out.push_str("# TYPE chameleon_span_count counter\n");
    for (stage, stats) in &observation.spans {
        out.push_str(&format!(
            "chameleon_span_count{{stage=\"{stage}\"}} {}\n",
            stats.count
        ));
    }

    out.push_str("# HELP chameleon_span_nanos_total Summed span duration per stage.\n");
    out.push_str("# TYPE chameleon_span_nanos_total counter\n");
    for (stage, stats) in &observation.spans {
        out.push_str(&format!(
            "chameleon_span_nanos_total{{stage=\"{stage}\"}} {}\n",
            stats.total_nanos
        ));
    }

    out.push_str("# HELP chameleon_span_nanos_max Longest single span per stage.\n");
    out.push_str("# TYPE chameleon_span_nanos_max gauge\n");
    for (stage, stats) in &observation.spans {
        out.push_str(&format!(
            "chameleon_span_nanos_max{{stage=\"{stage}\"}} {}\n",
            stats.max_nanos
        ));
    }

    out.push_str("# HELP chameleon_span_us Span duration distribution (log2 µs buckets).\n");
    out.push_str("# TYPE chameleon_span_us histogram\n");
    for (stage, stats) in &observation.spans {
        let mut cumulative = 0u64;
        for (i, &count) in stats.histogram.buckets.iter().enumerate() {
            cumulative += count;
            let le = if i == LATENCY_BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                bucket_upper_us(i).to_string()
            };
            out.push_str(&format!(
                "chameleon_span_us_bucket{{stage=\"{stage}\",le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "chameleon_span_us_count{{stage=\"{stage}\"}} {cumulative}\n"
        ));
    }

    out.push_str("# HELP chameleon_events_total Events ever logged (= next sequence number).\n");
    out.push_str("# TYPE chameleon_events_total counter\n");
    out.push_str(&format!(
        "chameleon_events_total {}\n",
        observation.events.next_seq
    ));
    out.push_str("# HELP chameleon_events_dropped_total Events dropped off the ring.\n");
    out.push_str("# TYPE chameleon_events_dropped_total counter\n");
    out.push_str(&format!(
        "chameleon_events_dropped_total {}\n",
        observation.events.dropped
    ));

    if !observation.counters.is_empty() {
        out.push_str("# HELP chameleon_counter Embedded layer counters, re-exported.\n");
        for (name, value) in &observation.counters {
            out.push_str(&format!("chameleon_{} {value}\n", sanitize(name)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Observer;
    use chameleon_runtime::VirtualClock;

    fn observation() -> Observation {
        let obs = Observer::new(VirtualClock::shared(1_000));
        obs.start(Stage::Step).finish();
        obs.start(Stage::Step).finish();
        obs.event("hello");
        let mut observation = obs.observe();
        observation.push_counter("fleet.batches", 7);
        observation
    }

    #[test]
    fn lookup_helpers_find_stages_and_counters() {
        let o = observation();
        assert_eq!(o.stage(Stage::Step).map(|s| s.count), Some(2));
        assert_eq!(o.stage(Stage::Eval).map(|s| s.count), Some(0));
        assert_eq!(o.counter("fleet.batches"), Some(7));
        assert_eq!(o.counter("missing"), None);
    }

    #[test]
    fn merge_sums_spans_counters_and_event_accounting() {
        let mut a = observation();
        let b = observation();
        a.merge(&b);
        assert_eq!(a.stage(Stage::Step).map(|s| s.count), Some(4));
        assert_eq!(
            a.stage(Stage::Step).map(|s| s.total_nanos),
            Some(2 * b.stage(Stage::Step).unwrap().total_nanos)
        );
        // max-of-max, not a sum.
        assert_eq!(
            a.stage(Stage::Step).map(|s| s.max_nanos),
            b.stage(Stage::Step).map(|s| s.max_nanos)
        );
        assert_eq!(a.counter("fleet.batches"), Some(14));
        assert_eq!(a.events.next_seq, 2);
        assert_eq!(a.events.recent.len(), 2);
        // A counter only one side has is carried over, not lost.
        let mut c = Observation::default();
        c.push_counter("route.failovers", 3);
        a.merge(&c);
        assert_eq!(a.counter("route.failovers"), Some(3));
    }

    #[test]
    fn exposition_is_prometheus_shaped() {
        let text = expose(&observation());
        assert!(text.contains("# TYPE chameleon_span_count counter"));
        assert!(text.contains("chameleon_span_count{stage=\"step\"} 2"));
        assert!(text.contains("chameleon_span_nanos_total{stage=\"step\"} 2000"));
        assert!(text.contains("chameleon_span_us_bucket{stage=\"step\",le=\"2\"} 2"));
        assert!(text.contains("chameleon_span_us_bucket{stage=\"step\",le=\"+Inf\"} 2"));
        assert!(text.contains("chameleon_span_us_count{stage=\"decode\"} 0"));
        assert!(text.contains("chameleon_events_total 1"));
        assert!(text.contains("chameleon_events_dropped_total 0"));
        assert!(text.contains("chameleon_fleet_batches 7"));
        // Every sample line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<u64>().is_ok(), "bad sample line: {line}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let obs = Observer::new(VirtualClock::shared(1_000));
        obs.record(Stage::Decode, 1_000); // bucket 0
        obs.record(Stage::Decode, 3_000); // bucket 1
        let text = expose(&obs.observe());
        assert!(text.contains("chameleon_span_us_bucket{stage=\"decode\",le=\"2\"} 1"));
        assert!(text.contains("chameleon_span_us_bucket{stage=\"decode\",le=\"4\"} 2"));
        assert!(text.contains("chameleon_span_us_count{stage=\"decode\"} 2"));
    }
}
