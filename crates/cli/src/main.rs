//! `chameleon` — command-line interface to the Chameleon reproduction.
//!
//! ```text
//! chameleon info
//! chameleon train    --dataset core50 --method chameleon --buffer 100 --runs 3
//! chameleon train    --dataset core50-tiny --method chameleon --save model.ckpt
//! chameleon evaluate --dataset core50-tiny --load model.ckpt
//! chameleon price    --method chameleon --buffer 100
//! chameleon resources --st-kb 320 --array 32x32
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `chameleon help` for usage");
            ExitCode::FAILURE
        }
    }
}
