//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command-line options: `--key value` pairs plus bare flags.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Options {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Options {
    /// Parses everything after the subcommand. A token starting with `--`
    /// consumes the next token as its value unless that token is itself an
    /// option (then it is a bare flag).
    ///
    /// # Errors
    ///
    /// Returns an error for positional tokens (this CLI has none).
    pub fn parse(tokens: &[String]) -> Result<Self, String> {
        let mut options = Self::default();
        let mut i = 0;
        while i < tokens.len() {
            let token = &tokens[i];
            let Some(key) = token.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{token}`"));
            };
            if key.is_empty() {
                return Err("empty option name `--`".to_string());
            }
            match tokens.get(i + 1) {
                Some(next) if !next.starts_with("--") => {
                    options.values.insert(key.to_string(), next.clone());
                    i += 2;
                }
                _ => {
                    options.flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(options)
    }

    /// String value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// String value of `key` or a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parsed numeric value of `key` or a default.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse.
    pub fn get_parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{key}")),
        }
    }

    /// Whether a bare flag was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Rejects unknown option names, listing the valid ones.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first unknown option.
    pub fn expect_only(&self, valid: &[&str]) -> Result<(), String> {
        for key in self.values.keys().chain(self.flags.iter()) {
            if !valid.contains(&key.as_str()) {
                return Err(format!(
                    "unknown option --{key}; valid options: {}",
                    valid
                        .iter()
                        .map(|v| format!("--{v}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_key_values_and_flags() {
        let o = Options::parse(&toks(&["--dataset", "core50", "--skewed", "--runs", "3"]))
            .expect("valid");
        assert_eq!(o.get("dataset"), Some("core50"));
        assert!(o.has_flag("skewed"));
        assert_eq!(o.get_parsed_or("runs", 1usize).expect("number"), 3);
    }

    #[test]
    fn defaults_apply_when_missing() {
        let o = Options::parse(&toks(&[])).expect("valid");
        assert_eq!(o.get_or("method", "chameleon"), "chameleon");
        assert_eq!(o.get_parsed_or("buffer", 100usize).expect("default"), 100);
        assert!(!o.has_flag("skewed"));
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(Options::parse(&toks(&["core50"])).is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        let o = Options::parse(&toks(&["--runs", "many"])).expect("parse ok");
        assert!(o.get_parsed_or("runs", 1usize).is_err());
    }

    #[test]
    fn expect_only_flags_unknown_options() {
        let o = Options::parse(&toks(&["--dataset", "core50", "--bogus", "x"])).expect("ok");
        assert!(o.expect_only(&["dataset"]).is_err());
        assert!(o.expect_only(&["dataset", "bogus"]).is_ok());
    }

    #[test]
    fn flag_followed_by_option_is_a_flag() {
        let o = Options::parse(&toks(&["--skewed", "--runs", "2"])).expect("ok");
        assert!(o.has_flag("skewed"));
        assert_eq!(o.get_parsed_or("runs", 0usize).expect("number"), 2);
    }
}
