//! Subcommand implementations.

use std::fs::File;
use std::io::BufWriter;

use chameleon_balance::{BalanceConfig, TrafficShape};
use chameleon_core::{
    Chameleon, ChameleonConfig, Der, DerConfig, Er, EvalReport, EwcConfig, EwcPlusPlus, Finetune,
    Gss, GssConfig, Joint, JointConfig, LatentReplay, Lwf, LwfConfig, ModelConfig, Precision, Slda,
    SldaConfig, Strategy, Trainer,
};
use chameleon_faults::{FaultInjector, FaultPlan};
use chameleon_fleet::{
    FleetConfig, FleetEngine, SessionCommand, SessionEventKind, SessionSpec as FleetSessionSpec,
};
use chameleon_hw::{Device, JetsonNano, NominalModel, SystolicAccelerator, Workload, Zcu102};
use chameleon_route::{Router, RouterConfig};
use chameleon_serve::wire::StatsSnapshot;
use chameleon_serve::{Connection, ServeConfig, ServeCounters, Server};
use chameleon_stream::{DatasetSpec, DomainIlScenario, PreferenceProfile, StreamConfig};

use crate::args::Options;

const HELP: &str = "\
chameleon — dual memory replay for online continual learning (DATE 2023 reproduction)

USAGE:
  chameleon <command> [options]

COMMANDS:
  info                          list datasets, methods, and devices
  train                         train a strategy on a synthetic benchmark
    --dataset <name>            core50 | openloris | core50-tiny |
                                openloris-tiny | openloris-factored
    --method <name>             see `chameleon info`       [default: chameleon]
    --buffer <n>                replay buffer size         [default: 100]
    --runs <n>                  repetitions (mean ± std)   [default: 1]
    --seed <n>                  base seed                  [default: 1]
    --skewed                    user-preference-skewed stream
    --save <path>               save a checkpoint (chameleon, runs = 1 only)
    --precision <p>             latent storage codec: f32 | f16 | int8
                                (chameleon only)           [default: f32]
  evaluate                      evaluate a saved checkpoint
    --dataset <name>  --load <path>  [--buffer <n>]
  sweep                         one method across several buffer sizes
    --dataset <name>  --method <name>  --buffers <n,n,...>  [--runs <n>]
  price                         per-image cost on the three device models
    --method <name>  [--buffer <n>]
  resources                     ZCU102 utilization of an accelerator config
    [--st-kb <n>] [--array <RxC>]
  faults                        train under seeded fault injection and report
                                resilience counters
    --rate <r>                  DRAM bit-flips per bit per sample [default: 1e-5]
    [--dataset <name>] [--method <name>] [--buffer <n>] [--seed <n>]
    [--fault-seed <n>] [--no-quarantine] [--precision <p>]
    (quarantine/precision: chameleon only)
  fleet                         run many per-user sessions on a sharded engine
    --sessions <n>              concurrent user sessions   [default: 8]
    --shards <n>                worker shards (threads)    [default: 2]
    --budget-mb <n>             per-shard resident session-memory budget
    --store-dir <path>          durable session store: spill evictions to
                                disk and recover sealed sessions on start
    --balance <policy>          load-aware rebalancing via online session
                                migration: periodic[:<every>] | steal[:<depth>]
    [--dataset <name>] [--buffer <n>] [--seed <n>] [--queue <n>]
    [--step-batches <n>] [--rate <r>] [--fault-seed <n>] [--json]
    [--precision <p>]           quantize stored latents (f32 | f16 | int8)
  serve                         serve a fleet engine over TCP (CHAMWIRE)
    --addr <host:port>          bind address               [default: 127.0.0.1:0]
    --duration <secs>           run this long, then drain and exit;
                                omitted: run until stdin reaches EOF
    [--dataset <name>] [--shards <n>] [--workers <n>] [--queue <n>]
    [--budget-mb <n>] [--seed <n>] [--rate <r>] [--fault-seed <n>]
    [--store-dir <path>] [--balance <policy>] [--json]
  route                         front CHAMWIRE backends with a routing proxy:
                                rendezvous session placement, health probes,
                                live handoff on drain, shadow failover on death
    --backends <a:p,a:p,...>    backend server addresses (required)
    --addr <host:port>          bind address               [default: 127.0.0.1:0]
    --duration <secs>           run this long, then exit;
                                omitted: run until stdin reaches EOF
    [--state-dir <path>]        persist pins + shadow checkpoints to a
                                CHAMRTE1 log; a restarted router recovers
                                placement and failover state from it
    [--workers <n>] [--probe-interval-ms <n>] [--degraded-after <n>]
    [--dead-after <n>] [--salt <n>] [--json]
  loadgen                       drive a CHAMWIRE server with client traffic
    --addr <a:p[,a:p,...]>      target server(s); connections round-robin
                                over the list; omitted: a server is started
                                in-process (loopback self-serve)
    --connections <n>           concurrent client connections  [default: 2]
    --sessions <n>              sessions to create and run     [default: 4]
    --shape <spec>              seeded skewed-traffic shape for step order:
                                uniform | zipf:<s> | burst | diurnal | flood
    [--balance <policy>]        rebalance the self-served fleet (see fleet)
    [--slice <n>] [--dataset <name>] [--shards <n>] [--workers <n>]
    [--queue <n>] [--buffer <n>] [--seed <n>] [--precision <p>] [--json]
  stats                         observability snapshot of a running server
    --addr <host:port>          target CHAMWIRE server (required)
    --watch                     poll repeatedly instead of once
    --interval <ms>             delay between watch polls      [default: 1000]
    --count <n>                 stop after n polls (watch mode; 0 = forever)
    [--json]                    one JSON document per poll
    [--expo]                    Prometheus text exposition per poll
  simtest                       deterministic simulation soak + golden corpus
    --seeds <n>                 scheduler seeds to sweep       [default: 25]
    --start-seed <n>            first seed of the sweep        [default: 0]
    --budget-secs <s>           wall-clock budget for the sweep
    --replay <seed>             re-check one seed and print its outcome
    --check-golden              re-derive the golden corpus and fail on drift
    --regen-golden              rewrite the golden corpus files
    --crash-seeds <n>           crash-schedule sweep: kill a store-attached
                                engine at every eviction boundary per seed,
                                recover, assert bit-identical outcomes
    --crash-replay <seed>       re-run one crash-schedule seed
    [--crash-start-seed <n>]    first crash seed          [default: 0]
    --route-seeds <n>           multi-node route sweep: seeded handoff/kill
                                schedules over a simulated cluster, assert
                                replay determinism and placement invisibility
    --route-replay <seed>       re-run one route seed and print its outcome
    [--route-start-seed <n>]    first route seed          [default: 0]
    --balance-seeds <n>         migration-schedule sweep: inject online
                                session migrations at seeded op boundaries,
                                assert outcomes match an unmigrated run
    --balance-replay <seed>     re-run one balance seed and print its outcome
    [--balance-start-seed <n>]  first balance seed        [default: 0]
    --quantized-seeds <n>       quantized (int8) sweep: re-run the lifecycle
                                explorer with packed latents, assert replay
                                determinism and shard-count invariance
    [--quantized-start-seed <n>] first quantized seed     [default: 0]
    [--golden-dir <path>]       corpus location   [default: tests/golden]
  help                          show this message
";

/// Dispatches `argv` to a subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print!("{HELP}");
            Ok(())
        }
        Some("info") => info(),
        Some("train") => train(&Options::parse(&argv[1..])?),
        Some("evaluate") => evaluate(&Options::parse(&argv[1..])?),
        Some("sweep") => sweep(&Options::parse(&argv[1..])?),
        Some("price") => price(&Options::parse(&argv[1..])?),
        Some("resources") => resources(&Options::parse(&argv[1..])?),
        Some("faults") => faults(&Options::parse(&argv[1..])?),
        Some("fleet") => fleet(&Options::parse(&argv[1..])?),
        Some("serve") => serve(&Options::parse(&argv[1..])?),
        Some("route") => route(&Options::parse(&argv[1..])?),
        Some("loadgen") => loadgen(&Options::parse(&argv[1..])?),
        Some("stats") => stats(&Options::parse(&argv[1..])?),
        Some("simtest") => simtest(&Options::parse(&argv[1..])?),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

fn dataset(name: &str) -> Result<DatasetSpec, String> {
    match name {
        "core50" => Ok(DatasetSpec::core50()),
        "openloris" => Ok(DatasetSpec::openloris()),
        "core50-tiny" => Ok(DatasetSpec::core50_tiny()),
        "openloris-tiny" => Ok(DatasetSpec::openloris_tiny()),
        "openloris-factored" => Ok(DatasetSpec::openloris_factored()),
        other => Err(format!("unknown dataset `{other}`")),
    }
}

const METHODS: [&str; 10] = [
    "chameleon",
    "latent-replay",
    "er",
    "der",
    "gss",
    "slda",
    "lwf",
    "ewc",
    "finetune",
    "joint",
];

/// Builds a Chameleon config for a CLI-provided buffer size and
/// latent-codec precision (the `--precision` knob of `train`, `faults`,
/// `fleet`, and `loadgen`), turning a validation failure into a
/// reportable error instead of a panic.
fn chameleon_config_at(buffer: usize, precision: Precision) -> Result<ChameleonConfig, String> {
    let config = ChameleonConfig {
        long_term_capacity: buffer,
        precision,
        ..ChameleonConfig::default()
    };
    config
        .validate()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(config)
}

/// Parses the optional `--precision {f32,f16,int8}` flag.
fn precision_option(options: &Options) -> Result<Precision, String> {
    Precision::parse(options.get_or("precision", "f32")).map_err(|e| format!("--precision: {e}"))
}

fn build_method(
    name: &str,
    model: &ModelConfig,
    buffer: usize,
    precision: Precision,
    seed: u64,
) -> Result<Box<dyn Strategy>, String> {
    if precision != Precision::F32 && name != "chameleon" {
        return Err(format!(
            "--precision applies only to --method chameleon, not `{name}`"
        ));
    }
    Ok(match name {
        "chameleon" => Box::new(Chameleon::new(
            model,
            chameleon_config_at(buffer, precision)?,
            seed,
        )),
        "latent-replay" => Box::new(LatentReplay::new(model, buffer, seed)),
        "er" => Box::new(Er::new(model, buffer, seed)),
        "der" => Box::new(Der::new(model, DerConfig::new(buffer), seed)),
        "gss" => Box::new(Gss::new(model, GssConfig::new(buffer), seed)),
        "slda" => Box::new(Slda::new(model, SldaConfig::default(), seed)),
        "lwf" => Box::new(Lwf::new(model, LwfConfig::default(), seed)),
        "ewc" => Box::new(EwcPlusPlus::new(model, EwcConfig::default(), seed)),
        "finetune" => Box::new(Finetune::new(model, seed)),
        "joint" => Box::new(Joint::new(model, JointConfig::default(), seed)),
        other => {
            return Err(format!(
                "unknown method `{other}`; valid: {}",
                METHODS.join(", ")
            ))
        }
    })
}

fn stream_config(skewed: bool) -> StreamConfig {
    if skewed {
        StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![0, 1, 2, 3, 4],
                boost: 8.0,
            },
            ..StreamConfig::default()
        }
    } else {
        StreamConfig::default()
    }
}

fn info() -> Result<(), String> {
    println!("datasets:");
    for spec in [
        DatasetSpec::core50(),
        DatasetSpec::openloris(),
        DatasetSpec::core50_tiny(),
        DatasetSpec::openloris_tiny(),
        DatasetSpec::openloris_factored(),
    ] {
        println!(
            "  {:<16} {} classes × {} domains, {} train / {} test samples",
            spec.name,
            spec.num_classes,
            spec.num_domains,
            spec.train_len(),
            spec.test_len()
        );
    }
    println!("\nmethods: {}", METHODS.join(", "));
    println!("\ndevices:");
    for device in [
        JetsonNano::new().name().to_string(),
        Zcu102::new().name().to_string(),
        SystolicAccelerator::new().name().to_string(),
    ] {
        println!("  {device}");
    }
    Ok(())
}

fn train(options: &Options) -> Result<(), String> {
    options.expect_only(&[
        "dataset",
        "method",
        "buffer",
        "runs",
        "seed",
        "skewed",
        "save",
        "precision",
    ])?;
    let spec = dataset(options.get_or("dataset", "core50-tiny"))?;
    let method = options.get_or("method", "chameleon").to_string();
    let buffer: usize = options.get_parsed_or("buffer", 100)?;
    let runs: usize = options.get_parsed_or("runs", 1)?;
    let seed: u64 = options.get_parsed_or("seed", 1)?;
    let precision = precision_option(options)?;
    if runs == 0 {
        return Err("--runs must be at least 1".to_string());
    }

    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(stream_config(options.has_flag("skewed")));

    if runs > 1 {
        if options.get("save").is_some() {
            return Err("--save requires --runs 1".to_string());
        }
        let seeds: Vec<u64> = (seed..seed + runs as u64).collect();
        let agg = trainer.run_many(
            &scenario,
            |s| build_method(&method, &model, buffer, precision, s).expect("validated above"),
            &seeds,
        );
        println!(
            "{} on {}: Acc_all {} over {} runs, memory {:.1} MB",
            agg.name, spec.name, agg.acc_all, runs, agg.memory_overhead_mb
        );
        return Ok(());
    }

    if let Some(path) = options.get("save") {
        if method != "chameleon" {
            return Err("--save currently supports only --method chameleon".to_string());
        }
        let mut learner = Chameleon::new(&model, chameleon_config_at(buffer, precision)?, seed);
        let report = trainer.run(&scenario, &mut learner, seed);
        print_report(&spec, "Chameleon", &report);
        save_checkpoint_atomically(&learner, path)?;
        println!("checkpoint saved to {path}");
        return Ok(());
    }

    let mut strategy = build_method(&method, &model, buffer, precision, seed)?;
    let report = trainer.run(&scenario, strategy.as_mut(), seed);
    print_report(&spec, strategy.name(), &report);
    Ok(())
}

/// Writes a checkpoint through a temp file in the destination directory,
/// fsyncs it, then renames into place — a crash mid-save leaves either the
/// old checkpoint or none, never a half-written blob at `path`.
fn save_checkpoint_atomically(learner: &Chameleon, path: &str) -> Result<(), String> {
    let target = std::path::Path::new(path);
    let tmp = temp_sibling_path(target);
    let file = File::create(&tmp).map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
    let mut writer = BufWriter::new(file);
    learner
        .save_checkpoint(&mut writer)
        .map_err(|e| format!("cannot write checkpoint: {e}"))?;
    let file = writer
        .into_inner()
        .map_err(|e| format!("cannot flush checkpoint: {e}"))?;
    file.sync_all()
        .map_err(|e| format!("cannot sync checkpoint: {e}"))?;
    drop(file);
    std::fs::rename(&tmp, target).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        format!("cannot move checkpoint into place: {e}")
    })
}

/// Temp-file path for an atomic write to `target`: a dotted sibling in
/// the *destination's* directory, never the process CWD — `rename` is
/// only atomic within one filesystem, so the temp file must live next to
/// where it will land.
fn temp_sibling_path(target: &std::path::Path) -> std::path::PathBuf {
    let name = target
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("checkpoint");
    match target.parent().filter(|d| !d.as_os_str().is_empty()) {
        Some(dir) => dir.join(format!(".{name}.tmp")),
        None => std::path::PathBuf::from(format!(".{name}.tmp")),
    }
}

fn faults(options: &Options) -> Result<(), String> {
    options.expect_only(&[
        "dataset",
        "method",
        "buffer",
        "seed",
        "fault-seed",
        "rate",
        "no-quarantine",
        "precision",
    ])?;
    let spec = dataset(options.get_or("dataset", "core50-tiny"))?;
    let method = options.get_or("method", "chameleon").to_string();
    let buffer: usize = options.get_parsed_or("buffer", 100)?;
    let seed: u64 = options.get_parsed_or("seed", 1)?;
    let fault_seed: u64 = options.get_parsed_or("fault-seed", 7)?;
    let rate: f64 = options.get_parsed_or("rate", 1e-5)?;
    if !(rate >= 0.0 && rate.is_finite()) {
        return Err("--rate must be a finite non-negative number".to_string());
    }
    let quarantine = !options.has_flag("no-quarantine");
    if !quarantine && method != "chameleon" {
        return Err("--no-quarantine applies only to --method chameleon".to_string());
    }
    let precision = precision_option(options)?;

    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());
    let plan = FaultPlan::bit_flips(fault_seed, rate);
    let mut injector = FaultInjector::new(plan);

    if method == "chameleon" {
        let config = ChameleonConfig {
            quarantine,
            ..chameleon_config_at(buffer, precision)?
        };
        let mut learner = Chameleon::new(&model, config, seed);
        let report = trainer.run_with_faults(&scenario, &mut learner, seed, &mut injector);
        print_report(&spec, "Chameleon", &report);
        let r = learner.resilience();
        println!(
            "  resilience: {} short-term / {} long-term evictions, {} rebuilds, {} skipped updates",
            r.short_term_evictions, r.long_term_evictions, r.prototype_rebuilds, r.skipped_updates
        );
        println!("  long-term integrity: {:.3}", r.long_term_integrity);
    } else {
        let mut strategy = build_method(&method, &model, buffer, precision, seed)?;
        let report = trainer.run_with_faults(&scenario, strategy.as_mut(), seed, &mut injector);
        print_report(&spec, strategy.name(), &report);
    }
    let stats = injector.stats();
    println!(
        "  faults injected (dram rate {rate:.1e}, seed {fault_seed}): {} bit flips across {} store residents",
        stats.bits_flipped, stats.vectors_hit
    );
    Ok(())
}

/// Runs a fleet of per-user sessions (each with its own preference skew)
/// to completion on a sharded engine, then reports per-user accuracy,
/// engine counters, and the hardware cost of the merged fleet trace.
fn fleet(options: &Options) -> Result<(), String> {
    options.expect_only(&[
        "dataset",
        "sessions",
        "shards",
        "buffer",
        "seed",
        "queue",
        "budget-mb",
        "step-batches",
        "rate",
        "fault-seed",
        "store-dir",
        "balance",
        "json",
        "precision",
    ])?;
    let spec = dataset(options.get_or("dataset", "core50-tiny"))?;
    let sessions: u64 = options.get_parsed_or("sessions", 8)?;
    let shards: usize = options.get_parsed_or("shards", 2)?;
    let buffer: usize = options.get_parsed_or("buffer", 30)?;
    let seed: u64 = options.get_parsed_or("seed", 1)?;
    let queue: usize = options.get_parsed_or("queue", 32)?;
    let step_batches: usize = options.get_parsed_or("step-batches", 4)?;
    let rate: f64 = options.get_parsed_or("rate", 0.0)?;
    let fault_seed: u64 = options.get_parsed_or("fault-seed", 7)?;
    if sessions == 0 {
        return Err("--sessions must be at least 1".to_string());
    }
    if step_batches == 0 {
        return Err("--step-batches must be at least 1".to_string());
    }
    if !(rate >= 0.0 && rate.is_finite()) {
        return Err("--rate must be a finite non-negative number".to_string());
    }
    let budget_bytes = match options.get("budget-mb") {
        None => u64::MAX,
        Some(v) => {
            let mb: f64 = v
                .parse()
                .map_err(|_| format!("invalid --budget-mb `{v}`"))?;
            if !(mb > 0.0 && mb.is_finite()) {
                return Err("--budget-mb must be a positive number".to_string());
            }
            (mb * 1024.0 * 1024.0) as u64
        }
    };

    let balance = options
        .get("balance")
        .map(|spec| BalanceConfig::parse(spec).map_err(|e| format!("invalid --balance: {e}")))
        .transpose()?;

    let precision = precision_option(options)?;
    let learner = chameleon_config_at(buffer, precision)?;
    let config = FleetConfig {
        num_shards: shards,
        queue_depth: queue,
        budget_bytes,
        assignment_seed: seed,
        faults: (rate > 0.0).then(|| FaultPlan::bit_flips(fault_seed, rate)),
    };
    config
        .validate()
        .map_err(|e| format!("invalid fleet config: {e}"))?;

    let scenario = std::sync::Arc::new(DomainIlScenario::generate(&spec, 0xDA7A));
    let (mut engine, recovery) = match options.get("store-dir") {
        Some(dir) => {
            let store = chameleon_store::SharedStore::open(chameleon_store::StoreConfig::new(dir))
                .map_err(|e| format!("open session store `{dir}`: {e}"))?;
            let (engine, report) = FleetEngine::recover(
                std::sync::Arc::clone(&scenario),
                config,
                chameleon_runtime::Runtime::Threads,
                store,
            )
            .map_err(|e| format!("recover session store `{dir}`: {e}"))?;
            (engine, Some(report))
        }
        None => (
            FleetEngine::new(std::sync::Arc::clone(&scenario), config),
            None,
        ),
    };
    if let Some(report) = &recovery {
        eprintln!(
            "store: recovered {} session(s), {} decode reject(s)",
            report.sessions_recovered, report.decode_rejects
        );
    }

    for user in 0..sessions {
        if engine.known(user) {
            continue; // recovered from the store; resumes on first step
        }
        engine
            .create_blocking(user, per_user_spec(user, spec.num_classes, &learner, seed))
            .map_err(|e| format!("create session {user}: {e}"))?;
    }

    let start = std::time::Instant::now();
    let mut balancer = balance.as_ref().map(BalanceConfig::build);
    let mut live: Vec<u64> = (0..sessions).collect();
    while !live.is_empty() {
        for &user in &live {
            engine
                .command_blocking(
                    user,
                    SessionCommand::Step {
                        batches: step_batches,
                    },
                )
                .map_err(|e| format!("step session {user}: {e}"))?;
            if let Some(balancer) = balancer.as_mut() {
                balancer.on_op(&mut engine);
            }
        }
        for event in engine.drain_pending() {
            match event.kind {
                SessionEventKind::Stepped { done: true, .. } => {
                    live.retain(|&u| u != event.session);
                }
                SessionEventKind::Failed(reason) => {
                    return Err(format!("session {} failed: {reason}", event.session));
                }
                _ => {}
            }
        }
    }
    let wall = start.elapsed();

    for user in 0..sessions {
        engine
            .command_blocking(user, SessionCommand::Evaluate)
            .map_err(|e| format!("evaluate session {user}: {e}"))?;
    }
    let mut reports: Vec<(u64, EvalReport)> = engine
        .drain_pending()
        .into_iter()
        .filter_map(|event| match event.kind {
            SessionEventKind::Evaluated(report) => Some((event.session, *report)),
            _ => None,
        })
        .collect();
    reports.sort_by_key(|(user, _)| *user);

    let mean = reports
        .iter()
        .map(|(_, r)| f64::from(r.acc_all))
        .sum::<f64>()
        / reports.len().max(1) as f64;
    let metrics = engine.metrics();

    if options.has_flag("json") {
        println!(
            "{}",
            fleet_json(
                spec.name,
                sessions,
                wall.as_secs_f64(),
                mean,
                &reports,
                &engine,
                &metrics,
                recovery.as_ref(),
                balancer.as_ref().map(|b| b.counters()),
                &learner,
                spec.num_classes,
            )
        );
        return Ok(());
    }

    println!(
        "fleet of {sessions} sessions on {} across {shards} shard(s):",
        spec.name
    );
    for (user, report) in &reports {
        println!(
            "  user {user:>3} (shard {}): Acc_all {:6.2} %",
            engine.shard_of(*user),
            report.acc_all
        );
    }
    println!("  mean Acc_all: {mean:.2} %");

    println!(
        "engine: {} batches in {:.2} s ({:.0} batches/s wall), {} evictions, {} restores",
        metrics.batches(),
        wall.as_secs_f64(),
        metrics.batches() as f64 / wall.as_secs_f64().max(1e-9),
        metrics.evictions(),
        metrics.restores()
    );
    if let Some(balancer) = &balancer {
        let c = balancer.counters();
        println!(
            "balance ({}): {} migration(s) over {} tick(s), {} skipped, {} failure(s)",
            balancer.policy_name(),
            c.migrations_total,
            c.rebalance_ticks,
            c.migrations_skipped,
            c.migration_failures
        );
    }
    for shard in &metrics.per_shard {
        println!(
            "  shard {}: {} resident / {} cold sessions, {} batches, {:.0} steps/s compute, {:.1} MB resident",
            shard.shard,
            shard.sessions_resident,
            shard.sessions_cold,
            shard.batches,
            shard.steps_per_sec(),
            shard.resident_bytes as f64 / (1024.0 * 1024.0)
        );
    }

    let merged = metrics.merged_trace();
    if let Some(per) = merged.per_input() {
        let workload = Workload::from_trace(&per, &NominalModel::mobilenet_v1());
        println!("fleet-wide hardware cost ({} inputs):", merged.inputs);
        for device in [
            &JetsonNano::new() as &dyn Device,
            &Zcu102::new(),
            &SystolicAccelerator::new(),
        ] {
            let cost = device.cost(&workload);
            println!(
                "  {:<26} {:10.1} ms   {:8.3} J",
                device.name(),
                cost.latency_ms * merged.inputs as f64,
                cost.energy_j * merged.inputs as f64
            );
        }
    }
    Ok(())
}

/// Per-user session spec shared by `fleet`, `serve`, and `loadgen`: a
/// rotating 3-class preference slice so each user is a genuinely
/// different workload.
fn per_user_spec(
    user: u64,
    num_classes: usize,
    learner: &ChameleonConfig,
    seed: u64,
) -> FleetSessionSpec {
    let base = (user as usize * 3) % num_classes;
    FleetSessionSpec {
        learner: learner.clone(),
        stream: StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![base, (base + 1) % num_classes, (base + 2) % num_classes],
                boost: 8.0,
            },
            ..StreamConfig::default()
        },
        learner_seed: seed.wrapping_add(user),
        stream_seed: seed.wrapping_add(user.wrapping_mul(0x51_7C)),
    }
}

#[allow(clippy::too_many_arguments)]
fn fleet_json(
    dataset: &str,
    sessions: u64,
    wall_s: f64,
    mean_acc: f64,
    reports: &[(u64, EvalReport)],
    engine: &FleetEngine,
    metrics: &chameleon_fleet::FleetMetrics,
    recovery: Option<&chameleon_fleet::RecoveryReport>,
    balance: Option<chameleon_balance::BalanceCounters>,
    learner: &ChameleonConfig,
    num_classes: usize,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"dataset\": \"{dataset}\",");
    let _ = writeln!(out, "  \"sessions\": {sessions},");
    let _ = writeln!(out, "  \"shards\": {},", metrics.per_shard.len());
    let _ = writeln!(out, "  \"wall_s\": {wall_s:.4},");
    let _ = writeln!(out, "  \"mean_acc_all\": {mean_acc:.4},");
    let _ = writeln!(out, "  \"batches\": {},", metrics.batches());
    let _ = writeln!(out, "  \"evictions\": {},", metrics.evictions());
    let _ = writeln!(out, "  \"restores\": {},", metrics.restores());
    // Latent-codec accounting: per-session nominal footprint at the
    // configured precision versus unquantized pricing, plus the
    // serialized size of one nominal latent (the >=3x shrink claim is
    // packed-int8 bytes versus f32-serialized bytes).
    let precision = learner.precision;
    let shapes = chameleon_stream::shapes::NominalShapes::for_classes(num_classes);
    let price_mb = |n: usize| match precision {
        Precision::F32 | Precision::F16 => shapes.latent_mb(n),
        Precision::Int8 => shapes.latent_packed_mb(n, 1, 8),
    };
    let capacities = learner.short_term_capacity + learner.long_term_capacity;
    let session_mb = price_mb(learner.short_term_capacity) + price_mb(learner.long_term_capacity);
    let nominal_mb = shapes.latent_mb(capacities);
    let elems = shapes.latent_elems();
    let latent_bytes = precision.packed_len(elems);
    let latent_bytes_f32 = Precision::F32.packed_len(elems);
    let _ = writeln!(out, "  \"precision\": \"{precision}\",");
    let _ = writeln!(
        out,
        "  \"session_bytes\": {},",
        (session_mb * 1024.0 * 1024.0).ceil() as u64
    );
    let _ = writeln!(
        out,
        "  \"session_bytes_nominal\": {},",
        (nominal_mb * 1024.0 * 1024.0).ceil() as u64
    );
    let _ = writeln!(
        out,
        "  \"codec_bytes_saved\": {},",
        metrics.codec_bytes_saved()
    );
    let _ = writeln!(out, "  \"latent_bytes_per_sample\": {latent_bytes},");
    let _ = writeln!(
        out,
        "  \"latent_bytes_per_sample_f32\": {latent_bytes_f32},"
    );
    let _ = writeln!(
        out,
        "  \"latent_shrink\": {:.2},",
        latent_bytes_f32 as f64 / latent_bytes as f64
    );
    if let Some(c) = balance {
        for (name, value) in c.named() {
            let _ = writeln!(out, "  \"{name}\": {value},");
        }
    }
    if let Some(report) = recovery {
        let _ = writeln!(
            out,
            "  \"sessions_recovered\": {},",
            report.sessions_recovered
        );
        let _ = writeln!(
            out,
            "  \"store_decode_rejects\": {},",
            report.decode_rejects
        );
    }
    if let Some(s) = engine.store_counters() {
        let _ = writeln!(
            out,
            "  \"store\": {{\"appends\": {}, \"append_bytes\": {}, \"fsyncs\": {}, \
             \"rotations\": {}, \"compactions\": {}, \"torn_truncations\": {}, \
             \"decode_rejects\": {}, \"short_reads\": {}, \"segments\": {}, \
             \"live_records\": {}}},",
            s.appends,
            s.append_bytes,
            s.fsyncs,
            s.rotations,
            s.compactions,
            s.torn_truncations,
            s.decode_rejects,
            s.short_reads,
            s.segments,
            s.live_records
        );
    }
    let _ = writeln!(out, "  \"users\": [");
    for (i, (user, report)) in reports.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"user\": {user}, \"shard\": {}, \"acc_all\": {:.4}}}{}",
            engine.shard_of(*user),
            report.acc_all,
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"per_shard\": [");
    for (i, shard) in metrics.per_shard.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"shard\": {}, \"resident\": {}, \"cold\": {}, \"batches\": {}, \
             \"evictions\": {}, \"restores\": {}}}{}",
            shard.shard,
            shard.sessions_resident,
            shard.sessions_cold,
            shard.batches,
            shard.evictions,
            shard.restores,
            if i + 1 < metrics.per_shard.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

/// JSON object body (no braces) of the serving-layer counters, shared by
/// `serve --json` and `loadgen --json` so CI can grep one shape.
fn counters_json(c: &ServeCounters, indent: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{indent}\"connections_accepted\": {},",
        c.connections_accepted
    );
    let _ = writeln!(
        out,
        "{indent}\"connections_closed\": {},",
        c.connections_closed
    );
    let _ = writeln!(out, "{indent}\"frames_in\": {},", c.frames_in);
    let _ = writeln!(out, "{indent}\"frames_out\": {},", c.frames_out);
    let _ = writeln!(out, "{indent}\"bytes_in\": {},", c.bytes_in);
    let _ = writeln!(out, "{indent}\"bytes_out\": {},", c.bytes_out);
    let _ = writeln!(out, "{indent}\"decode_rejects\": {},", c.decode_rejects);
    let _ = writeln!(
        out,
        "{indent}\"backpressure_replies\": {},",
        c.backpressure_replies
    );
    let _ = writeln!(out, "{indent}\"requests_ok\": {},", c.requests_ok);
    let _ = writeln!(out, "{indent}\"requests_failed\": {},", c.requests_failed);
    let _ = writeln!(
        out,
        "{indent}\"latency_p50_us\": {},",
        c.latency.quantile_upper_us(0.5)
    );
    let _ = write!(
        out,
        "{indent}\"latency_p99_us\": {}",
        c.latency.quantile_upper_us(0.99)
    );
    out
}

fn print_serve_counters(c: &ServeCounters) {
    println!(
        "serve: {} frames in / {} out, {} KiB in / {} KiB out",
        c.frames_in,
        c.frames_out,
        c.bytes_in / 1024,
        c.bytes_out / 1024
    );
    println!(
        "  {} ok, {} failed, {} decode rejects, {} backpressure replies",
        c.requests_ok, c.requests_failed, c.decode_rejects, c.backpressure_replies
    );
    println!(
        "  latency p50 ≤ {} µs, p99 ≤ {} µs over {} requests",
        c.latency.quantile_upper_us(0.5),
        c.latency.quantile_upper_us(0.99),
        c.latency.count()
    );
}

/// Builds the fleet + serve configs the `serve` and `loadgen` (self-serve)
/// commands share.
fn serve_configs(options: &Options) -> Result<(DatasetSpec, FleetConfig, ServeConfig), String> {
    let spec = dataset(options.get_or("dataset", "core50-tiny"))?;
    let shards: usize = options.get_parsed_or("shards", 2)?;
    let workers: usize = options.get_parsed_or("workers", 4)?;
    let queue: usize = options.get_parsed_or("queue", 32)?;
    let seed: u64 = options.get_parsed_or("seed", 1)?;
    let rate: f64 = options.get_parsed_or("rate", 0.0)?;
    let fault_seed: u64 = options.get_parsed_or("fault-seed", 7)?;
    if !(rate >= 0.0 && rate.is_finite()) {
        return Err("--rate must be a finite non-negative number".to_string());
    }
    let budget_bytes = match options.get("budget-mb") {
        None => u64::MAX,
        Some(v) => {
            let mb: f64 = v
                .parse()
                .map_err(|_| format!("invalid --budget-mb `{v}`"))?;
            if !(mb > 0.0 && mb.is_finite()) {
                return Err("--budget-mb must be a positive number".to_string());
            }
            (mb * 1024.0 * 1024.0) as u64
        }
    };
    let fleet_config = FleetConfig {
        num_shards: shards,
        queue_depth: queue,
        budget_bytes,
        assignment_seed: seed,
        faults: (rate > 0.0).then(|| FaultPlan::bit_flips(fault_seed, rate)),
    };
    fleet_config
        .validate()
        .map_err(|e| format!("invalid fleet config: {e}"))?;
    let balance = options
        .get("balance")
        .map(|spec| BalanceConfig::parse(spec).map_err(|e| format!("invalid --balance: {e}")))
        .transpose()?;
    let serve_config = ServeConfig {
        addr: options.get_or("addr", "127.0.0.1:0").to_string(),
        workers,
        store_dir: options.get("store-dir").map(std::path::PathBuf::from),
        balance,
        ..ServeConfig::default()
    };
    serve_config
        .validate()
        .map_err(|e| format!("invalid serve config: {e}"))?;
    Ok((spec, fleet_config, serve_config))
}

/// Serves a fleet engine over TCP until `--duration` elapses (or stdin
/// reaches EOF), then drains and reports the serving-layer counters.
fn serve(options: &Options) -> Result<(), String> {
    options.expect_only(&[
        "addr",
        "duration",
        "dataset",
        "shards",
        "workers",
        "queue",
        "budget-mb",
        "seed",
        "rate",
        "fault-seed",
        "store-dir",
        "balance",
        "json",
    ])?;
    let (spec, fleet_config, serve_config) = serve_configs(options)?;
    let duration = match options.get("duration") {
        None => None,
        Some(v) => {
            let secs: f64 = v.parse().map_err(|_| format!("invalid --duration `{v}`"))?;
            if !(secs >= 0.0 && secs.is_finite()) {
                return Err("--duration must be a finite non-negative number".to_string());
            }
            Some(std::time::Duration::from_secs_f64(secs))
        }
    };

    let scenario = std::sync::Arc::new(DomainIlScenario::generate(&spec, 0xDA7A));
    let mut server = Server::start(scenario, fleet_config, serve_config)
        .map_err(|e| format!("cannot start server: {e}"))?;
    eprintln!(
        "serving {} on {} ({} shard(s)); CHAMWIRE protocol",
        spec.name,
        server.local_addr(),
        options.get_or("shards", "2"),
    );
    match duration {
        Some(d) => std::thread::sleep(d),
        None => {
            eprintln!("running until stdin reaches EOF (Ctrl-D to stop)");
            let _ = std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink());
        }
    }
    server.shutdown();
    let counters = server.metrics();
    if options.has_flag("json") {
        println!("{{\n{}\n}}", counters_json(&counters, "  "));
    } else {
        print_serve_counters(&counters);
    }
    Ok(())
}

/// JSON object body (no braces) of the routing-tier counters, so CI can
/// grep `"route.sessions_handed_off"` and `"route.decode_rejects"`.
fn route_counters_json(c: &chameleon_route::RouteCounters, indent: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{indent}\"route.requests_in\": {},", c.requests_in);
    let _ = writeln!(
        out,
        "{indent}\"route.requests_forwarded\": {},",
        c.requests_forwarded
    );
    let _ = writeln!(
        out,
        "{indent}\"route.forward_failures\": {},",
        c.forward_failures
    );
    let _ = writeln!(
        out,
        "{indent}\"route.sessions_handed_off\": {},",
        c.sessions_handed_off
    );
    let _ = writeln!(out, "{indent}\"route.failovers\": {},", c.failovers);
    let _ = writeln!(
        out,
        "{indent}\"route.failover_replays_skipped\": {},",
        c.failover_replays_skipped
    );
    let _ = writeln!(
        out,
        "{indent}\"route.decode_rejects\": {},",
        c.decode_rejects
    );
    let _ = writeln!(out, "{indent}\"route.probes_ok\": {},", c.probes_ok);
    let _ = writeln!(out, "{indent}\"route.probes_failed\": {},", c.probes_failed);
    let _ = writeln!(
        out,
        "{indent}\"route.shadow_refreshes\": {},",
        c.shadow_refreshes
    );
    let _ = writeln!(
        out,
        "{indent}\"route.shadow_refresh_failures\": {},",
        c.shadow_refresh_failures
    );
    let _ = writeln!(
        out,
        "{indent}\"route.pins_recovered\": {},",
        c.pins_recovered
    );
    let _ = writeln!(
        out,
        "{indent}\"route.shadows_recovered\": {},",
        c.shadows_recovered
    );
    let _ = write!(
        out,
        "{indent}\"route.state_append_failures\": {}",
        c.state_append_failures
    );
    out
}

/// Fronts N CHAMWIRE backends with a routing proxy until `--duration`
/// elapses (or stdin reaches EOF), then reports the routing counters
/// and final backend states.
fn route(options: &Options) -> Result<(), String> {
    options.expect_only(&[
        "addr",
        "backends",
        "workers",
        "duration",
        "probe-interval-ms",
        "degraded-after",
        "dead-after",
        "salt",
        "state-dir",
        "json",
    ])?;
    let backends: Vec<String> = options
        .get("backends")
        .ok_or("route requires --backends <host:port,host:port,...>")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if backends.is_empty() {
        return Err("--backends must list at least one address".to_string());
    }
    let duration = match options.get("duration") {
        None => None,
        Some(v) => {
            let secs: f64 = v.parse().map_err(|_| format!("invalid --duration `{v}`"))?;
            if !(secs >= 0.0 && secs.is_finite()) {
                return Err("--duration must be a finite non-negative number".to_string());
            }
            Some(std::time::Duration::from_secs_f64(secs))
        }
    };
    let defaults = RouterConfig::default();
    let config = RouterConfig {
        addr: options.get_or("addr", "127.0.0.1:0").to_string(),
        backends,
        workers: options.get_parsed_or("workers", defaults.workers)?,
        salt: options.get_parsed_or("salt", defaults.salt)?,
        probe_interval: std::time::Duration::from_millis(options.get_parsed_or(
            "probe-interval-ms",
            defaults.probe_interval.as_millis() as u64,
        )?),
        degraded_after: options.get_parsed_or("degraded-after", defaults.degraded_after)?,
        dead_after: options.get_parsed_or("dead-after", defaults.dead_after)?,
        state_dir: options.get("state-dir").map(std::path::PathBuf::from),
        ..defaults
    };

    let mut router = Router::start(config).map_err(|e| format!("cannot start router: {e}"))?;
    eprintln!(
        "routing on {} over {} backend(s); CHAMWIRE protocol",
        router.local_addr(),
        router.backend_states().len()
    );
    match duration {
        Some(d) => std::thread::sleep(d),
        None => {
            eprintln!("running until stdin reaches EOF (Ctrl-D to stop)");
            let _ = std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink());
        }
    }
    let states = router.backend_states();
    let counters = router.metrics();
    router.shutdown();

    if options.has_flag("json") {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"backends\": [");
        for (i, (addr, state)) in states.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"addr\": \"{addr}\", \"state\": \"{state:?}\"}}{}",
                if i + 1 < states.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "{}", route_counters_json(&counters, "  "));
        let _ = write!(out, "}}");
        println!("{out}");
    } else {
        println!(
            "route: {} requests in, {} forwarded, {} forward failures, {} decode rejects",
            counters.requests_in,
            counters.requests_forwarded,
            counters.forward_failures,
            counters.decode_rejects
        );
        println!(
            "  {} sessions handed off ({} shadow failovers), {} / {} probes ok, \
             {} shadow refreshes ({} failed)",
            counters.sessions_handed_off,
            counters.failovers,
            counters.probes_ok,
            counters.probes_ok + counters.probes_failed,
            counters.shadow_refreshes,
            counters.shadow_refresh_failures
        );
        println!(
            "  {} pins + {} shadows recovered from state log, {} replays skipped, \
             {} state-append failures",
            counters.pins_recovered,
            counters.shadows_recovered,
            counters.failover_replays_skipped,
            counters.state_append_failures
        );
        for (addr, state) in &states {
            println!("  backend {addr}: {state:?}");
        }
    }
    Ok(())
}

/// Drives a CHAMWIRE server with concurrent client connections, each
/// running its share of sessions to completion (create → step* →
/// predict → checkpoint), then reports throughput and server counters.
fn loadgen(options: &Options) -> Result<(), String> {
    options.expect_only(&[
        "addr",
        "connections",
        "sessions",
        "slice",
        "dataset",
        "shards",
        "workers",
        "queue",
        "budget-mb",
        "buffer",
        "seed",
        "rate",
        "fault-seed",
        "shape",
        "balance",
        "json",
        "precision",
    ])?;
    let connections: usize = options.get_parsed_or("connections", 2)?;
    let sessions: u64 = options.get_parsed_or("sessions", 4)?;
    let slice: u32 = options.get_parsed_or("slice", 8)?;
    let buffer: usize = options.get_parsed_or("buffer", 20)?;
    let seed: u64 = options.get_parsed_or("seed", 1)?;
    if connections == 0 {
        return Err("--connections must be at least 1".to_string());
    }
    if sessions == 0 {
        return Err("--sessions must be at least 1".to_string());
    }
    if slice == 0 {
        // A zero-batch step can never finish a stream, so the step loop
        // below would spin on `Stepped { delivered: 0, done: false }`.
        return Err("--slice must be at least 1".to_string());
    }
    // Validate the shape grammar before any thread spawns; each
    // connection thread then builds its own seeded generator over its
    // share of the sessions.
    let shape_name = options
        .get("shape")
        .map(|spec| {
            TrafficShape::parse(spec, 1, 0)
                .map(|s| s.name())
                .map_err(|e| format!("invalid --shape: {e}"))
        })
        .transpose()?;
    let shape_spec = options.get("shape").map(String::from);
    let (spec, fleet_config, serve_config) = serve_configs(options)?;
    let learner = chameleon_config_at(buffer, precision_option(options)?)?;

    // No --addr: self-serve a loopback server so one process exercises
    // the full wire path (the CI smoke mode). A comma-separated --addr
    // list fans connections out round-robin over several targets (the
    // servers behind a router, or independent shards of a fleet).
    let server = match options.get("addr") {
        Some(_) => None,
        None => {
            let scenario = std::sync::Arc::new(DomainIlScenario::generate(&spec, 0xDA7A));
            Some(
                Server::start(scenario, fleet_config, serve_config)
                    .map_err(|e| format!("cannot start server: {e}"))?,
            )
        }
    };
    let targets: Vec<String> = match &server {
        Some(server) => vec![server.local_addr().to_string()],
        None => options
            .get("addr")
            .expect("checked above")
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
    };
    if targets.is_empty() {
        return Err("--addr must list at least one target".to_string());
    }

    let start = std::time::Instant::now();
    let num_classes = spec.num_classes;
    let handles: Vec<_> = (0..connections)
        .map(|c| {
            // Connections round-robin over the target list; sessions
            // stripe over connections, so each session stays on the one
            // target its connection talks to.
            let addr = targets[c % targets.len()].clone();
            let learner = learner.clone();
            let shape_spec = shape_spec.clone();
            // Sessions are striped across connections: c, c+N, c+2N, …
            let users: Vec<u64> = (0..sessions)
                .filter(|u| (*u as usize) % connections == c)
                .collect();
            std::thread::spawn(move || -> Result<(u64, u64, u64), String> {
                fn err<E: std::fmt::Display>(
                    stage: &'static str,
                    user: u64,
                ) -> impl FnOnce(E) -> String {
                    move |e| format!("{stage} session {user}: {e}")
                }
                let mut conn =
                    Connection::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
                let mut requests = 0u64;
                for &user in &users {
                    conn.create_session(user, per_user_spec(user, num_classes, &learner, seed))
                        .map_err(err("create", user))?;
                    requests += 1;
                }
                let (mut draws, mut hot_draws) = (0u64, 0u64);
                match &shape_spec {
                    // Shaped traffic: the generator picks which of this
                    // connection's sessions each step request hits, so
                    // hot-session skew reaches the server's shards in
                    // the same proportions the shape prescribes. A drawn
                    // session that already finished falls forward to the
                    // next unfinished one, keeping termination guaranteed.
                    Some(spec) if !users.is_empty() => {
                        let mut shape = TrafficShape::parse(spec, users.len(), seed ^ c as u64)
                            .expect("grammar validated before spawning");
                        let mut done = vec![false; users.len()];
                        let mut remaining = users.len();
                        while remaining > 0 {
                            let drawn = shape.next_session();
                            let idx = (0..users.len())
                                .map(|k| (drawn + k) % users.len())
                                .find(|&i| !done[i])
                                .expect("remaining > 0 means an unfinished session exists");
                            let user = users[idx];
                            let (_, finished) =
                                conn.step(user, slice).map_err(err("step", user))?;
                            requests += 1;
                            if finished {
                                done[idx] = true;
                                remaining -= 1;
                            }
                        }
                        draws = shape.draws();
                        hot_draws = shape.hot_draws();
                    }
                    _ => {
                        for &user in &users {
                            loop {
                                let (_, done) =
                                    conn.step(user, slice).map_err(err("step", user))?;
                                requests += 1;
                                if done {
                                    break;
                                }
                            }
                        }
                    }
                }
                for &user in &users {
                    conn.predict(user).map_err(err("predict", user))?;
                    let blob = conn.checkpoint(user).map_err(err("checkpoint", user))?;
                    // Quantized sessions seal under the v2 fleet magic.
                    let magic = blob.get(..8);
                    if magic != Some(&chameleon_fleet::FLEET_MAGIC[..])
                        && magic != Some(&chameleon_fleet::FLEET_MAGIC_V2[..])
                    {
                        return Err(format!(
                            "session {user}: checkpoint blob lacks a CHAMFLT magic"
                        ));
                    }
                    requests += 2;
                }
                Ok((requests, draws, hot_draws))
            })
        })
        .collect();
    let mut requests = 0u64;
    let (mut draws, mut hot_draws) = (0u64, 0u64);
    let mut target_requests = vec![0u64; targets.len()];
    for (c, handle) in handles.into_iter().enumerate() {
        let (n, d, h) = handle
            .join()
            .map_err(|_| "a loadgen connection panicked".to_string())??;
        requests += n;
        draws += d;
        hot_draws += h;
        target_requests[c % targets.len()] += n;
    }
    let wall = start.elapsed().as_secs_f64();

    let mut target_stats: Vec<StatsSnapshot> = Vec::with_capacity(targets.len());
    // One Observe round-trip per target: per-shard step distribution and
    // the balance.* counters, so skew (and its correction) shows up in
    // this command's own report.
    let mut shard_batches: Vec<u64> = Vec::new();
    let (mut migrations, mut rebalance_ticks) = (0u64, 0u64);
    for addr in &targets {
        let mut stats_conn =
            Connection::connect(addr).map_err(|e| format!("connect {addr} for stats: {e}"))?;
        target_stats.push(
            stats_conn
                .stats()
                .map_err(|e| format!("stats {addr}: {e}"))?,
        );
        let observation = stats_conn
            .observe()
            .map_err(|e| format!("observe {addr}: {e}"))?;
        for (name, value) in &observation.counters {
            if name.starts_with("fleet.shard") && name.ends_with(".batches") {
                shard_batches.push(*value);
            } else if name == "balance.migrations_total" {
                migrations += value;
            } else if name == "balance.rebalance_ticks" {
                rebalance_ticks += value;
            }
        }
    }
    if let Some(mut server) = server {
        server.shutdown();
    }
    let batches: u64 = target_stats.iter().map(|s| s.batches).sum();
    let evictions: u64 = target_stats.iter().map(|s| s.evictions).sum();
    // Max/min ratio of per-shard delivered batches across every target's
    // shards: 1.0 is perfectly level, large values mean one hot shard did
    // the work. The CI hot-shard smoke greps this.
    let shard_step_ratio = {
        let max = shard_batches.iter().copied().max().unwrap_or(0);
        let min = shard_batches.iter().copied().min().unwrap_or(0);
        max as f64 / min.max(1) as f64
    };

    if options.has_flag("json") {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"connections\": {connections},");
        let _ = writeln!(out, "  \"sessions\": {sessions},");
        let _ = writeln!(out, "  \"requests\": {requests},");
        let _ = writeln!(out, "  \"wall_s\": {wall:.4},");
        let _ = writeln!(
            out,
            "  \"requests_per_sec\": {:.2},",
            requests as f64 / wall.max(1e-9)
        );
        let _ = writeln!(out, "  \"batches\": {batches},");
        let _ = writeln!(out, "  \"evictions\": {evictions},");
        if let Some(name) = &shape_name {
            let _ = writeln!(out, "  \"shape\": \"{name}\",");
            let _ = writeln!(out, "  \"shape.draws\": {draws},");
            let _ = writeln!(out, "  \"shape.hot_draws\": {hot_draws},");
        }
        let _ = writeln!(out, "  \"balance.migrations_total\": {migrations},");
        let _ = writeln!(out, "  \"balance.rebalance_ticks\": {rebalance_ticks},");
        let _ = writeln!(out, "  \"shard_step_ratio\": {shard_step_ratio:.2},");
        let _ = writeln!(out, "  \"targets\": [");
        for (i, ((addr, stats), reqs)) in targets
            .iter()
            .zip(&target_stats)
            .zip(&target_requests)
            .enumerate()
        {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"addr\": \"{addr}\",");
            let _ = writeln!(out, "      \"requests\": {reqs},");
            let _ = writeln!(out, "      \"batches\": {},", stats.batches);
            let _ = writeln!(
                out,
                "      \"serve\": {{\n{}\n      }}",
                counters_json(&stats.serve, "        ")
            );
            let _ = writeln!(
                out,
                "    }}{}",
                if i + 1 < targets.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        println!("{out}");
    } else {
        println!(
            "loadgen: {requests} requests over {connections} connection(s) to {} target(s) \
             in {wall:.2} s ({:.0} req/s), {batches} batches trained",
            targets.len(),
            requests as f64 / wall.max(1e-9),
        );
        if let Some(name) = &shape_name {
            println!("  shape {name}: {draws} draws, {hot_draws} on the hot subset");
        }
        println!(
            "  shard step ratio {shard_step_ratio:.2} (max/min batches across shards), \
             {migrations} migration(s) over {rebalance_ticks} balance tick(s)"
        );
        for ((addr, stats), reqs) in targets.iter().zip(&target_stats).zip(&target_requests) {
            println!(
                "  target {addr}: {reqs} requests, {} batches",
                stats.batches
            );
            print_serve_counters(&stats.serve);
        }
    }
    Ok(())
}

/// JSON document for one `Observation` — one object per span stage on
/// its own line so CI can grep `"stage": "step", "count": <nonzero>`.
fn observation_json(o: &chameleon_obs::Observation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"spans\": [");
    for (i, (stage, stats)) in o.spans.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"stage\": \"{stage}\", \"count\": {}, \"total_nanos\": {}, \
             \"max_nanos\": {}, \"mean_nanos\": {}, \"p50_us\": {}, \"p99_us\": {}}}{}",
            stats.count,
            stats.total_nanos,
            stats.max_nanos,
            stats.mean_nanos(),
            stats.histogram.quantile_upper_us(0.5),
            stats.histogram.quantile_upper_us(0.99),
            if i + 1 < o.spans.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"events\": {{\"logged\": {}, \"dropped\": {}, \"retained\": {}}},",
        o.events.next_seq,
        o.events.dropped,
        o.events.recent.len()
    );
    let _ = writeln!(out, "  \"counters\": {{");
    for (i, (name, value)) in o.counters.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{name}\": {value}{}",
            if i + 1 < o.counters.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  }}");
    let _ = write!(out, "}}");
    out
}

fn print_observation(o: &chameleon_obs::Observation) {
    println!("spans:");
    for (stage, stats) in &o.spans {
        println!(
            "  {stage:<10} count {:>8}  total {:>12} ns  max {:>10} ns  p99 ≤ {} µs",
            stats.count,
            stats.total_nanos,
            stats.max_nanos,
            stats.histogram.quantile_upper_us(0.99)
        );
    }
    println!(
        "events: {} logged, {} dropped, {} retained",
        o.events.next_seq,
        o.events.dropped,
        o.events.recent.len()
    );
    for record in o.events.recent.iter().rev().take(5) {
        println!(
            "  [{}] t={} ns  {}",
            record.seq, record.nanos, record.message
        );
    }
    println!("counters:");
    for (name, value) in &o.counters {
        println!("  {name:<28} {value}");
    }
}

/// `chameleon stats` — snapshot (or `--watch`: poll) a running server's
/// unified observability view over one `Observe` round-trip per poll.
fn stats(options: &Options) -> Result<(), String> {
    options.expect_only(&["addr", "watch", "interval", "count", "json", "expo"])?;
    let addr = options
        .get("addr")
        .ok_or("stats requires --addr <host:port>")?;
    let json = options.has_flag("json");
    let expo = options.has_flag("expo");
    if json && expo {
        return Err("--json and --expo are mutually exclusive".to_string());
    }
    let watch = options.has_flag("watch");
    let interval_ms: u64 = options.get_parsed_or("interval", 1_000)?;
    let count: u64 = options.get_parsed_or("count", 0)?;
    let polls = if watch {
        if count == 0 {
            u64::MAX
        } else {
            count
        }
    } else {
        1
    };

    let mut conn = Connection::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    for poll in 0..polls {
        let observation = conn.observe().map_err(|e| format!("observe: {e}"))?;
        if json {
            println!("{}", observation_json(&observation));
        } else if expo {
            print!("{}", chameleon_obs::expose(&observation));
        } else {
            if watch {
                println!("--- poll {} ---", poll + 1);
            }
            print_observation(&observation);
        }
        if poll + 1 < polls {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(1)));
        }
    }
    Ok(())
}

/// `chameleon simtest` — seeded simulation soak over the fleet engine
/// plus the golden-corpus conformance gate.
fn simtest(options: &Options) -> Result<(), String> {
    options.expect_only(&[
        "seeds",
        "start-seed",
        "budget-secs",
        "replay",
        "check-golden",
        "regen-golden",
        "golden-dir",
        "crash-seeds",
        "crash-start-seed",
        "crash-replay",
        "route-seeds",
        "route-start-seed",
        "route-replay",
        "balance-seeds",
        "balance-start-seed",
        "balance-replay",
        "quantized-seeds",
        "quantized-start-seed",
    ])?;
    let golden_dir = std::path::PathBuf::from(options.get_or("golden-dir", "tests/golden"));

    if options.has_flag("regen-golden") {
        std::fs::create_dir_all(&golden_dir)
            .map_err(|e| format!("cannot create {}: {e}", golden_dir.display()))?;
        for file in chameleon_simtest::derive_corpus() {
            let path = golden_dir.join(file.file);
            std::fs::write(&path, chameleon_simtest::render(&file))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!(
                "simtest: wrote {} ({} entries, version {})",
                path.display(),
                file.entries.len(),
                file.version
            );
        }
        return Ok(());
    }

    if options.has_flag("check-golden") {
        let mut findings = Vec::new();
        for derived in chameleon_simtest::derive_corpus() {
            let path = golden_dir.join(derived.file);
            let text = std::fs::read_to_string(&path).map_err(|e| {
                format!(
                    "cannot read {}: {e} — run `chameleon simtest --regen-golden` \
                     and commit the corpus",
                    path.display()
                )
            })?;
            let committed = chameleon_simtest::parse(derived.file, &text)?;
            findings.extend(chameleon_simtest::diff(&committed, &derived));
        }
        if findings.is_empty() {
            println!(
                "simtest: golden corpus conformant ({} files)",
                chameleon_simtest::GOLDEN_FILE_NAMES.len()
            );
            return Ok(());
        }
        for finding in &findings {
            eprintln!("simtest: {finding}");
        }
        return Err(format!(
            "golden corpus drift: {} finding(s)",
            findings.len()
        ));
    }

    let scenario = chameleon_simtest::golden_scenario();

    let print_crash = |outcome: &chameleon_simtest::CrashOutcome| {
        println!(
            "simtest: crash seed {} OK — {} ops, {} eviction boundaries, \
             {} session recoveries, {} record(s) lost to the hostile disk{}",
            outcome.seed,
            outcome.ops,
            outcome.boundaries,
            outcome.sessions_recovered,
            outcome.records_lost,
            if outcome.file_faulted {
                " (file faults on)"
            } else {
                ""
            }
        );
    };
    if let Some(raw) = options.get("crash-replay") {
        let seed: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --crash-replay"))?;
        let scratch = chameleon_simtest::crash::default_scratch();
        let outcome = chameleon_simtest::check_crash_seed(&scenario, seed, &scratch)?;
        std::fs::remove_dir_all(&scratch).ok();
        print_crash(&outcome);
        return Ok(());
    }
    if let Some(raw) = options.get("crash-seeds") {
        let seeds: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --crash-seeds"))?;
        if seeds == 0 {
            return Err("--crash-seeds must be at least 1".to_string());
        }
        let start: u64 = options.get_parsed_or("crash-start-seed", 0)?;
        let scratch = chameleon_simtest::crash::default_scratch();
        let (mut boundaries, mut recoveries, mut lost) = (0u64, 0u64, 0u64);
        for seed in start..start.saturating_add(seeds) {
            let outcome = chameleon_simtest::check_crash_seed(&scenario, seed, &scratch)?;
            boundaries += outcome.boundaries as u64;
            recoveries += outcome.sessions_recovered;
            lost += outcome.records_lost;
        }
        std::fs::remove_dir_all(&scratch).ok();
        println!(
            "simtest: {seeds}/{seeds} crash seeds passed — {boundaries} eviction \
             boundaries killed and recovered, {recoveries} session recoveries, \
             {lost} unsynced record(s) lost to hostile disks"
        );
        return Ok(());
    }

    let print_route = |outcome: &chameleon_simtest::RouteSeedOutcome| {
        println!(
            "simtest: route seed {} OK — {} ops on {} nodes, {} handoff(s), \
             {} kill(s) re-homing {} session(s), {} router restart(s){}, \
             log digest {:#010x}, checkpoint crc {:#010x}",
            outcome.seed,
            outcome.ops,
            outcome.nodes,
            outcome.handoffs,
            outcome.kills,
            outcome.recovered,
            outcome.router_restarts,
            if outcome.faulted { " (faulted)" } else { "" },
            outcome.log_digest,
            outcome.checkpoint_crc
        );
    };
    if let Some(raw) = options.get("route-replay") {
        let seed: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --route-replay"))?;
        let outcome = chameleon_simtest::check_route_seed(&scenario, seed)?;
        print_route(&outcome);
        return Ok(());
    }
    if let Some(raw) = options.get("route-seeds") {
        let seeds: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --route-seeds"))?;
        if seeds == 0 {
            return Err("--route-seeds must be at least 1".to_string());
        }
        let start: u64 = options.get_parsed_or("route-start-seed", 0)?;
        let (mut handoffs, mut kills, mut recovered, mut faulted) = (0u64, 0u64, 0u64, 0u64);
        let mut restarts = 0u64;
        for seed in start..start.saturating_add(seeds) {
            let outcome = chameleon_simtest::check_route_seed(&scenario, seed).map_err(|e| {
                format!("{e}; reproduce with `chameleon simtest --route-replay {seed}`")
            })?;
            handoffs += outcome.handoffs;
            kills += outcome.kills;
            recovered += outcome.recovered;
            restarts += outcome.router_restarts;
            faulted += u64::from(outcome.faulted);
        }
        println!(
            "simtest: {seeds}/{seeds} route seeds passed — {handoffs} session(s) handed \
             off, {kills} node kill(s) re-homing {recovered} session(s) from shadows, \
             {restarts} router restart(s) recovered bit-identically, \
             {faulted} faulted case(s); every schedule matched its single-node reference"
        );
        return Ok(());
    }

    let print_balance = |outcome: &chameleon_simtest::BalanceSeedOutcome| {
        println!(
            "simtest: balance seed {} OK — {} ops on {} shards, {} migration(s), \
             {} skipped{}, log digest {:#010x}, checkpoint crc {:#010x}",
            outcome.seed,
            outcome.ops,
            outcome.shards,
            outcome.migrations,
            outcome.skipped,
            if outcome.faulted { " (faulted)" } else { "" },
            outcome.log_digest,
            outcome.checkpoint_crc
        );
    };
    if let Some(raw) = options.get("balance-replay") {
        let seed: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --balance-replay"))?;
        let outcome = chameleon_simtest::check_balance_seed(&scenario, seed)?;
        print_balance(&outcome);
        return Ok(());
    }
    if let Some(raw) = options.get("balance-seeds") {
        let seeds: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --balance-seeds"))?;
        if seeds == 0 {
            return Err("--balance-seeds must be at least 1".to_string());
        }
        let start: u64 = options.get_parsed_or("balance-start-seed", 0)?;
        let (mut migrations, mut skipped, mut faulted) = (0u64, 0u64, 0u64);
        for seed in start..start.saturating_add(seeds) {
            let outcome = chameleon_simtest::check_balance_seed(&scenario, seed).map_err(|e| {
                format!("{e}; reproduce with `chameleon simtest --balance-replay {seed}`")
            })?;
            migrations += outcome.migrations;
            skipped += outcome.skipped;
            faulted += u64::from(outcome.faulted);
        }
        println!(
            "simtest: {seeds}/{seeds} balance seeds passed — {migrations} online \
             migration(s) performed, {skipped} skipped, {faulted} faulted case(s); \
             every migration schedule matched its unmigrated reference bit for bit"
        );
        return Ok(());
    }

    if let Some(raw) = options.get("quantized-seeds") {
        let seeds: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --quantized-seeds"))?;
        if seeds == 0 {
            return Err("--quantized-seeds must be at least 1".to_string());
        }
        let start: u64 = options.get_parsed_or("quantized-start-seed", 0)?;
        let (mut faulted, mut events) = (0u64, 0u64);
        for seed in start..start.saturating_add(seeds) {
            let outcome = chameleon_simtest::check_seed_at(&scenario, seed, Precision::Int8)
                .map_err(|e| format!("quantized seed {seed} violated a fleet invariant: {e}"))?;
            faulted += u64::from(outcome.faulted);
            events += outcome.events;
        }
        println!(
            "simtest: {seeds}/{seeds} quantized (int8) seeds passed ({faulted} \
             faulted, {events} events) — shard-count invariance and replay \
             determinism hold with packed latents"
        );
        return Ok(());
    }

    if let Some(raw) = options.get("replay") {
        let seed: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --replay"))?;
        let outcome = chameleon_simtest::check_seed(&scenario, seed)?;
        println!(
            "simtest: seed {seed} OK — {} ops, {} shards, faulted {}, {} events, \
             event digest {:#010x}, checkpoint crc {:#010x}",
            outcome.ops,
            outcome.shards,
            outcome.faulted,
            outcome.events,
            outcome.event_digest,
            outcome.checkpoint_crc
        );
        return Ok(());
    }

    let seeds: u64 = options.get_parsed_or("seeds", 25)?;
    if seeds == 0 {
        return Err("--seeds must be at least 1".to_string());
    }
    let start_seed: u64 = options.get_parsed_or("start-seed", 0)?;
    let budget = match options.get("budget-secs") {
        None => None,
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for --budget-secs"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err("--budget-secs must be a non-negative number".to_string());
            }
            Some(std::time::Duration::from_secs_f64(secs))
        }
    };
    let config = chameleon_simtest::SoakConfig {
        start_seed,
        seeds,
        budget,
    };
    let report = chameleon_simtest::soak::run(&scenario, &config, |seed, outcome| {
        if let Err(violation) = outcome {
            eprintln!("simtest: seed {seed} FAILED: {violation}");
        }
    });
    println!(
        "simtest: {}/{} seeds passed ({} faulted, {} events){}",
        report.passed,
        report.checked,
        report.faulted,
        report.events,
        if report.budget_exhausted {
            " — budget exhausted"
        } else {
            ""
        }
    );
    if report.all_passed() {
        Ok(())
    } else {
        let (seed, _) = report.failures[0];
        Err(format!(
            "{} seed(s) violated simulation invariants; reproduce with \
             `chameleon simtest --replay {seed}`",
            report.failures.len()
        ))
    }
}

fn print_report(spec: &DatasetSpec, name: &str, report: &EvalReport) {
    println!(
        "{name} on {}: Acc_all {:.2} %, memory {:.1} MB",
        spec.name, report.acc_all, report.memory_overhead_mb
    );
    let per_domain: Vec<String> = report
        .per_domain
        .iter()
        .map(|a| format!("{a:.0}"))
        .collect();
    println!("  per-domain accuracy: [{}]", per_domain.join(", "));
}

fn evaluate(options: &Options) -> Result<(), String> {
    options.expect_only(&["dataset", "load", "buffer"])?;
    let spec = dataset(options.get_or("dataset", "core50-tiny"))?;
    let path = options
        .get("load")
        .ok_or("evaluate requires --load <path>")?;
    let buffer: usize = options.get_parsed_or("buffer", 100)?;

    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let blob = std::fs::read(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    // A v3 checkpoint's samples live on a quantization grid; match the
    // loading config to the precision the blob records so `evaluate`
    // round-trips any checkpoint `train` writes, no flag needed.
    let precision = chameleon_core::checkpoint::stored_precision(&blob)
        .map_err(|e| format!("cannot load checkpoint: {e}"))?;
    let learner = Chameleon::load_checkpoint(
        &model,
        chameleon_config_at(buffer, precision)?,
        1,
        blob.as_slice(),
    )
    .map_err(|e| format!("cannot load checkpoint: {e}"))?;
    let report = EvalReport::evaluate(&scenario, &learner);
    print_report(&spec, "Chameleon (checkpoint)", &report);
    println!(
        "  stores: {} short-term / {} long-term samples",
        learner.short_term_len(),
        learner.long_term_len()
    );
    Ok(())
}

fn sweep(options: &Options) -> Result<(), String> {
    options.expect_only(&["dataset", "method", "buffers", "runs"])?;
    let spec = dataset(options.get_or("dataset", "core50-tiny"))?;
    let method = options.get_or("method", "latent-replay").to_string();
    let runs: usize = options.get_parsed_or("runs", 3)?;
    if runs == 0 {
        return Err("--runs must be at least 1".to_string());
    }
    let buffers: Vec<usize> = options
        .get_or("buffers", "100,200,500,1500")
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .map_err(|_| format!("invalid buffer size `{v}`"))
        })
        .collect::<Result<_, _>>()?;
    if buffers.is_empty() {
        return Err("--buffers must list at least one size".to_string());
    }

    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let trainer = Trainer::new(StreamConfig::default());
    let seeds: Vec<u64> = (1..=runs as u64).collect();

    println!(
        "{method} on {} across buffer sizes ({runs} runs each):",
        spec.name
    );
    for buffer in buffers {
        let agg = trainer.run_many(
            &scenario,
            |s| build_method(&method, &model, buffer, Precision::F32, s).expect("validated above"),
            &seeds,
        );
        println!(
            "  buffer {buffer:>5}: Acc_all {}   memory {:>7.1} MB",
            agg.acc_all, agg.memory_overhead_mb
        );
    }
    Ok(())
}

fn price(options: &Options) -> Result<(), String> {
    options.expect_only(&["method", "buffer"])?;
    let method = options.get_or("method", "chameleon").to_string();
    let buffer: usize = options.get_parsed_or("buffer", 100)?;

    let spec = DatasetSpec::core50_tiny();
    let scenario = DomainIlScenario::generate(&spec, 0xDA7A);
    let model = ModelConfig::for_spec(&spec);
    let mut strategy = build_method(&method, &model, buffer, Precision::F32, 1)?;

    // Paper hardware configuration: batch size one.
    let stream = StreamConfig {
        batch_size: 1,
        ..StreamConfig::default()
    };
    for domain in 0..spec.num_domains {
        for batch in scenario.domain_stream(domain, &stream, 5 + domain as u64) {
            strategy.observe(&batch);
        }
    }
    let per = strategy
        .trace()
        .per_input()
        .ok_or("strategy recorded no trace (joint trains offline)")?;
    let workload = Workload::from_trace(&per, &NominalModel::mobilenet_v1());

    println!("{} per-image cost (batch size 1):", strategy.name());
    println!(
        "  workload: {:.2} GMAC, {:.0} KB off-chip replay, {:.0} KB on-chip",
        workload.total_macs() / 1e9,
        workload.offchip_replay_bytes / 1e3,
        workload.onchip_bytes / 1e3
    );
    for device in [
        &JetsonNano::new() as &dyn Device,
        &Zcu102::new(),
        &SystolicAccelerator::new(),
    ] {
        let cost = device.cost(&workload);
        println!(
            "  {:<26} {:8.1} ms   {:6.3} J",
            device.name(),
            cost.latency_ms,
            cost.energy_j
        );
    }
    Ok(())
}

fn resources(options: &Options) -> Result<(), String> {
    options.expect_only(&["st-kb", "array"])?;
    let st_kb: usize = options.get_parsed_or("st-kb", 320)?;
    let array = options.get_or("array", "32x32");
    let (rows, cols) = array
        .split_once('x')
        .and_then(|(r, c)| Some((r.parse().ok()?, c.parse().ok()?)))
        .ok_or_else(|| format!("invalid --array `{array}`, expected RxC like 32x32"))?;

    let config = chameleon_hw::FpgaConfig {
        mac_rows: rows,
        mac_cols: cols,
        short_term_buffer_kb: st_kb,
        ..chameleon_hw::FpgaConfig::default()
    };
    let usage = chameleon_hw::ResourceModel::new(config).utilization();
    println!("ZCU102 utilization for a {rows}x{cols} array with {st_kb} KB short-term store:");
    println!(
        "  DSP  {:>7} / {}   ({:.2} %)",
        usage.dsp,
        chameleon_hw::ResourceUsage::DSP_AVAILABLE,
        usage.dsp_pct()
    );
    println!(
        "  BRAM {:>7} / {}   ({:.2} %)",
        usage.bram,
        chameleon_hw::ResourceUsage::BRAM_AVAILABLE,
        usage.bram_pct()
    );
    println!(
        "  LUT  {:>7} / {}   ({:.2} %)",
        usage.lut,
        chameleon_hw::ResourceUsage::LUT_AVAILABLE,
        usage.lut_pct()
    );
    println!("  fits: {}", if usage.fits() { "yes" } else { "NO" });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn help_and_info_succeed() {
        assert!(dispatch(&toks(&["help"])).is_ok());
        assert!(dispatch(&toks(&[])).is_ok());
        assert!(dispatch(&toks(&["info"])).is_ok());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&toks(&["frobnicate"])).is_err());
    }

    #[test]
    fn train_runs_on_tiny_dataset() {
        let argv = toks(&[
            "train",
            "--dataset",
            "core50-tiny",
            "--method",
            "finetune",
            "--seed",
            "2",
        ]);
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn train_rejects_unknown_method_and_dataset() {
        assert!(dispatch(&toks(&["train", "--method", "bogus"])).is_err());
        assert!(dispatch(&toks(&["train", "--dataset", "mnist"])).is_err());
        assert!(dispatch(&toks(&["train", "--runs", "0"])).is_err());
    }

    #[test]
    fn save_load_roundtrip_via_cli() {
        let dir = std::env::temp_dir().join("chameleon-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("ckpt.bin");
        let path_str = path.to_str().expect("utf8 path");
        let save = toks(&[
            "train",
            "--dataset",
            "core50-tiny",
            "--method",
            "chameleon",
            "--buffer",
            "30",
            "--save",
            path_str,
        ]);
        dispatch(&save).expect("train+save");
        let eval = toks(&[
            "evaluate",
            "--dataset",
            "core50-tiny",
            "--load",
            path_str,
            "--buffer",
            "30",
        ]);
        dispatch(&eval).expect("evaluate");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweep_runs_and_validates() {
        let argv = toks(&[
            "sweep",
            "--dataset",
            "core50-tiny",
            "--method",
            "latent-replay",
            "--buffers",
            "20,40",
            "--runs",
            "1",
        ]);
        assert!(dispatch(&argv).is_ok());
        assert!(dispatch(&toks(&["sweep", "--buffers", "abc"])).is_err());
        assert!(dispatch(&toks(&["sweep", "--buffers", ""])).is_err());
    }

    #[test]
    fn price_runs_for_slda() {
        assert!(dispatch(&toks(&["price", "--method", "slda"])).is_ok());
    }

    #[test]
    fn price_rejects_joint() {
        // Joint trains offline and records no online trace.
        assert!(dispatch(&toks(&["price", "--method", "joint"])).is_err());
    }

    #[test]
    fn resources_parses_array() {
        assert!(dispatch(&toks(&["resources", "--array", "16x16"])).is_ok());
        assert!(dispatch(&toks(&["resources", "--array", "16by16"])).is_err());
    }

    #[test]
    fn invalid_buffer_is_reported_not_panicked() {
        // A zero long-term capacity fails config validation; the CLI must
        // surface the message instead of aborting the process.
        let err = dispatch(&toks(&["train", "--method", "chameleon", "--buffer", "0"]))
            .expect_err("zero buffer accepted");
        assert!(err.contains("long-term capacity"), "{err}");
    }

    #[test]
    fn faults_command_runs_and_validates() {
        let argv = toks(&[
            "faults",
            "--dataset",
            "core50-tiny",
            "--buffer",
            "30",
            "--rate",
            "1e-4",
        ]);
        assert!(dispatch(&argv).is_ok());
        assert!(dispatch(&toks(&["faults", "--rate", "-1"])).is_err());
        assert!(dispatch(&toks(&["faults", "--rate", "nope"])).is_err());
        assert!(
            dispatch(&toks(&["faults", "--method", "er", "--no-quarantine"])).is_err(),
            "--no-quarantine must be chameleon-only"
        );
    }

    #[test]
    fn faults_command_supports_baselines() {
        let argv = toks(&[
            "faults",
            "--dataset",
            "core50-tiny",
            "--method",
            "latent-replay",
            "--buffer",
            "30",
            "--rate",
            "1e-5",
        ]);
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn fleet_command_runs_and_validates() {
        let argv = toks(&[
            "fleet",
            "--dataset",
            "core50-tiny",
            "--sessions",
            "3",
            "--shards",
            "2",
            "--buffer",
            "20",
        ]);
        assert!(dispatch(&argv).is_ok());
        assert!(dispatch(&toks(&["fleet", "--sessions", "0"])).is_err());
        assert!(dispatch(&toks(&["fleet", "--shards", "0"])).is_err());
        assert!(dispatch(&toks(&["fleet", "--step-batches", "0"])).is_err());
        assert!(dispatch(&toks(&["fleet", "--budget-mb", "-3"])).is_err());
        assert!(dispatch(&toks(&["fleet", "--rate", "nope"])).is_err());
    }

    #[test]
    fn fleet_command_survives_eviction_churn_and_faults() {
        let argv = toks(&[
            "fleet",
            "--dataset",
            "core50-tiny",
            "--sessions",
            "4",
            "--shards",
            "1",
            "--buffer",
            "20",
            "--budget-mb",
            "0.01",
            "--rate",
            "1e-5",
        ]);
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn fleet_json_flag_is_accepted() {
        let argv = toks(&[
            "fleet",
            "--dataset",
            "core50-tiny",
            "--sessions",
            "2",
            "--shards",
            "1",
            "--buffer",
            "20",
            "--json",
        ]);
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn fleet_balance_flag_runs_and_validates() {
        let argv = toks(&[
            "fleet",
            "--dataset",
            "core50-tiny",
            "--sessions",
            "4",
            "--shards",
            "2",
            "--buffer",
            "20",
            "--balance",
            "steal:2",
            "--json",
        ]);
        assert!(dispatch(&argv).is_ok());
        assert!(dispatch(&toks(&["fleet", "--balance", "roulette"])).is_err());
        assert!(dispatch(&toks(&["fleet", "--balance", "periodic:0"])).is_err());
    }

    #[test]
    fn serve_command_validates_options() {
        assert!(dispatch(&toks(&["serve", "--workers", "0"])).is_err());
        assert!(dispatch(&toks(&["serve", "--shards", "0"])).is_err());
        assert!(dispatch(&toks(&["serve", "--queue", "0"])).is_err());
        assert!(dispatch(&toks(&["serve", "--duration", "nope"])).is_err());
        assert!(dispatch(&toks(&["serve", "--addr", "not-an-address"])).is_err());
    }

    #[test]
    fn serve_runs_for_a_bounded_duration() {
        let argv = toks(&[
            "serve",
            "--dataset",
            "core50-tiny",
            "--duration",
            "0.05",
            "--json",
        ]);
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn loadgen_self_serve_round_trips() {
        // No --addr: loadgen hosts its own loopback server, so this covers
        // server start, the full client conversation, and clean shutdown.
        let argv = toks(&[
            "loadgen",
            "--dataset",
            "core50-tiny",
            "--connections",
            "2",
            "--sessions",
            "2",
            "--json",
        ]);
        assert!(dispatch(&argv).is_ok());
        assert!(dispatch(&toks(&["loadgen", "--connections", "0"])).is_err());
        assert!(dispatch(&toks(&["loadgen", "--sessions", "0"])).is_err());
        assert!(dispatch(&toks(&["loadgen", "--slice", "0"])).is_err());
    }

    #[test]
    fn loadgen_shaped_traffic_with_balance_round_trips() {
        // Skewed traffic against a self-served multi-shard fleet with the
        // rebalancer on: covers the --shape draw loop, the balance knob's
        // passage into the server engine thread, and the shard_step_ratio
        // observe round-trip.
        let argv = toks(&[
            "loadgen",
            "--dataset",
            "core50-tiny",
            "--connections",
            "1",
            "--sessions",
            "3",
            "--shards",
            "2",
            "--shape",
            "zipf:1.1",
            "--balance",
            "steal:2",
            "--json",
        ]);
        assert!(dispatch(&argv).is_ok());
        assert!(dispatch(&toks(&["loadgen", "--shape", "pareto"])).is_err());
        assert!(dispatch(&toks(&["loadgen", "--balance", "bogus"])).is_err());
    }

    #[test]
    fn stats_command_polls_a_live_server() {
        // Boot an in-process server, generate some traffic, then drive
        // the `stats` dispatch path in every output format.
        let scenario = std::sync::Arc::new(DomainIlScenario::generate(
            &DatasetSpec::core50_tiny(),
            0xDA7A,
        ));
        let mut server = Server::start(scenario, FleetConfig::default(), ServeConfig::default())
            .expect("start server");
        let addr = server.local_addr().to_string();
        let mut conn = Connection::connect(&addr).expect("connect");
        let learner = chameleon_config_at(20, Precision::F32).expect("config");
        conn.create_session(
            1,
            per_user_spec(1, DatasetSpec::core50_tiny().num_classes, &learner, 1),
        )
        .expect("create");
        conn.run_to_completion(1, 8).expect("run");
        drop(conn);

        for format in [&["--json"][..], &["--expo"][..], &[][..]] {
            let mut argv = toks(&["stats", "--addr", &addr]);
            argv.extend(format.iter().map(ToString::to_string));
            dispatch(&argv).expect("stats poll");
        }
        // Watch mode with a bounded poll count terminates.
        dispatch(&toks(&[
            "stats",
            "--addr",
            &addr,
            "--watch",
            "--count",
            "2",
            "--interval",
            "1",
            "--json",
        ]))
        .expect("bounded watch");

        // The JSON document itself: step spans populated, shape greppable.
        let mut conn = Connection::connect(&addr).expect("reconnect");
        let observation = conn.observe().expect("observe");
        let json = observation_json(&observation);
        assert!(json.contains("\"stage\": \"step\""), "{json}");
        assert!(json.contains("\"fleet.batches\""), "{json}");
        let step_line = json
            .lines()
            .find(|l| l.contains("\"stage\": \"step\""))
            .expect("step span line");
        assert!(
            !step_line.contains("\"count\": 0"),
            "no step spans: {step_line}"
        );
        server.shutdown();

        // Option validation.
        assert!(dispatch(&toks(&["stats"])).is_err());
        assert!(dispatch(&toks(&["stats", "--addr", &addr, "--json", "--expo"])).is_err());
        assert!(dispatch(&toks(&["stats", "--addr", "not-an-address"])).is_err());
    }

    #[test]
    fn atomic_save_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("chameleon-cli-atomic-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("ckpt.bin");
        let path_str = path.to_str().expect("utf8 path");
        let save = toks(&[
            "train",
            "--dataset",
            "core50-tiny",
            "--method",
            "chameleon",
            "--buffer",
            "30",
            "--save",
            path_str,
        ]);
        dispatch(&save).expect("train+save");
        assert!(path.exists(), "checkpoint missing");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file left behind");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simtest_rejects_bad_options() {
        assert!(dispatch(&toks(&["simtest", "--seeds", "0"])).is_err());
        assert!(dispatch(&toks(&["simtest", "--seeds", "nope"])).is_err());
        assert!(dispatch(&toks(&["simtest", "--budget-secs", "-1"])).is_err());
        assert!(dispatch(&toks(&["simtest", "--replay", "many"])).is_err());
        assert!(dispatch(&toks(&["simtest", "--bogus", "1"])).is_err());
        assert!(dispatch(&toks(&["simtest", "--crash-seeds", "0"])).is_err());
        assert!(dispatch(&toks(&["simtest", "--crash-seeds", "x"])).is_err());
        assert!(dispatch(&toks(&["simtest", "--crash-replay", "x"])).is_err());
    }

    #[test]
    fn simtest_runs_a_crash_schedule_seed() {
        assert!(dispatch(&toks(&[
            "simtest",
            "--crash-seeds",
            "1",
            "--crash-start-seed",
            "4",
        ]))
        .is_ok());
    }

    #[test]
    fn simtest_soaks_and_replays_a_seed() {
        assert!(dispatch(&toks(&["simtest", "--seeds", "2"])).is_ok());
        assert!(dispatch(&toks(&["simtest", "--replay", "1"])).is_ok());
    }

    #[test]
    fn simtest_runs_a_balance_schedule_seed() {
        assert!(dispatch(&toks(&[
            "simtest",
            "--balance-seeds",
            "1",
            "--balance-start-seed",
            "2",
        ]))
        .is_ok());
        assert!(dispatch(&toks(&["simtest", "--balance-replay", "2"])).is_ok());
        assert!(dispatch(&toks(&["simtest", "--balance-seeds", "0"])).is_err());
        assert!(dispatch(&toks(&["simtest", "--balance-seeds", "x"])).is_err());
        assert!(dispatch(&toks(&["simtest", "--balance-replay", "x"])).is_err());
    }

    #[test]
    fn simtest_golden_regen_then_check_roundtrips() {
        let dir = std::env::temp_dir().join("chameleon-cli-golden-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let dir_str = dir.to_str().expect("utf8 path");
        // Checking a corpus that was never generated points at --regen-golden.
        let missing = dir.join("never-written");
        let err = dispatch(&toks(&[
            "simtest",
            "--check-golden",
            "--golden-dir",
            missing.to_str().expect("utf8 path"),
        ]))
        .expect_err("missing corpus must fail the gate");
        assert!(err.contains("regen-golden"), "{err}");
        dispatch(&toks(&[
            "simtest",
            "--regen-golden",
            "--golden-dir",
            dir_str,
        ]))
        .expect("regeneration succeeds");
        dispatch(&toks(&[
            "simtest",
            "--check-golden",
            "--golden-dir",
            dir_str,
        ]))
        .expect("freshly regenerated corpus is conformant");
        // A flipped byte without a version bump must trip the gate.
        let target = dir.join("wire_frames.golden");
        let mut text = std::fs::read_to_string(&target).expect("read corpus");
        let pos = text.rfind('0').expect("hex digit");
        text.replace_range(pos..=pos, "1");
        std::fs::write(&target, text).expect("write tampered corpus");
        let err = dispatch(&toks(&[
            "simtest",
            "--check-golden",
            "--golden-dir",
            dir_str,
        ]))
        .expect_err("tampered corpus must fail the gate");
        assert!(err.contains("drift"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn temp_sibling_path_stays_in_the_destination_directory() {
        use std::path::{Path, PathBuf};
        // An absolute nested target: the temp file must be its sibling,
        // never a CWD-relative orphan.
        assert_eq!(
            temp_sibling_path(Path::new("/a/b/ckpt.bin")),
            PathBuf::from("/a/b/.ckpt.bin.tmp")
        );
        assert_eq!(
            temp_sibling_path(Path::new("nested/dir/ckpt.bin")),
            PathBuf::from("nested/dir/.ckpt.bin.tmp")
        );
        // A bare filename has no parent; CWD-relative is then correct.
        assert_eq!(
            temp_sibling_path(Path::new("ckpt.bin")),
            PathBuf::from(".ckpt.bin.tmp")
        );
    }

    #[test]
    fn save_checkpoint_lands_in_a_nested_target_directory() {
        let root = std::env::temp_dir().join(format!("chameleon-cli-save-{}", std::process::id()));
        let dir = root.join("deep").join("nested");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let target = dir.join("ckpt.bin");
        dispatch(&toks(&[
            "train",
            "--dataset",
            "core50-tiny",
            "--seed",
            "3",
            "--save",
            target.to_str().expect("utf8 path"),
        ]))
        .expect("train --save with a nested target");
        assert!(target.is_file(), "checkpoint missing at the nested target");
        // Renamed into place: no temp sibling left behind, and nothing
        // dropped into the process CWD.
        assert!(!dir.join(".ckpt.bin.tmp").exists());
        assert!(!std::path::Path::new(".ckpt.bin.tmp").exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fleet_store_dir_spills_and_recovers_across_runs() {
        let dir = std::env::temp_dir().join(format!("chameleon-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_str = dir.to_str().expect("utf8 path").to_string();
        let base = [
            "fleet",
            "--dataset",
            "core50-tiny",
            "--sessions",
            "2",
            "--shards",
            "1",
            "--budget-mb",
            "0.02",
            "--store-dir",
            &dir_str,
        ];
        dispatch(&toks(&base)).expect("first durable fleet run");
        assert!(
            dir.join("MANIFEST").is_file(),
            "store directory missing its manifest"
        );
        // Second run recovers the sealed sessions and keeps serving.
        let mut with_json: Vec<&str> = base.to_vec();
        with_json.push("--json");
        dispatch(&toks(&with_json)).expect("recovered durable fleet run");
        std::fs::remove_dir_all(&dir).ok();
    }
}
