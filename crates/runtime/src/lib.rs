//! `chameleon-runtime`: the seam between real time and simulated time.
//!
//! The fleet and serving layers time-stamp work, reap idle connections,
//! and back off under backpressure. In production those behaviors read
//! the wall clock and sleep on it; under deterministic simulation
//! (`chameleon-simtest`, FoundationDB-style) they must instead read a
//! **virtual clock** that only moves when the harness advances it, so a
//! single u64 seed fully determines every timeout firing and every
//! scheduling decision — and any failure replays bit-identically from
//! its seed.
//!
//! * [`Clock`] — the trait both worlds implement: monotonic nanoseconds
//!   plus a `sleep` that either blocks the thread ([`WallClock`]) or
//!   advances virtual time ([`VirtualClock`]).
//! * [`SimRng`] — a splitmix64 sequence; the only randomness source the
//!   simulation harness is allowed to use.
//! * [`Runtime`] — how a concurrent component should execute: real
//!   threads ([`Runtime::Threads`]) or a single-threaded, seeded
//!   cooperative scheduler ([`Runtime::Sim`]).
//!
//! Everything here is `std`-only and dependency-free, like the rest of
//! the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source components borrow instead of calling
/// [`Instant::now`] / [`std::thread::sleep`] directly.
///
/// Implementations must be monotonic (`now_nanos` never decreases) and
/// thread-safe; beyond that the two worlds differ deliberately:
/// [`WallClock::sleep`] blocks the calling thread, while
/// [`VirtualClock::sleep`] advances virtual time instantly.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin.
    fn now_nanos(&self) -> u64;

    /// Waits out `duration` in this clock's notion of time.
    fn sleep(&self, duration: Duration);
}

/// Runs `f` between two paired monotonic readings of `clock`, returning
/// its result and the elapsed nanoseconds — the primitive span recorders
/// and metric blocks build on, so both worlds (wall and virtual) time a
/// region the same way.
pub fn timed<R>(clock: &dyn Clock, f: impl FnOnce() -> R) -> (R, u64) {
    let started = clock.now_nanos();
    let result = f();
    (result, clock.now_nanos().saturating_sub(started))
}

/// Production clock: [`Instant`]-based monotonic time and real
/// [`std::thread::sleep`].
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is the moment of construction.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }

    /// Convenience: a shareable `Arc<dyn Clock>` wall clock.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(Self::new())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// Simulation clock: an atomic nanosecond counter that only moves when
/// someone advances it.
///
/// `sleep(d)` advances the clock by `d` and returns immediately — under
/// simulation, waiting *is* advancing time. An optional `auto_tick`
/// makes every [`Clock::now_nanos`] read advance the clock by a fixed
/// amount, so code that measures durations (`t1 - t0`) observes
/// deterministic nonzero values instead of zero.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
    auto_tick: u64,
}

impl VirtualClock {
    /// A virtual clock starting at nanosecond 0 that only moves via
    /// [`VirtualClock::advance`] and [`Clock::sleep`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A virtual clock where every `now_nanos` read also advances time
    /// by `tick_nanos` — deterministic stand-in for "work takes time".
    pub fn with_auto_tick(tick_nanos: u64) -> Self {
        Self {
            nanos: AtomicU64::new(0),
            auto_tick: tick_nanos,
        }
    }

    /// Convenience: a shareable auto-ticking virtual clock.
    pub fn shared(tick_nanos: u64) -> Arc<VirtualClock> {
        Arc::new(Self::with_auto_tick(tick_nanos))
    }

    /// Moves virtual time forward by `duration`.
    pub fn advance(&self, duration: Duration) {
        self.advance_nanos(duration.as_nanos() as u64);
    }

    /// Moves virtual time forward by `nanos` nanoseconds.
    pub fn advance_nanos(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_nanos(&self) -> u64 {
        if self.auto_tick > 0 {
            self.nanos.fetch_add(self.auto_tick, Ordering::SeqCst) + self.auto_tick
        } else {
            self.nanos.load(Ordering::SeqCst)
        }
    }

    fn sleep(&self, duration: Duration) {
        self.advance(duration);
    }
}

/// The splitmix64 mixing function — the workspace-wide standard hash for
/// deriving independent seeds (session→shard assignment, per-session
/// fault plans, scheduler draws).
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic random sequence (splitmix64 stream). This is the
/// *only* entropy the simulation harness draws from, which is what makes
/// a failing run reproducible from its seed alone.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A sequence fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform draw in `0..bound` (`bound == 0` returns 0). The modulo
    /// bias is irrelevant at simulation bounds (tens of choices against
    /// a 64-bit draw) and keeping it branch-free keeps replay exact.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Bernoulli draw with probability `numer / denom`.
    pub fn chance(&mut self, numer: u64, denom: u64) -> bool {
        self.below(denom) < numer
    }
}

/// A seeded scheduler for single-threaded cooperative simulation: every
/// "which runnable task goes next" decision is one [`SimRng`] draw, and
/// all simulated time lives on one shared [`VirtualClock`].
#[derive(Debug)]
pub struct SimScheduler {
    seed: u64,
    rng: SimRng,
    clock: Arc<VirtualClock>,
}

/// Virtual nanoseconds each `now_nanos` read advances under simulation,
/// so measured durations are deterministic and nonzero (1µs per read).
pub const SIM_AUTO_TICK_NANOS: u64 = 1_000;

impl SimScheduler {
    /// A scheduler whose every decision is determined by `seed`, with a
    /// fresh auto-ticking [`VirtualClock`].
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: SimRng::new(splitmix64(seed ^ 0x5C4E_D01E)),
            clock: VirtualClock::shared(SIM_AUTO_TICK_NANOS),
        }
    }

    /// The seed this scheduler was built from (for failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The virtual clock all simulated components share.
    pub fn clock(&self) -> Arc<VirtualClock> {
        Arc::clone(&self.clock)
    }

    /// Picks which of `runnable` choices executes next.
    pub fn pick(&mut self, runnable: usize) -> usize {
        self.rng.below(runnable as u64) as usize
    }

    /// A derived seed for an auxiliary decision stream (e.g. op-script
    /// generation), independent of the scheduling draws.
    pub fn derive(&self, salt: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(salt))
    }
}

/// How a concurrent component should execute.
pub enum Runtime {
    /// Production: real `std::thread` workers and bounded `mpsc` queues,
    /// timed by a [`WallClock`].
    Threads,
    /// Deterministic simulation: no threads are spawned; the component
    /// queues work internally and a [`SimScheduler`] decides, draw by
    /// draw, which shard/queue makes progress, on a shared
    /// [`VirtualClock`].
    Sim(SimScheduler),
}

impl Runtime {
    /// Shorthand for a seeded simulation runtime.
    pub fn sim(seed: u64) -> Self {
        Self::Sim(SimScheduler::new(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now_nanos(), 5_000_000);
        clock.sleep(Duration::from_nanos(7));
        assert_eq!(clock.now_nanos(), 5_000_007);
    }

    #[test]
    fn auto_tick_makes_measured_durations_nonzero_and_deterministic() {
        let clock = VirtualClock::with_auto_tick(1_000);
        let t0 = clock.now_nanos();
        let t1 = clock.now_nanos();
        assert_eq!(t1 - t0, 1_000);
        let clock2 = VirtualClock::with_auto_tick(1_000);
        assert_eq!(clock2.now_nanos(), t0);
    }

    #[test]
    fn sim_rng_replays_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn rng_below_respects_bound() {
        let mut rng = SimRng::new(7);
        for bound in [1u64, 2, 3, 17] {
            for _ in 0..50 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn scheduler_decisions_replay_from_seed() {
        let mut a = SimScheduler::new(0xFEED);
        let mut b = SimScheduler::new(0xFEED);
        let picks_a: Vec<usize> = (0..64).map(|_| a.pick(5)).collect();
        let picks_b: Vec<usize> = (0..64).map(|_| b.pick(5)).collect();
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().any(|&p| p != picks_a[0]), "degenerate rng");
    }

    #[test]
    fn derived_seeds_differ_by_salt_but_replay() {
        let s = SimScheduler::new(9);
        assert_eq!(s.derive(1), SimScheduler::new(9).derive(1));
        assert_ne!(s.derive(1), s.derive(2));
    }

    #[test]
    fn timed_measures_exactly_one_tick_on_a_virtual_clock() {
        let clock = VirtualClock::shared(250);
        let (value, elapsed) = timed(clock.as_ref(), || 42);
        assert_eq!(value, 42);
        // Two paired reads of a 250 ns auto-tick clock: exactly one
        // tick elapses between them.
        assert_eq!(elapsed, 250);
    }
}
