//! The budgeted soak runner: sweep a seed range through the explorer
//! until the range or the wall-clock budget is exhausted.
//!
//! Soaking trades per-seed depth for interleaving coverage: every seed
//! is a new op script, fault plan, shard count, and scheduler schedule.
//! The budget makes the sweep CI-safe — a slow machine checks fewer
//! seeds instead of timing out — while the report records exactly which
//! contiguous range was covered so a follow-up run can resume past it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use chameleon_stream::DomainIlScenario;

use crate::explorer::{self, SeedOutcome};

/// What to sweep and for how long.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// First seed checked.
    pub start_seed: u64,
    /// Seeds requested (the sweep may stop early on budget).
    pub seeds: u64,
    /// Wall-clock budget; `None` means run the full range.
    pub budget: Option<Duration>,
}

/// Outcome of one soak sweep.
#[derive(Clone, Debug, Default)]
pub struct SoakReport {
    /// Seeds actually checked (contiguous from `start_seed`).
    pub checked: u64,
    /// Seeds that held every invariant.
    pub passed: u64,
    /// Seeds that ran under an injected fault plan.
    pub faulted: u64,
    /// Events observed across all runs of all checked seeds.
    pub events: u64,
    /// `(seed, violation)` for every failing seed, in seed order.
    pub failures: Vec<(u64, String)>,
    /// Whether the budget ended the sweep before the range did.
    pub budget_exhausted: bool,
}

impl SoakReport {
    /// Whether every checked seed passed.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Sweeps `config.seeds` seeds from `config.start_seed`, stopping early
/// only when the budget runs out. Calls `progress` after every seed
/// with its outcome.
pub fn run(
    scenario: &Arc<DomainIlScenario>,
    config: &SoakConfig,
    mut progress: impl FnMut(u64, &Result<SeedOutcome, String>),
) -> SoakReport {
    let started = Instant::now();
    let mut report = SoakReport::default();
    for seed in config.start_seed..config.start_seed.saturating_add(config.seeds) {
        if let Some(budget) = config.budget {
            if report.checked > 0 && started.elapsed() >= budget {
                report.budget_exhausted = true;
                break;
            }
        }
        let outcome = explorer::check_seed(scenario, seed);
        report.checked += 1;
        match &outcome {
            Ok(o) => {
                report.passed += 1;
                report.faulted += u64::from(o.faulted);
                report.events += o.events;
            }
            Err(e) => report.failures.push((seed, e.clone())),
        }
        progress(seed, &outcome);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_stream::DatasetSpec;

    fn scenario() -> Arc<DomainIlScenario> {
        Arc::new(DomainIlScenario::generate(
            &DatasetSpec::core50_tiny(),
            0x50AC,
        ))
    }

    #[test]
    fn sweep_covers_the_requested_range_and_passes() {
        let scenario = scenario();
        let config = SoakConfig {
            start_seed: 10,
            seeds: 3,
            budget: None,
        };
        let mut seen = Vec::new();
        let report = run(&scenario, &config, |seed, _| seen.push(seed));
        assert_eq!(seen, vec![10, 11, 12]);
        assert_eq!(report.checked, 3);
        assert_eq!(report.passed, 3);
        assert!(report.all_passed(), "{:?}", report.failures);
        assert!(!report.budget_exhausted);
        assert!(report.faulted >= 1, "odd seed 11 should inject faults");
    }

    #[test]
    fn zero_budget_still_checks_at_least_one_seed() {
        let scenario = scenario();
        let config = SoakConfig {
            start_seed: 0,
            seeds: 50,
            budget: Some(Duration::ZERO),
        };
        let report = run(&scenario, &config, |_, _| {});
        assert_eq!(report.checked, 1, "budget must not starve the sweep");
        assert!(report.budget_exhausted);
    }
}
