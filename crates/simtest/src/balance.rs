//! The migration-schedule explorer: online session migrations injected
//! at seeded op boundaries, cross-checked against an unmigrated run.
//!
//! One seed pins a multi-shard sim engine, an op script, a fault plan,
//! and a *migration plan* interleaved with the ops: before the op at
//! each planned index, one session is moved to a planned target shard
//! with [`FleetEngine::migrate_session`] — the exact primitive the
//! `chameleon-balance` rebalancer drives in production.
//!
//! The invariant proved per seed is **migration invisibility**, the
//! balance-tier sibling of the route explorer's placement invisibility:
//! a migration is export + import, and both are specified to behave
//! like a local `Evict` at the same command boundary (observable state
//! moves bit for bit; transient training state restarts as the
//! checkpoint format documents). So the reference run replays the
//! migrated run's trace as plain `Evict` commands on an identical
//! engine and asserts every per-session observable and every final
//! `CHAMFLT1` byte is identical — no matter which shards the session
//! visited. A same-seed replay must also reproduce itself bit for bit,
//! which is what lets a `Balancer` policy (a deterministic function of
//! load) run in production without making outcomes schedule-dependent.

use std::collections::HashMap;
use std::sync::Arc;

use chameleon_fleet::{FleetConfig, FleetEngine, SessionCommand, SessionEventKind, SessionId};
use chameleon_replay::crc32;
use chameleon_runtime::{splitmix64, SimRng};
use chameleon_stream::DomainIlScenario;

use crate::digest::{encode_event, ShardScope};
use crate::script::{self, Op};

/// Seed-derived migration plan: `(op_index, session, target_shard)`
/// triples, applied before the op at `op_index`. Guaranteed non-empty (a
/// plan with no migrations would not test the balancer's primitive at
/// all). Targets may equal the session's current shard — the engine
/// treats that as a no-op skip, and the explorer must tolerate it.
pub fn migration_plan(seed: u64, ops: usize, shards: usize) -> Vec<(usize, SessionId, usize)> {
    let mut rng = SimRng::new(splitmix64(seed ^ 0xBA1A));
    let mut plan = Vec::new();
    for index in 1..ops {
        if rng.chance(1, 5) {
            plan.push((
                index,
                rng.below(script::SESSION_POOL),
                rng.below(shards as u64) as usize,
            ));
        }
    }
    if plan.is_empty() {
        plan.push((
            ops / 2,
            rng.below(script::SESSION_POOL),
            rng.below(shards as u64) as usize,
        ));
    }
    plan
}

/// What one passing migration-schedule seed looked like.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BalanceSeedOutcome {
    /// The seed that pins this case.
    pub seed: u64,
    /// Ops in the generated script.
    pub ops: usize,
    /// Shards in the sim engine.
    pub shards: usize,
    /// Migrations actually performed (export + import round-trips).
    pub migrations: u64,
    /// Planned moves skipped (session unknown yet, or already on the
    /// target shard).
    pub skipped: u64,
    /// Whether the case ran under an injected fault plan.
    pub faulted: bool,
    /// CRC32 over every per-session observable log, in id order.
    pub log_digest: u32,
    /// CRC32 over every session's final `CHAMFLT1` blob, in id order.
    pub checkpoint_crc: u32,
}

/// The migrations a run actually performed: `(op_index, session)` in
/// apply order. The reference replays this as `Evict` commands.
type Trace = Vec<(usize, SessionId)>;

fn engine_for(scenario: &Arc<DomainIlScenario>, seed: u64, shards: usize) -> FleetEngine {
    FleetEngine::new_sim(
        Arc::clone(scenario),
        FleetConfig {
            num_shards: shards,
            queue_depth: 4,
            budget_bytes: u64::MAX,
            assignment_seed: splitmix64(seed ^ 0xA551),
            faults: script::fault_plan(seed),
        },
        seed,
    )
}

/// Applies one script op, folding refusals and acknowledgements into the
/// per-session logs, then probes the touched session with a checkpoint
/// so its post-op state is part of the compared history.
fn apply_op(
    engine: &mut FleetEngine,
    logs: &mut HashMap<SessionId, Vec<u8>>,
    seed: u64,
    op: &Op,
) -> Result<(), String> {
    let session = op.session();
    let submitted = match op {
        Op::Create { session } => {
            engine.create_blocking(*session, script::session_spec(seed, *session))
        }
        Op::Step { session, batches } => {
            engine.command_blocking(*session, SessionCommand::Step { batches: *batches })
        }
        Op::Checkpoint { session } => engine.command_blocking(*session, SessionCommand::Checkpoint),
        Op::Evict { session } => engine.command_blocking(*session, SessionCommand::Evict),
        Op::Evaluate { session } => engine.command_blocking(*session, SessionCommand::Evaluate),
    };
    if let Err(error) = submitted {
        let log = logs.entry(session).or_default();
        log.push(0xFF);
        log.extend_from_slice(error.to_string().as_bytes());
    }
    for event in engine.drain_pending() {
        let log = logs.entry(event.session).or_default();
        encode_event(log, &event, ShardScope::Exclude);
    }
    if engine.known(session) {
        engine
            .command_blocking(session, SessionCommand::Checkpoint)
            .map_err(|e| format!("checkpoint probe refused: {e}"))?;
        for event in engine.drain_pending() {
            let log = logs.entry(event.session).or_default();
            encode_event(log, &event, ShardScope::Exclude);
        }
    }
    Ok(())
}

/// Final `CHAMFLT1` blob of every known session, in id order.
fn final_blobs(engine: &mut FleetEngine) -> Result<Vec<(SessionId, Vec<u8>)>, String> {
    let mut blobs = Vec::new();
    for id in 0..script::SESSION_POOL {
        if !engine.known(id) {
            continue;
        }
        engine
            .command_blocking(id, SessionCommand::Checkpoint)
            .map_err(|e| format!("final checkpoint refused: {e}"))?;
        let blob = engine
            .drain_pending()
            .into_iter()
            .find_map(|e| match e.kind {
                SessionEventKind::Checkpointed(blob) => Some(blob),
                _ => None,
            })
            .ok_or_else(|| format!("session {id}: final checkpoint produced no blob"))?;
        blobs.push((id, blob));
    }
    Ok(blobs)
}

/// One migrated run: the script with the plan's migrations applied at
/// their boundaries. Returns the logs, the performed-migration trace,
/// the skip count, and the final blobs.
#[allow(clippy::type_complexity)]
fn run_migrated(
    scenario: &Arc<DomainIlScenario>,
    seed: u64,
    shards: usize,
    ops: &[Op],
    plan: &[(usize, SessionId, usize)],
) -> Result<
    (
        HashMap<SessionId, Vec<u8>>,
        Trace,
        u64,
        Vec<(SessionId, Vec<u8>)>,
    ),
    String,
> {
    let mut engine = engine_for(scenario, seed, shards);
    let mut logs: HashMap<SessionId, Vec<u8>> = HashMap::new();
    let mut trace = Trace::new();
    let mut skipped = 0u64;
    for (index, op) in ops.iter().enumerate() {
        for (at, session, to) in plan.iter().filter(|(at, _, _)| *at == index) {
            if !engine.known(*session) {
                skipped += 1;
                continue;
            }
            match engine.migrate_session(*session, *to) {
                Ok(true) => trace.push((*at, *session)),
                Ok(false) => skipped += 1,
                Err(e) => return Err(format!("migrate session {session} -> {to}: {e}")),
            }
        }
        apply_op(&mut engine, &mut logs, seed, op)
            .map_err(|e| format!("op {index} ({op:?}): {e}"))?;
    }
    let blobs = final_blobs(&mut engine)?;
    Ok((logs, trace, skipped, blobs))
}

/// The unmigrated reference: an identical engine running the same
/// script, with the migrated run's trace replayed as local `Evict`
/// commands at the same boundaries (evict is idempotent when a session
/// is already cold). Machinery acknowledgements stay out of the
/// compared history on both sides: `migrate_session` consumes its own
/// export/import events, and the reference drains evict events to a bin.
#[allow(clippy::type_complexity)]
fn run_reference(
    scenario: &Arc<DomainIlScenario>,
    seed: u64,
    shards: usize,
    ops: &[Op],
    trace: &Trace,
) -> Result<(HashMap<SessionId, Vec<u8>>, Vec<(SessionId, Vec<u8>)>), String> {
    let mut engine = engine_for(scenario, seed, shards);
    let mut logs: HashMap<SessionId, Vec<u8>> = HashMap::new();
    for (index, op) in ops.iter().enumerate() {
        for (_, session) in trace.iter().filter(|(at, _)| *at == index) {
            let _ = engine.command_blocking(*session, SessionCommand::Evict);
            engine.drain_pending();
        }
        apply_op(&mut engine, &mut logs, seed, op)
            .map_err(|e| format!("reference op {index} ({op:?}): {e}"))?;
    }
    let blobs = final_blobs(&mut engine)?;
    Ok((logs, blobs))
}

/// Runs the full migration-invisibility + replay-determinism check for
/// one seed.
///
/// # Errors
///
/// A human-readable description of the first violated invariant; the
/// seed reproduces it bit-identically.
pub fn check_balance_seed(
    scenario: &Arc<DomainIlScenario>,
    seed: u64,
) -> Result<BalanceSeedOutcome, String> {
    let ops = script::generate(seed);
    let shards = 2 + (splitmix64(seed ^ 0x5EED) % 2) as usize;
    let plan = migration_plan(seed, ops.len(), shards);

    let (logs, trace, skipped, blobs) = run_migrated(scenario, seed, shards, &ops, &plan)
        .map_err(|e| format!("balance seed {seed}: {e}"))?;
    let (replay_logs, replay_trace, replay_skipped, replay_blobs) =
        run_migrated(scenario, seed, shards, &ops, &plan)
            .map_err(|e| format!("balance seed {seed} [replay]: {e}"))?;
    if trace != replay_trace || skipped != replay_skipped {
        return Err(format!(
            "balance seed {seed}: replay performed a different migration trace"
        ));
    }
    if logs != replay_logs || blobs != replay_blobs {
        return Err(format!(
            "balance seed {seed}: same-seed migrated replay diverged"
        ));
    }

    let (ref_logs, ref_blobs) = run_reference(scenario, seed, shards, &ops, &trace)
        .map_err(|e| format!("balance seed {seed} [reference]: {e}"))?;
    for id in 0..script::SESSION_POOL {
        if logs.get(&id) != ref_logs.get(&id) {
            return Err(format!(
                "balance seed {seed}: session {id} history diverges between the \
                 migrated run and the evict-only reference"
            ));
        }
    }
    if blobs != ref_blobs {
        return Err(format!(
            "balance seed {seed}: final checkpoint bytes diverge between the \
             migrated run and the evict-only reference"
        ));
    }

    let mut log_concat = Vec::new();
    for id in 0..script::SESSION_POOL {
        if let Some(log) = logs.get(&id) {
            log_concat.extend_from_slice(&id.to_le_bytes());
            log_concat.extend_from_slice(log);
        }
    }
    let mut blob_concat = Vec::new();
    for (id, blob) in &blobs {
        blob_concat.extend_from_slice(&id.to_le_bytes());
        blob_concat.extend_from_slice(blob);
    }
    Ok(BalanceSeedOutcome {
        seed,
        ops: ops.len(),
        shards,
        migrations: trace.len() as u64,
        skipped,
        faulted: script::fault_plan(seed).is_some(),
        log_digest: crc32(&log_concat),
        checkpoint_crc: crc32(&blob_concat),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_stream::DatasetSpec;

    fn scenario() -> Arc<DomainIlScenario> {
        Arc::new(DomainIlScenario::generate(
            &DatasetSpec::core50_tiny(),
            0x51A7E57,
        ))
    }

    #[test]
    fn migration_plans_are_seeded_and_nonempty() {
        for seed in 0..32u64 {
            let a = migration_plan(seed, 20, 3);
            let b = migration_plan(seed, 20, 3);
            assert_eq!(a, b);
            assert!(!a.is_empty());
            assert!(a
                .iter()
                .all(|&(_, s, to)| s < script::SESSION_POOL && to < 3));
        }
        assert_ne!(migration_plan(1, 20, 3), migration_plan(2, 20, 3));
    }

    #[test]
    fn a_clean_and_a_faulted_balance_seed_pass_and_reproduce() {
        let scenario = scenario();
        for seed in [0u64, 1] {
            let a = check_balance_seed(&scenario, seed).expect("invariants hold");
            let b = check_balance_seed(&scenario, seed).expect("invariants hold");
            assert_eq!(a, b, "outcome of balance seed {seed} not reproducible");
            assert_eq!(a.faulted, seed % 2 == 1);
        }
    }

    #[test]
    fn schedules_actually_migrate() {
        let scenario = scenario();
        let mut moved = 0u64;
        for seed in 0..4u64 {
            let outcome = check_balance_seed(&scenario, seed).expect("pass");
            moved += outcome.migrations;
        }
        assert!(moved > 0, "no seed in 0..4 ever migrated a session");
    }
}
