//! `chameleon-simtest` — deterministic simulation testing for the
//! fleet/serve stack, in the FoundationDB style.
//!
//! A single `u64` seed pins a complete test case end to end: the op
//! script a fleet engine executes ([`script`]), the fault plan it runs
//! under, the shard count, and — through the engine's own seeded
//! [`chameleon_runtime::SimScheduler`] — every queue-drain interleaving
//! and virtual-clock reading inside it. Re-running a seed reproduces a
//! failure bit for bit; sweeping seeds explores interleavings that a
//! wall-clock threaded run would only hit by luck.
//!
//! The crate has four layers:
//!
//! - [`script`] — seeded generation of session-lifecycle op scripts and
//!   the fault plans / session specs that ride along;
//! - [`digest`] — stable byte encodings and CRC32 digests of every
//!   observable (events, checkpoint blobs, evaluation reports);
//! - [`explorer`] — the invariant checker: one seed ⇒ the same script
//!   on a 1-shard engine, a K-shard engine, and a same-seed replay,
//!   asserting shard-count invariance after every prefix and replay
//!   determinism at the end;
//! - [`soak`] — the budgeted seed sweep, and [`golden`] — the committed
//!   conformance corpus that pins wire frames, checkpoint bytes, and
//!   metric digests against silent format drift;
//! - [`crash`] — the durable-store crash schedule: kill a store-attached
//!   engine at every eviction boundary (optionally on a hostile disk),
//!   recover, and assert every session comes back to exactly its last
//!   sealed checkpoint with bit-identical subsequent training;
//! - [`balance`] — the migration-schedule explorer: online session
//!   migrations (the `chameleon-balance` primitive) injected at seeded
//!   op boundaries, proven observably identical to local evictions at
//!   the same boundaries.
//!
//! The `chameleon simtest` CLI subcommand fronts the soak runner and
//! the golden corpus gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod crash;
pub mod digest;
pub mod explorer;
pub mod golden;
pub mod multinode;
pub mod script;
pub mod soak;

pub use balance::{check_balance_seed, migration_plan, BalanceSeedOutcome};
pub use crash::{check_crash_seed, CrashOutcome};
pub use digest::{digest_events, digest_spans, encode_event, ShardScope};
pub use explorer::{check_seed, check_seed_at, SeedOutcome};
pub use golden::{
    derive_corpus, diff, golden_scenario, parse, render, GoldenFile, GOLDEN_FILE_NAMES,
};
pub use multinode::{check_route_seed, disruption_plan, Disruption, RouteSeedOutcome};
pub use script::{generate, Op};
pub use soak::{SoakConfig, SoakReport};
