//! Seeded generation of session-lifecycle op scripts.
//!
//! A script is the *workload* half of a simulation case: the sequence of
//! engine-level operations (`create`, `step`, `checkpoint`, `evict`,
//! `evaluate`, plus deliberate misuse of unknown/duplicate ids) that the
//! explorer applies identically to every engine under comparison. The
//! *scheduling* half — which shard queue progresses when — comes from
//! the engine's own seeded scheduler, so one `(script seed, scheduler
//! seed)` pair pins a complete run.

use chameleon_core::{ChameleonConfig, Precision};
use chameleon_faults::FaultPlan;
use chameleon_fleet::{SessionId, SessionSpec};
use chameleon_runtime::{splitmix64, SimRng};
use chameleon_stream::{DatasetSpec, PreferenceProfile, StreamConfig};

/// One engine-level operation in a generated lifecycle script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Create `session` (may deliberately duplicate an earlier create).
    Create {
        /// Target session id.
        session: SessionId,
    },
    /// Deliver up to `batches` stream batches (restores a cold session).
    Step {
        /// Target session id.
        session: SessionId,
        /// Batches to request.
        batches: usize,
    },
    /// Serialize the session to its `CHAMFLT1` blob.
    Checkpoint {
        /// Target session id.
        session: SessionId,
    },
    /// Force the session out of residency.
    Evict {
        /// Target session id.
        session: SessionId,
    },
    /// Evaluate on the scenario test set.
    Evaluate {
        /// Target session id.
        session: SessionId,
    },
}

impl Op {
    /// The session this op addresses.
    pub fn session(&self) -> SessionId {
        match *self {
            Op::Create { session }
            | Op::Step { session, .. }
            | Op::Checkpoint { session }
            | Op::Evict { session }
            | Op::Evaluate { session } => session,
        }
    }
}

/// Sessions a script draws its targets from. Small on purpose: lifecycle
/// bugs live in sessions *interacting* (shared shards, LRU order,
/// duplicate ids), not in session count.
pub const SESSION_POOL: u64 = 5;

/// Generates the op script for `seed`: ~12–30 ops over a small session
/// pool, weighted toward steps, with occasional checkpoint/evict churn,
/// rare evaluations, and deliberate invalid targets (never-created ids,
/// duplicate creates) so failure paths are exercised too.
pub fn generate(seed: u64) -> Vec<Op> {
    let mut rng = SimRng::new(splitmix64(seed ^ 0x5C41_9701));
    let len = 12 + (rng.below(19) as usize);
    let mut created: Vec<SessionId> = Vec::new();
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let target_known = !created.is_empty() && rng.chance(9, 10);
        let session = if target_known {
            created[rng.below(created.len() as u64) as usize]
        } else {
            rng.below(SESSION_POOL)
        };
        let op = if created.is_empty() || (!created.contains(&session) && rng.chance(3, 4)) {
            Op::Create { session }
        } else {
            match rng.below(16) {
                // A duplicate create: the engine must refuse it
                // identically at every shard count.
                0 => Op::Create { session },
                1..=9 => Op::Step {
                    session,
                    batches: 1 + rng.below(7) as usize,
                },
                10..=11 => Op::Checkpoint { session },
                12..=13 => Op::Evict { session },
                _ => Op::Evaluate { session },
            }
        };
        if let Op::Create { session } = op {
            if !created.contains(&session) {
                created.push(session);
            }
        }
        ops.push(op);
    }
    ops
}

/// The fault plan a script seed runs under: every other seed injects
/// memory bit flips at the paper's harsh-DRAM rate, so roughly half the
/// soak explores the fault-quarantine machinery and half pins the clean
/// path.
pub fn fault_plan(seed: u64) -> Option<FaultPlan> {
    if seed % 2 == 1 {
        Some(FaultPlan::bit_flips(splitmix64(seed ^ 0xFA17), 1e-4))
    } else {
        None
    }
}

/// The *file* fault plan a crash-schedule seed runs its session store
/// under: every other seed simulates a hostile disk (torn tails at power
/// loss, lying write caches, transient short reads, a stray media bit
/// flip in the unsynced tail), the rest pin the clean-disk path. Same
/// even/odd split as [`fault_plan`] so half the sweep is adversarial.
pub fn file_fault_plan(seed: u64) -> Option<FaultPlan> {
    if seed % 2 == 1 {
        Some(FaultPlan::file_faults(
            splitmix64(seed ^ 0xF11E),
            chameleon_faults::FileFaultModel {
                torn_write_prob: 0.6,
                partial_fsync_prob: 0.3,
                short_read_prob: 0.3,
                bit_flip_prob: 0.4,
            },
        ))
    } else {
        None
    }
}

/// The per-session spec every run of `seed` uses — same construction as
/// the CLI's per-user specs (rotating 3-class skew, derived seeds), so
/// simulation findings transfer to the served fleet.
pub fn session_spec(seed: u64, session: SessionId) -> SessionSpec {
    session_spec_at(seed, session, Precision::F32)
}

/// [`session_spec`] with an explicit latent-codec precision — the
/// quantized soak slice and golden corpus pin their specs through this,
/// keeping every other field identical to the unquantized script so a
/// quantized run is a precision-only ablation.
pub fn session_spec_at(seed: u64, session: SessionId, precision: Precision) -> SessionSpec {
    let classes = DatasetSpec::core50_tiny().num_classes;
    let base = (session as usize * 3) % classes;
    SessionSpec {
        learner: ChameleonConfig {
            long_term_capacity: 30,
            precision,
            ..ChameleonConfig::default()
        },
        stream: StreamConfig {
            preference: PreferenceProfile::Skewed {
                preferred: vec![base, (base + 1) % classes, (base + 2) % classes],
                boost: 8.0,
            },
            ..StreamConfig::default()
        },
        learner_seed: splitmix64(seed) ^ session,
        stream_seed: splitmix64(seed ^ 0x57AE).wrapping_add(session * 0x517C),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_replay_from_their_seed() {
        for seed in 0..50 {
            assert_eq!(generate(seed), generate(seed));
        }
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn scripts_start_with_a_create_and_stay_in_pool_bounds() {
        for seed in 0..200 {
            let ops = generate(seed);
            assert!((12..=30).contains(&ops.len()));
            assert!(matches!(ops[0], Op::Create { .. }), "seed {seed}");
            for op in &ops {
                assert!(op.session() < SESSION_POOL);
            }
        }
    }

    #[test]
    fn scripts_cover_every_op_kind_across_seeds() {
        let mut saw = [false; 5];
        for seed in 0..100 {
            for op in generate(seed) {
                match op {
                    Op::Create { .. } => saw[0] = true,
                    Op::Step { .. } => saw[1] = true,
                    Op::Checkpoint { .. } => saw[2] = true,
                    Op::Evict { .. } => saw[3] = true,
                    Op::Evaluate { .. } => saw[4] = true,
                }
            }
        }
        assert_eq!(saw, [true; 5], "op mix degenerate");
    }

    #[test]
    fn fault_plans_alternate_and_replay() {
        assert!(fault_plan(0).is_none());
        assert!(fault_plan(1).is_some());
        assert_eq!(fault_plan(3), fault_plan(3));
        assert_ne!(
            fault_plan(1).expect("odd").seed,
            fault_plan(3).expect("odd").seed
        );
    }

    #[test]
    fn file_fault_plans_alternate_and_replay() {
        assert!(file_fault_plan(0).is_none());
        let plan = file_fault_plan(1).expect("odd seeds get a hostile disk");
        assert!(!plan.file.is_zero());
        assert!(plan.memory.is_zero(), "file plans must not flip memory");
        assert_eq!(file_fault_plan(5), file_fault_plan(5));
        assert_ne!(
            file_fault_plan(1).expect("odd").seed,
            file_fault_plan(3).expect("odd").seed
        );
    }

    #[test]
    fn session_specs_differ_per_session_but_replay() {
        assert_eq!(session_spec(9, 1), session_spec(9, 1));
        assert_ne!(
            session_spec(9, 1).stream_seed,
            session_spec(9, 2).stream_seed
        );
    }
}
