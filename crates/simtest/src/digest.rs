//! Stable byte encodings and CRC32 digests of simulation observables.
//!
//! Two runs are "identical" when these digests match: every field of
//! every event (including float bit patterns and full checkpoint blobs)
//! feeds the digest through a fixed little-endian encoding, so any
//! divergence — a reordered event, one flipped accuracy bit — changes
//! the result.

use chameleon_fleet::{SessionEvent, SessionEventKind};
use chameleon_obs::{Stage, StageStats};
use chameleon_replay::crc32;

/// Whether shard ids participate in an event digest.
///
/// Within one engine configuration the shard id is part of the
/// observable (replay determinism must reproduce it); across different
/// shard counts it is expected to differ, so invariance comparisons
/// exclude it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardScope {
    /// Include `event.shard` in the digest.
    Include,
    /// Exclude it (cross-shard-count comparisons).
    Exclude,
}

/// Appends one event's stable encoding to `buf`.
pub fn encode_event(buf: &mut Vec<u8>, event: &SessionEvent, scope: ShardScope) {
    buf.extend_from_slice(&event.session.to_le_bytes());
    buf.extend_from_slice(&event.correlation.to_le_bytes());
    if scope == ShardScope::Include {
        buf.extend_from_slice(&(event.shard as u64).to_le_bytes());
    }
    match &event.kind {
        SessionEventKind::Created => buf.push(0),
        SessionEventKind::Stepped { delivered, done } => {
            buf.push(1);
            buf.extend_from_slice(&(*delivered as u64).to_le_bytes());
            buf.push(u8::from(*done));
        }
        SessionEventKind::Evaluated(report) => {
            buf.push(2);
            buf.extend_from_slice(&report.acc_all.to_bits().to_le_bytes());
            buf.extend_from_slice(&(report.per_domain.len() as u64).to_le_bytes());
            for &v in &report.per_domain {
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            buf.extend_from_slice(&(report.per_class.len() as u64).to_le_bytes());
            for &v in &report.per_class {
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            buf.extend_from_slice(&report.memory_overhead_mb.to_bits().to_le_bytes());
        }
        SessionEventKind::Checkpointed(blob) => {
            buf.push(3);
            buf.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            buf.extend_from_slice(blob);
        }
        SessionEventKind::Evicted => buf.push(4),
        SessionEventKind::Failed(reason) => {
            buf.push(5);
            buf.extend_from_slice(&(reason.len() as u64).to_le_bytes());
            buf.extend_from_slice(reason.as_bytes());
        }
        SessionEventKind::Exported(blob) => {
            buf.push(6);
            buf.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            buf.extend_from_slice(blob);
        }
        SessionEventKind::Imported => buf.push(7),
    }
}

/// CRC32 digest of an event log under the given shard scope.
pub fn digest_events<'a>(
    events: impl IntoIterator<Item = &'a SessionEvent>,
    scope: ShardScope,
) -> u32 {
    let mut buf = Vec::new();
    for event in events {
        encode_event(&mut buf, event, scope);
    }
    crc32(&buf)
}

/// CRC32 digest of per-stage span aggregates (an
/// [`chameleon_obs::Observer`] snapshot): stage id, count, total, max,
/// and every histogram bucket feed the digest, so the virtual-clock span
/// timings of a simulation run are pinned alongside its event log.
pub fn digest_spans(spans: &[(Stage, StageStats)]) -> u32 {
    let mut buf = Vec::new();
    for (stage, stats) in spans {
        buf.push(stage.id());
        buf.extend_from_slice(&stats.count.to_le_bytes());
        buf.extend_from_slice(&stats.total_nanos.to_le_bytes());
        buf.extend_from_slice(&stats.max_nanos.to_le_bytes());
        for bucket in stats.histogram.buckets {
            buf.extend_from_slice(&bucket.to_le_bytes());
        }
    }
    crc32(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: SessionEventKind) -> SessionEvent {
        SessionEvent {
            session: 3,
            shard: 1,
            correlation: 9,
            kind,
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = vec![
            event(SessionEventKind::Created),
            event(SessionEventKind::Stepped {
                delivered: 4,
                done: false,
            }),
        ];
        let mut b = a.clone();
        assert_eq!(
            digest_events(&a, ShardScope::Include),
            digest_events(&b, ShardScope::Include)
        );
        b[1].kind = SessionEventKind::Stepped {
            delivered: 5,
            done: false,
        };
        assert_ne!(
            digest_events(&a, ShardScope::Include),
            digest_events(&b, ShardScope::Include)
        );
    }

    #[test]
    fn shard_scope_controls_shard_sensitivity() {
        let a = vec![event(SessionEventKind::Evicted)];
        let mut b = a.clone();
        b[0].shard = 0;
        assert_eq!(
            digest_events(&a, ShardScope::Exclude),
            digest_events(&b, ShardScope::Exclude)
        );
        assert_ne!(
            digest_events(&a, ShardScope::Include),
            digest_events(&b, ShardScope::Include)
        );
    }

    #[test]
    fn checkpoint_blob_bytes_feed_the_digest() {
        let a = vec![event(SessionEventKind::Checkpointed(vec![1, 2, 3]))];
        let b = vec![event(SessionEventKind::Checkpointed(vec![1, 2, 4]))];
        assert_ne!(
            digest_events(&a, ShardScope::Exclude),
            digest_events(&b, ShardScope::Exclude)
        );
    }
}
