//! Crash-schedule exploration of the durable session store.
//!
//! One seed pins one complete crash case: a generated lifecycle script
//! (`crate::script`), a scheduler seed, and a file-fault plan for the
//! store's disk ([`script::file_fault_plan`] — odd seeds get torn
//! writes, lying fsyncs, short reads, and tail bit flips). For that seed
//! the explorer:
//!
//! 1. runs the script **uninterrupted** against a store-attached sim
//!    engine on a clean disk, recording every sealed `CHAMSEG1` record
//!    (the baseline: what each eviction durably promised);
//! 2. replays the script and **kills the engine at every eviction
//!    boundary** — after the k-th store append, for every k — simulating
//!    power loss (non-durable tail torn/flipped per the fault plan);
//! 3. reopens the directory, runs [`FleetEngine::recover`], and asserts
//!    the recovery contract: every surviving sealed record is
//!    bit-identical to the baseline's record at the same `(session,
//!    seq)`, every recovered session serves exactly its last sealed
//!    checkpoint, and training *continued* from recovery is
//!    bit-identical to a control session restored directly from that
//!    sealed blob (the store is observably absent from learning).
//!
//! A violation message always embeds the seed, so any failure replays
//! with `chameleon simtest --crash-replay <seed>`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use chameleon_fleet::{
    FleetConfig, FleetEngine, SessionCheckpoint, SessionCommand, SessionEventKind,
};
use chameleon_runtime::{splitmix64, Runtime};
use chameleon_store::{SharedStore, StoreConfig};
use chameleon_stream::DomainIlScenario;

use crate::script::{self, Op};

/// Batches each recovered session trains after recovery for the
/// bit-identical-continuation check.
const CONTINUE_BATCHES: usize = 3;

/// What one passing crash seed looked like.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashOutcome {
    /// The seed that pins this case.
    pub seed: u64,
    /// Ops in the generated script.
    pub ops: usize,
    /// Sealed appends the uninterrupted baseline produced (= eviction
    /// boundaries the schedule crashed at).
    pub boundaries: usize,
    /// Sessions recovered, summed across every crash boundary.
    pub sessions_recovered: u64,
    /// Sealed records lost to torn tails / lying fsyncs, summed across
    /// boundaries (only possible under a file-fault plan).
    pub records_lost: u64,
    /// Whether the store ran under an injected file-fault plan.
    pub file_faulted: bool,
}

/// Fleet config every crash case uses: two shards so recovery routing
/// is exercised, unbounded budget so the script's explicit `Evict` ops
/// are the only store writes (making boundaries enumerable).
fn crash_config(seed: u64) -> FleetConfig {
    FleetConfig {
        num_shards: 2,
        assignment_seed: splitmix64(seed ^ 0xA551),
        ..FleetConfig::default()
    }
}

fn scheduler_seed(seed: u64) -> u64 {
    splitmix64(seed ^ 0xC4A5)
}

/// Applies one script op, tolerating the script's deliberate misuse
/// (duplicate creates, unknown ids) — those refusals are the lifecycle
/// explorer's concern, not the crash schedule's.
fn apply(engine: &mut FleetEngine, seed: u64, op: &Op) {
    let _ = match op {
        Op::Create { session } => {
            engine.create_blocking(*session, script::session_spec(seed, *session))
        }
        Op::Step { session, batches } => {
            engine.command_blocking(*session, SessionCommand::Step { batches: *batches })
        }
        Op::Checkpoint { session } => engine.command_blocking(*session, SessionCommand::Checkpoint),
        Op::Evict { session } => engine.command_blocking(*session, SessionCommand::Evict),
        Op::Evaluate { session } => engine.command_blocking(*session, SessionCommand::Evaluate),
    };
    engine.drain_pending();
}

/// Collects each session's checkpoint blob from the engine (used for
/// the post-recovery continuation check).
fn checkpoint_all(engine: &mut FleetEngine, sessions: &[u64]) -> HashMap<u64, Vec<u8>> {
    let mut blobs = HashMap::new();
    for &session in sessions {
        if engine.known(session)
            && engine
                .command_blocking(session, SessionCommand::Checkpoint)
                .is_ok()
        {
            for event in engine.drain_pending() {
                if let SessionEventKind::Checkpointed(blob) = event.kind {
                    blobs.insert(event.session, blob);
                }
            }
        }
    }
    blobs
}

/// Runs the full crash schedule for one seed. `scratch` is a directory
/// this case may create, fill, and delete freely.
///
/// # Errors
///
/// Returns a human-readable violation (always naming the seed) if any
/// crash boundary breaks the recovery contract.
pub fn check_crash_seed(
    scenario: &Arc<DomainIlScenario>,
    seed: u64,
    scratch: &Path,
) -> Result<CrashOutcome, String> {
    let ops = script::generate(seed);
    let file_faults = script::file_fault_plan(seed);
    let err = |boundary: usize, msg: String| {
        format!("crash seed {seed} boundary {boundary}: {msg} — replay with --crash-replay {seed}")
    };

    // Phase 1: uninterrupted baseline on a clean disk. Every sealed
    // record it produces is a durability promise the crash runs must
    // keep (for whatever survives their hostile disk).
    let baseline_dir = scratch.join(format!("crash-{seed}-baseline"));
    let _ = std::fs::remove_dir_all(&baseline_dir);
    let baseline_store = SharedStore::open(StoreConfig::new(&baseline_dir))
        .map_err(|e| err(0, format!("open baseline store: {e}")))?;
    let mut baseline = FleetEngine::with_store(
        Arc::clone(scenario),
        crash_config(seed),
        Runtime::sim(scheduler_seed(seed)),
        baseline_store.clone(),
    );
    for op in &ops {
        apply(&mut baseline, seed, op);
    }
    let baseline_records: HashMap<(u64, u64), Vec<u8>> = baseline_store
        .records()
        .map_err(|e| err(0, format!("read baseline log: {e}")))?
        .into_iter()
        .map(|r| ((r.session, r.seq), r.payload))
        .collect();
    let boundaries = baseline_store.counters().appends as usize;
    drop(baseline);
    let _ = std::fs::remove_dir_all(&baseline_dir);

    // Phase 2+3: kill at every eviction boundary, recover, verify.
    let mut sessions_recovered = 0u64;
    let mut records_lost = 0u64;
    for boundary in 1..=boundaries {
        let dir = scratch.join(format!("crash-{seed}-b{boundary}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = StoreConfig::new(&dir);
        config.faults = file_faults;
        let store =
            SharedStore::open(config).map_err(|e| err(boundary, format!("open store: {e}")))?;
        let mut engine = FleetEngine::with_store(
            Arc::clone(scenario),
            crash_config(seed),
            Runtime::sim(scheduler_seed(seed)),
            store.clone(),
        );
        for op in &ops {
            apply(&mut engine, seed, op);
            if store.counters().appends as usize >= boundary {
                break; // the kill point: mid-script, right after this seal
            }
        }
        drop(engine); // SIGKILL: all RAM state gone
        store
            .simulate_crash()
            .map_err(|e| err(boundary, format!("simulate crash: {e}")))?;
        drop(store);

        // Restart: reopen the directory on a clean disk and recover.
        let store = SharedStore::open(StoreConfig::new(&dir))
            .map_err(|e| err(boundary, format!("reopen after crash: {e}")))?;
        let surviving = store
            .records()
            .map_err(|e| err(boundary, format!("read recovered log: {e}")))?;
        for record in &surviving {
            match baseline_records.get(&(record.session, record.seq)) {
                None => {
                    return Err(err(
                        boundary,
                        format!(
                            "recovered record (session {}, seq {}) was never sealed \
                             by the uninterrupted run",
                            record.session, record.seq
                        ),
                    ))
                }
                Some(expected) if *expected != record.payload => {
                    return Err(err(
                        boundary,
                        format!(
                            "recovered record (session {}, seq {}) differs from the \
                             uninterrupted run's sealed bytes",
                            record.session, record.seq
                        ),
                    ))
                }
                Some(_) => {}
            }
        }
        // Every record sealed *before* the kill point either survives
        // bit-identically (checked above) or was lost to the hostile
        // disk — which clean disks must never do.
        let lost = boundary.saturating_sub(surviving.len()) as u64;
        if lost > 0 && file_faults.is_none() {
            return Err(err(
                boundary,
                format!("{lost} sealed record(s) lost on a clean disk"),
            ));
        }
        records_lost += lost;

        let (mut recovered, report) = FleetEngine::recover(
            Arc::clone(scenario),
            crash_config(seed),
            Runtime::sim(splitmix64(seed ^ boundary as u64)),
            store.clone(),
        )
        .map_err(|e| err(boundary, format!("recover: {e}")))?;
        if report.decode_rejects > 0 {
            return Err(err(
                boundary,
                format!(
                    "{} sealed record(s) failed validation after a clean reopen",
                    report.decode_rejects
                ),
            ));
        }
        sessions_recovered += report.sessions_recovered as u64;

        // Contract: each recovered session IS its last sealed
        // checkpoint, and training continued from it is bit-identical
        // to a control restored straight from the sealed blob.
        let ids = store.sessions();
        let sealed: HashMap<u64, Vec<u8>> = ids
            .iter()
            .filter_map(|&id| store.get(id).ok().flatten().map(|blob| (id, blob)))
            .collect();
        let recovered_blobs = checkpoint_all(&mut recovered, &ids);
        for (&id, blob) in &sealed {
            match recovered_blobs.get(&id) {
                None => {
                    return Err(err(
                        boundary,
                        format!("session {id} has a sealed record but was not recovered"),
                    ))
                }
                Some(b) if b != blob => {
                    return Err(err(
                        boundary,
                        format!("session {id} recovered to different bytes than its seal"),
                    ))
                }
                Some(_) => {}
            }
        }
        for &id in &ids {
            let _ = recovered.command_blocking(
                id,
                SessionCommand::Step {
                    batches: CONTINUE_BATCHES,
                },
            );
            recovered.drain_pending();
        }
        let continued = checkpoint_all(&mut recovered, &ids);
        for (&id, blob) in &sealed {
            let mut control = SessionCheckpoint::from_bytes(blob)
                .map_err(|e| err(boundary, format!("decode sealed blob of session {id}: {e}")))?
                .restore(Arc::clone(scenario), None)
                .map_err(|e| err(boundary, format!("restore control for session {id}: {e}")))?;
            control.step_batches(CONTINUE_BATCHES);
            let expected = SessionCheckpoint::capture(&control).to_bytes();
            if continued.get(&id) != Some(&expected) {
                return Err(err(
                    boundary,
                    format!(
                        "session {id}: training after recovery diverged from the \
                         control restored directly from its sealed checkpoint"
                    ),
                ));
            }
        }
        drop(recovered);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    Ok(CrashOutcome {
        seed,
        ops: ops.len(),
        boundaries,
        sessions_recovered,
        records_lost,
        file_faulted: file_faults.is_some(),
    })
}

/// A scratch directory for crash sweeps, namespaced per process so
/// concurrent test runs never collide.
pub fn default_scratch() -> PathBuf {
    std::env::temp_dir().join(format!("chameleon-crash-sim-{}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::golden_scenario;

    #[test]
    fn crash_schedules_pass_on_clean_and_hostile_disks() {
        let scenario = golden_scenario();
        let scratch = default_scratch().join("unit");
        let mut boundaries = 0;
        let mut faulted = 0;
        // One even (clean-disk) and one odd (hostile-disk) seed keep
        // tier-1 fast; the CLI sweep covers ≥50 seeds in CI.
        for seed in [2, 3] {
            let outcome = check_crash_seed(&scenario, seed, &scratch)
                .unwrap_or_else(|e| panic!("crash schedule failed: {e}"));
            boundaries += outcome.boundaries;
            faulted += usize::from(outcome.file_faulted);
        }
        assert!(faulted == 1, "odd seeds must run a hostile disk");
        assert!(
            boundaries > 0,
            "no eviction boundary in either script — crash coverage degenerate"
        );
        let _ = std::fs::remove_dir_all(&scratch);
    }

    #[test]
    fn outcomes_replay_from_their_seed() {
        let scenario = golden_scenario();
        let scratch = default_scratch().join("replay");
        let a = check_crash_seed(&scenario, 5, &scratch).expect("seed 5");
        let b = check_crash_seed(&scenario, 5, &scratch).expect("seed 5 again");
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&scratch);
    }
}
