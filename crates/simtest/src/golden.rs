//! The golden conformance corpus: exact bytes and digests of every
//! on-disk/on-wire format, committed under `tests/golden/` and
//! re-derived from fixed seeds on every CI run.
//!
//! The corpus exists so format changes are *deliberate*: a CHAMWIRE
//! frame, `CHAMFLT1`/`CHAMLN02` checkpoint byte, or end-of-stream metric
//! digest that drifts without its version line changing fails the gate
//! with a pointed message, while a deliberate change bumps the format
//! magic (which changes the version line) and regenerates the files via
//! `chameleon simtest --regen-golden`.

use std::sync::Arc;

use chameleon_core::StepTrace;
use chameleon_faults::FaultPlan;
use chameleon_fleet::{SessionCheckpoint, SessionEvent, SessionEventKind, UserSession};
use chameleon_obs::{EventLogStats, EventRecord, Observation, Stage, StageStats};
use chameleon_replay::crc32;
use chameleon_serve::wire::{
    encode_frame, ErrorCode, PredictSummary, ProbeSummary, Request, Response, StatsSnapshot,
    WIRE_MAGIC,
};
use chameleon_serve::ServeCounters;
use chameleon_stream::{DatasetSpec, DomainIlScenario};

use crate::digest::{digest_events, ShardScope};
use crate::explorer;
use crate::script;

/// Scenario seed every golden derivation uses.
pub const GOLDEN_SCENARIO_SEED: u64 = 0xC0FFEE;
/// Script/spec seed for the pinned solo session and checkpoints.
pub const GOLDEN_SPEC_SEED: u64 = 0x60_1D;
/// Scheduler seeds whose simulation outcomes are pinned.
pub const GOLDEN_SIM_SEEDS: [u64; 4] = [0, 1, 2, 3];
/// Version line of the metric-digest family (bump on digest semantics
/// changes).
pub const METRIC_DIGEST_VERSION: &str = "SIMDIG02";

/// One corpus file: a family of named golden values plus the version
/// line that makes format changes deliberate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GoldenFile {
    /// File name under `tests/golden/`.
    pub file: &'static str,
    /// Format version string (derived from the live format magics).
    pub version: String,
    /// `name = value` pairs, in derivation order.
    pub entries: Vec<(String, String)>,
}

/// File names of the committed corpus, in derivation order.
pub const GOLDEN_FILE_NAMES: [&str; 3] = [
    "wire_frames.golden",
    "checkpoints.golden",
    "metric_digests.golden",
];

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// The fixed scenario every golden derivation (and the CLI soak) runs
/// on: `core50-tiny` generated from [`GOLDEN_SCENARIO_SEED`].
pub fn golden_scenario() -> Arc<DomainIlScenario> {
    Arc::new(DomainIlScenario::generate(
        &DatasetSpec::core50_tiny(),
        GOLDEN_SCENARIO_SEED,
    ))
}

fn trace_crc(trace: &StepTrace) -> u32 {
    let mut buf = Vec::new();
    for v in [
        trace.inputs,
        trace.trunk_passes,
        trace.head_fwd_passes,
        trace.head_bwd_passes,
        trace.onchip_sample_reads,
        trace.onchip_sample_writes,
        trace.offchip_latent_reads,
        trace.offchip_latent_writes,
        trace.offchip_raw_reads,
        trace.offchip_raw_writes,
        trace.covariance_updates,
        trace.matrix_inversions,
        trace.inversion_dim as u64,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    crc32(&buf)
}

/// Derives the CHAMWIRE frame family: one sealed frame per request and
/// response variant, with fixed field values.
fn derive_wire_frames() -> GoldenFile {
    let spec = script::session_spec(GOLDEN_SPEC_SEED, 1);
    let stats = StatsSnapshot {
        sessions_resident: 3,
        sessions_cold: 2,
        sessions_created: 5,
        batches: 120,
        evictions: 4,
        restores: 2,
        trace: StepTrace {
            inputs: 1200,
            trunk_passes: 1200,
            head_fwd_passes: 9600,
            head_bwd_passes: 9600,
            onchip_sample_reads: 4800,
            onchip_sample_writes: 1200,
            offchip_latent_reads: 3600,
            offchip_latent_writes: 300,
            ..StepTrace::default()
        },
        serve: ServeCounters {
            connections_accepted: 7,
            connections_closed: 6,
            frames_in: 140,
            frames_out: 140,
            bytes_in: 4096,
            bytes_out: 8192,
            decode_rejects: 1,
            backpressure_replies: 3,
            requests_ok: 130,
            requests_failed: 2,
            ..ServeCounters::default()
        },
    };
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("req_ping", Request::Ping.encode_payload(1)),
        (
            "req_create_session",
            Request::CreateSession {
                session: 7,
                spec: spec.clone(),
            }
            .encode_payload(2),
        ),
        (
            "req_step",
            Request::Step {
                session: 7,
                batches: 5,
            }
            .encode_payload(3),
        ),
        (
            "req_predict",
            Request::Predict { session: 7 }.encode_payload(4),
        ),
        (
            "req_checkpoint",
            Request::Checkpoint { session: 7 }.encode_payload(5),
        ),
        ("req_evict", Request::Evict { session: 7 }.encode_payload(6)),
        ("req_stats", Request::Stats.encode_payload(7)),
        ("rsp_pong", Response::Pong.encode_payload(1)),
        ("rsp_created", Response::Created.encode_payload(2)),
        (
            "rsp_stepped",
            Response::Stepped {
                delivered: 5,
                done: false,
            }
            .encode_payload(3),
        ),
        (
            "rsp_predicted",
            Response::Predicted(PredictSummary {
                acc_all: 62.5,
                per_domain: vec![50.0, 75.0],
                per_class: vec![60.0, 65.0],
                memory_overhead_mb: 1.25,
            })
            .encode_payload(4),
        ),
        (
            "rsp_checkpointed",
            Response::Checkpointed(vec![0xDE, 0xAD, 0xBE, 0xEF]).encode_payload(5),
        ),
        ("rsp_evicted", Response::Evicted.encode_payload(6)),
        (
            "rsp_stats",
            Response::Stats(Box::new(stats)).encode_payload(7),
        ),
        (
            "rsp_error",
            Response::Error {
                code: ErrorCode::UnknownSession,
                message: "no such session".to_string(),
            }
            .encode_payload(8),
        ),
        (
            "rsp_retry_after",
            Response::RetryAfter { millis: 2 }.encode_payload(0),
        ),
        ("req_observe", Request::Observe.encode_payload(8)),
        (
            "rsp_observed",
            Response::Observed(Box::new(golden_observation())).encode_payload(9),
        ),
        ("req_probe", Request::Probe.encode_payload(10)),
        (
            "req_handoff_export",
            Request::HandoffExport { session: 7 }.encode_payload(11),
        ),
        (
            "req_handoff",
            Request::Handoff {
                session: 7,
                blob: vec![0xCA, 0xFE, 0xF0, 0x0D],
            }
            .encode_payload(12),
        ),
        (
            "rsp_probe_ack",
            Response::ProbeAck(ProbeSummary {
                sessions_resident: 3,
                sessions_cold: 2,
                in_flight: 1,
            })
            .encode_payload(10),
        ),
        (
            "rsp_handoff_exported",
            Response::HandoffExported(vec![0xCA, 0xFE, 0xF0, 0x0D]).encode_payload(11),
        ),
        ("rsp_handoff_ack", Response::HandoffAck.encode_payload(12)),
    ];
    GoldenFile {
        file: GOLDEN_FILE_NAMES[0],
        version: String::from_utf8_lossy(WIRE_MAGIC).into_owned(),
        entries: cases
            .into_iter()
            .map(|(name, payload)| (name.to_string(), hex(&encode_frame(&payload))))
            .collect(),
    }
}

/// A fully hand-pinned [`Observation`] (no clock involved), so the
/// `rsp_observed` golden frame exercises every field of the codec.
fn golden_observation() -> Observation {
    let mut o = Observation {
        spans: Stage::ALL
            .iter()
            .enumerate()
            .map(|(i, &stage)| {
                let mut stats = StageStats {
                    count: 3 + i as u64,
                    total_nanos: 9_000 * (i as u64 + 1),
                    max_nanos: 5_000 * (i as u64 + 1),
                    ..StageStats::default()
                };
                stats.histogram.record_nanos(1_000);
                stats.histogram.record_nanos(5_000 * (i as u64 + 1));
                (stage, stats)
            })
            .collect(),
        events: EventLogStats {
            capacity: 256,
            next_seq: 4,
            dropped: 1,
            recent: vec![EventRecord {
                seq: 3,
                nanos: 123_000,
                message: "shard 0: session 7 evicted".to_string(),
            }],
        },
        counters: Vec::new(),
    };
    o.push_counter("fleet.batches", 120);
    o.push_counter("serve.frames_in", 140);
    o
}

/// Derives the checkpoint family: full `CHAMFLT1` session blobs (clean
/// and faulted) and the embedded `CHAMLN02` learner blob, from a fixed
/// 12-batch solo session — plus the `CHAMSEG1` durable-store framing
/// those blobs are sealed into on eviction, and the quantized
/// `CHAMFLT2`/`CHAMLN03` twins of the clean session (int8 latents).
fn derive_checkpoints() -> GoldenFile {
    let scenario = golden_scenario();
    let version = format!(
        "{}+{}+{}+{}+{}",
        String::from_utf8_lossy(chameleon_fleet::FLEET_MAGIC),
        String::from_utf8_lossy(chameleon_fleet::FLEET_MAGIC_V2),
        String::from_utf8_lossy(chameleon_core::checkpoint::MAGIC),
        String::from_utf8_lossy(chameleon_core::checkpoint::MAGIC_V3),
        String::from_utf8_lossy(chameleon_store::SEGMENT_MAGIC),
    );
    let blob_after = |faults: Option<FaultPlan>, precision: chameleon_core::Precision| {
        let mut session = UserSession::new(
            1,
            script::session_spec_at(GOLDEN_SPEC_SEED, 1, precision),
            Arc::clone(&scenario),
            faults.as_ref(),
        );
        for _ in 0..12 {
            session.step_batch();
        }
        SessionCheckpoint::capture(&session)
    };
    let clean = blob_after(None, chameleon_core::Precision::F32);
    let faulted = blob_after(
        Some(FaultPlan::bit_flips(0xBAD, 1e-4)),
        chameleon_core::Precision::F32,
    );
    let int8 = blob_after(None, chameleon_core::Precision::Int8);
    GoldenFile {
        file: GOLDEN_FILE_NAMES[1],
        version,
        entries: vec![
            ("chamflt1_clean".to_string(), hex(&clean.to_bytes())),
            ("chamln02_clean".to_string(), hex(&clean.learner_blob)),
            ("chamflt1_faulted".to_string(), hex(&faulted.to_bytes())),
            (
                "chamseg1_header".to_string(),
                hex(chameleon_store::SEGMENT_MAGIC),
            ),
            (
                "chamseg1_record_clean".to_string(),
                hex(&chameleon_store::encode_record(1, 0, &clean.to_bytes())),
            ),
            (
                "chamseg1_record_empty".to_string(),
                hex(&chameleon_store::encode_record(7, 3, &[])),
            ),
            ("chamflt2_int8".to_string(), hex(&int8.to_bytes())),
            ("chamln03_int8".to_string(), hex(&int8.learner_blob)),
            (
                "chamseg1_record_int8".to_string(),
                hex(&chameleon_store::encode_record(1, 0, &int8.to_bytes())),
            ),
        ],
    }
}

/// Derives the metric-digest family: end-of-stream observables of a
/// solo run plus the event/checkpoint digests of the pinned simulation
/// seeds.
fn derive_metric_digests() -> GoldenFile {
    let scenario = golden_scenario();
    let mut entries = Vec::new();

    let mut session = UserSession::new(
        1,
        script::session_spec(GOLDEN_SPEC_SEED, 1),
        Arc::clone(&scenario),
        None,
    );
    while session.step_batch() {}
    let report = session.evaluate();
    let eval_digest = digest_events(
        std::iter::once(&SessionEvent {
            session: 1,
            shard: 0,
            correlation: 0,
            kind: SessionEventKind::Evaluated(Box::new(report)),
        }),
        ShardScope::Exclude,
    );
    let blob = SessionCheckpoint::capture(&session).to_bytes();
    entries.push((
        "solo_core50_tiny".to_string(),
        format!(
            "eval:{eval_digest:08x} trace:{:08x} blob:{:08x} blob_len:{}",
            trace_crc(&session.trace()),
            crc32(&blob),
            blob.len(),
        ),
    ));

    for seed in GOLDEN_SIM_SEEDS {
        let outcome = explorer::check_seed(&scenario, seed)
            .unwrap_or_else(|e| panic!("golden sim seed {seed} violated an invariant: {e}"));
        entries.push((
            format!("sim_seed_{seed}"),
            format!(
                "events:{:08x} checkpoints:{:08x} spans:{:08x} ops:{} shards:{} faulted:{}",
                outcome.event_digest,
                outcome.checkpoint_crc,
                outcome.span_digest,
                outcome.ops,
                outcome.shards,
                outcome.faulted,
            ),
        ));
    }
    GoldenFile {
        file: GOLDEN_FILE_NAMES[2],
        version: METRIC_DIGEST_VERSION.to_string(),
        entries,
    }
}

/// Re-derives the whole corpus from fixed seeds. Pure: same binary ⇒
/// same corpus, byte for byte.
pub fn derive_corpus() -> Vec<GoldenFile> {
    vec![
        derive_wire_frames(),
        derive_checkpoints(),
        derive_metric_digests(),
    ]
}

/// Renders a corpus file to its committed text form.
pub fn render(file: &GoldenFile) -> String {
    let mut out = String::new();
    out.push_str("# chameleon-simtest golden corpus — do not edit by hand\n");
    out.push_str("# regenerate: cargo run -p chameleon-cli -- simtest --regen-golden\n");
    out.push_str(&format!("# version: {}\n", file.version));
    for (name, value) in &file.entries {
        out.push_str(&format!("{name} = {value}\n"));
    }
    out
}

/// Parses a committed corpus file.
///
/// # Errors
///
/// Describes the first malformed line.
pub fn parse(file: &'static str, text: &str) -> Result<GoldenFile, String> {
    let mut version = None;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(v) = rest.trim().strip_prefix("version:") {
                version = Some(v.trim().to_string());
            }
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            return Err(format!("{file}:{}: expected `name = value`", lineno + 1));
        };
        entries.push((name.trim().to_string(), value.trim().to_string()));
    }
    Ok(GoldenFile {
        file,
        version: version.ok_or_else(|| format!("{file}: missing `# version:` line"))?,
        entries,
    })
}

/// Compares the committed corpus file against its freshly derived twin.
/// Returns human-readable drift findings; empty means conformant.
pub fn diff(committed: &GoldenFile, derived: &GoldenFile) -> Vec<String> {
    let file = derived.file;
    if committed.version != derived.version {
        // The deliberate path: the format magic was bumped. The corpus
        // still fails the gate until regenerated, making the new bytes
        // an explicit, reviewed part of the change.
        return vec![format!(
            "{file}: format version changed {} -> {} — regenerate the corpus \
             (cargo run -p chameleon-cli -- simtest --regen-golden) and commit it",
            committed.version, derived.version
        )];
    }
    let mut findings = Vec::new();
    let committed_names: Vec<&str> = committed.entries.iter().map(|(n, _)| n.as_str()).collect();
    for (name, derived_value) in &derived.entries {
        match committed.entries.iter().find(|(n, _)| n == name) {
            None => findings.push(format!(
                "{file}: entry `{name}` missing from the committed corpus"
            )),
            Some((_, committed_value)) if committed_value != derived_value => {
                findings.push(format!(
                    "{file}: `{name}` bytes changed WITHOUT a version bump — if this \
                     format change is deliberate, bump the format magic/version and \
                     regenerate the corpus; if not, it is a silent wire/checkpoint break"
                ));
            }
            Some(_) => {}
        }
    }
    for name in committed_names {
        if !derived.entries.iter().any(|(n, _)| n == name) {
            findings.push(format!(
                "{file}: committed entry `{name}` no longer derivable"
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip_is_lossless() {
        let file = derive_wire_frames();
        let parsed = parse(file.file, &render(&file)).expect("parses");
        assert_eq!(parsed, file);
    }

    #[test]
    fn wire_frames_derivation_is_pure() {
        assert_eq!(derive_wire_frames(), derive_wire_frames());
    }

    #[test]
    fn diff_reports_nothing_on_identical_files() {
        let file = derive_wire_frames();
        assert!(diff(&file, &file).is_empty());
    }

    #[test]
    fn diff_flags_byte_change_without_version_bump() {
        let derived = derive_wire_frames();
        let mut committed = derived.clone();
        // Flip one hex nibble of one pinned frame.
        let value = &mut committed.entries[0].1;
        let flipped = if value.ends_with('0') { '1' } else { '0' };
        value.pop();
        value.push(flipped);
        let findings = diff(&committed, &derived);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].contains("WITHOUT a version bump"),
            "{findings:?}"
        );
    }

    #[test]
    fn diff_flags_version_bump_as_regeneration_needed() {
        let derived = derive_wire_frames();
        let mut committed = derived.clone();
        committed.version = "CHAMWIR0".to_string();
        let findings = diff(&committed, &derived);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("regenerate"), "{findings:?}");
    }

    #[test]
    fn diff_flags_missing_and_stale_entries() {
        let derived = derive_wire_frames();
        let mut committed = derived.clone();
        committed.entries.remove(0);
        committed
            .entries
            .push(("zombie".to_string(), "00".to_string()));
        let findings = diff(&committed, &derived);
        assert_eq!(findings.len(), 2, "{findings:?}");
    }
}
