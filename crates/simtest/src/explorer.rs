//! The state-machine lifecycle explorer.
//!
//! One seed pins one complete simulation case: a generated op script
//! (`crate::script`), a fault plan, per-session specs, and the seeded
//! schedulers of the engines under comparison. For every seed the
//! explorer runs the same script against
//!
//! 1. a **1-shard** sim engine,
//! 2. a **K-shard** sim engine (K ∈ 2..=4, seed-derived) under a
//!    *different* scheduler seed and assignment seed, and
//! 3. the K-shard engine again with identical seeds (replay),
//!
//! asserting after every script prefix that the touched session's
//! observable history — every event, every probed `CHAMFLT1` checkpoint
//! byte — is identical across shard counts (the fleet determinism
//! contract), that quarantine/progress counters never regress, and that
//! the replay run reproduces the exact event log and final checkpoint
//! bytes of its twin.

use std::collections::HashMap;
use std::sync::Arc;

use chameleon_core::Precision;
use chameleon_fleet::{
    FleetConfig, FleetEngine, FleetError, SessionCheckpoint, SessionCommand, SessionEvent,
    SessionEventKind, SessionId,
};
use chameleon_replay::crc32;
use chameleon_runtime::splitmix64;
use chameleon_stream::DomainIlScenario;

use crate::digest::{digest_events, digest_spans, encode_event, ShardScope};
use crate::script::{self, Op};

/// What one passing seed looked like — enough to cross-check a replay
/// of the same seed on another machine or commit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeedOutcome {
    /// The seed that pins this case.
    pub seed: u64,
    /// Ops in the generated script.
    pub ops: usize,
    /// Shard count of the multi-shard engine (2..=4).
    pub shards: usize,
    /// Whether the case ran under an injected fault plan.
    pub faulted: bool,
    /// Events observed across all three runs.
    pub events: u64,
    /// CRC32 of the K-shard run's full event log (shard ids included).
    pub event_digest: u32,
    /// CRC32 over every session's final `CHAMFLT1` blob, in id order.
    pub checkpoint_crc: u32,
    /// CRC32 of the K-shard run's per-stage span aggregates (virtual-clock
    /// timings recorded by the fleet observer).
    pub span_digest: u32,
}

/// One engine under test plus the per-session observable history the
/// explorer compares across runs.
struct SimRun {
    engine: FleetEngine,
    /// Shard-agnostic per-session encoding of everything observable:
    /// events (probes included) and synchronously refused submissions.
    logs: HashMap<SessionId, Vec<u8>>,
    /// Every event in engine arrival order (shard-sensitive digests).
    all_events: Vec<SessionEvent>,
    /// Highest `trace.inputs` seen per session — progress counters must
    /// never regress, not even across evict/restore cycles.
    progress: HashMap<SessionId, u64>,
    /// Latent-codec precision every session spec in this run uses.
    precision: Precision,
}

impl SimRun {
    fn new(
        scenario: Arc<DomainIlScenario>,
        config: FleetConfig,
        scheduler_seed: u64,
        precision: Precision,
    ) -> Self {
        Self {
            engine: FleetEngine::new_sim(scenario, config, scheduler_seed),
            logs: HashMap::new(),
            all_events: Vec::new(),
            progress: HashMap::new(),
            precision,
        }
    }

    /// Applies one op (riding out backpressure), drains its events into
    /// the per-session logs, then probes the touched session with a
    /// `Checkpoint` command so the full `CHAMFLT1` bytes after this
    /// prefix are part of the observable history.
    fn apply(&mut self, seed: u64, op: &Op, probe: bool) -> Result<(), String> {
        let session = op.session();
        let submitted = match op {
            Op::Create { session } => self.engine.create_blocking(
                *session,
                script::session_spec_at(seed, *session, self.precision),
            ),
            Op::Step { session, batches } => self
                .engine
                .command_blocking(*session, SessionCommand::Step { batches: *batches }),
            Op::Checkpoint { session } => self
                .engine
                .command_blocking(*session, SessionCommand::Checkpoint),
            Op::Evict { session } => self
                .engine
                .command_blocking(*session, SessionCommand::Evict),
            Op::Evaluate { session } => self
                .engine
                .command_blocking(*session, SessionCommand::Evaluate),
        };
        if let Err(error) = submitted {
            // Synchronous refusals (unknown/duplicate ids) are part of
            // the observable contract: both engines must refuse the
            // same ops. `Rejected` cannot reach here (blocking submit).
            self.log_refusal(session, &error);
        }
        self.collect()?;
        if probe && self.engine.known(session) {
            self.engine
                .command_blocking(session, SessionCommand::Checkpoint)
                .map_err(|e| format!("checkpoint probe refused: {e}"))?;
            self.collect()?;
        }
        Ok(())
    }

    /// Drains pending events into the logs, checking per-event
    /// invariants as they stream past.
    fn collect(&mut self) -> Result<(), String> {
        for event in self.engine.drain_pending() {
            let log = self.logs.entry(event.session).or_default();
            encode_event(log, &event, ShardScope::Exclude);
            self.check_invariants(&event)?;
            self.all_events.push(event);
        }
        Ok(())
    }

    fn log_refusal(&mut self, session: SessionId, error: &FleetError) {
        let log = self.logs.entry(session).or_default();
        log.push(0xFF);
        log.extend_from_slice(error.to_string().as_bytes());
    }

    /// Invariants every event must satisfy regardless of interleaving:
    /// checkpoint blobs parse and their quarantine/progress counters
    /// never run backwards; evaluation accuracies stay in [0, 100].
    fn check_invariants(&mut self, event: &SessionEvent) -> Result<(), String> {
        match &event.kind {
            SessionEventKind::Checkpointed(blob) => {
                let ck = SessionCheckpoint::from_bytes(blob).map_err(|e| {
                    format!("session {}: emitted blob unparsable: {e:?}", event.session)
                })?;
                if ck.session != event.session {
                    return Err(format!(
                        "blob names session {} but event names {}",
                        ck.session, event.session
                    ));
                }
                let inputs = ck.counters.trace.inputs;
                let seen = self.progress.entry(event.session).or_insert(0);
                if inputs < *seen {
                    return Err(format!(
                        "session {}: trace.inputs regressed {} -> {inputs}",
                        event.session, *seen
                    ));
                }
                *seen = inputs;
                for (store, stats) in [
                    ("short-term", &ck.counters.short_term_stats),
                    ("long-term", &ck.counters.long_term_stats),
                ] {
                    if stats.corrupt_evictions > stats.sample_reads + stats.sample_writes {
                        return Err(format!(
                            "session {}: {store} quarantined more samples than it ever touched",
                            event.session
                        ));
                    }
                }
            }
            SessionEventKind::Evaluated(report) => {
                let all = std::iter::once(report.acc_all)
                    .chain(report.per_domain.iter().copied())
                    .chain(report.per_class.iter().copied());
                for acc in all {
                    if !(0.0..=100.0).contains(&acc) {
                        return Err(format!(
                            "session {}: accuracy {acc} outside [0, 100]",
                            event.session
                        ));
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Final `CHAMFLT1` blob of every created session, in id order.
    fn final_blobs(&mut self) -> Result<Vec<(SessionId, Vec<u8>)>, String> {
        let mut ids: Vec<SessionId> = (0..script::SESSION_POOL)
            .filter(|&id| self.engine.known(id))
            .collect();
        ids.sort_unstable();
        let mut blobs = Vec::with_capacity(ids.len());
        for id in ids {
            self.engine
                .command_blocking(id, SessionCommand::Checkpoint)
                .map_err(|e| format!("final checkpoint refused: {e}"))?;
            let events = self.engine.drain_pending();
            let blob = events
                .into_iter()
                .find_map(|e| match e.kind {
                    SessionEventKind::Checkpointed(blob) => Some(blob),
                    _ => None,
                })
                .ok_or_else(|| format!("session {id}: final checkpoint produced no blob"))?;
            blobs.push((id, blob));
        }
        Ok(blobs)
    }

    /// Residency conservation: every created session is accounted for as
    /// either resident or cold, never lost, never duplicated.
    fn check_session_conservation(&mut self) -> Result<(), String> {
        let created = (0..script::SESSION_POOL)
            .filter(|&id| self.engine.known(id))
            .count();
        let metrics = self.engine.metrics();
        let held = metrics.sessions_resident() + metrics.sessions_cold();
        if held != created {
            return Err(format!(
                "session conservation broken: {created} created but {held} held"
            ));
        }
        Ok(())
    }
}

/// Runs the full shard-count-invariance + replay-determinism check for
/// one seed.
///
/// # Errors
///
/// A human-readable description of the first violated invariant; the
/// seed reproduces it bit-identically.
pub fn check_seed(scenario: &Arc<DomainIlScenario>, seed: u64) -> Result<SeedOutcome, String> {
    check_seed_at(scenario, seed, Precision::F32)
}

/// [`check_seed`] with every session spec pinned to `precision` — the
/// quantized soak slice. The same shard-count-invariance and
/// replay-determinism contracts must hold when latents round-trip
/// through the codec: quantization is deterministic, so a quantized
/// fleet replays bit-identically too.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn check_seed_at(
    scenario: &Arc<DomainIlScenario>,
    seed: u64,
    precision: Precision,
) -> Result<SeedOutcome, String> {
    let ops = script::generate(seed);
    let faults = script::fault_plan(seed);
    let shards = 2 + (splitmix64(seed ^ 0x5A4D) % 3) as usize;
    let config = |num_shards: usize| FleetConfig {
        num_shards,
        queue_depth: 4,
        budget_bytes: u64::MAX,
        assignment_seed: splitmix64(seed ^ 0xA551),
        faults,
    };
    let mut solo = SimRun::new(Arc::clone(scenario), config(1), seed, precision);
    let mut multi = SimRun::new(
        Arc::clone(scenario),
        config(shards),
        splitmix64(seed ^ 0xB0B),
        precision,
    );
    let mut replay = SimRun::new(
        Arc::clone(scenario),
        config(shards),
        splitmix64(seed ^ 0xB0B),
        precision,
    );

    for (index, op) in ops.iter().enumerate() {
        let fail = |run: &str, e: String| format!("seed {seed} op {index} ({op:?}) [{run}]: {e}");
        solo.apply(seed, op, true).map_err(|e| fail("1-shard", e))?;
        multi
            .apply(seed, op, true)
            .map_err(|e| fail(format!("{shards}-shard").as_str(), e))?;
        replay
            .apply(seed, op, true)
            .map_err(|e| fail("replay", e))?;
        // Shard-count invariance after this prefix: the touched
        // session's entire observable history (events + probed
        // checkpoint bytes) must be identical at 1 and K shards.
        let session = op.session();
        if solo.logs.get(&session) != multi.logs.get(&session) {
            return Err(format!(
                "seed {seed} op {index} ({op:?}): session {session} history diverges \
                 between 1 and {shards} shards"
            ));
        }
    }

    // Whole-run cross-check: every session's history, not just touched
    // prefixes, plus residency conservation per engine.
    if solo.logs != multi.logs {
        return Err(format!(
            "seed {seed}: per-session histories diverge between 1 and {shards} shards"
        ));
    }
    solo.check_session_conservation()
        .map_err(|e| format!("seed {seed} [1-shard]: {e}"))?;
    multi
        .check_session_conservation()
        .map_err(|e| format!("seed {seed} [{shards}-shard]: {e}"))?;

    // Replay determinism: identical seeds ⇒ identical event logs (shard
    // ids included) and identical final checkpoint bytes.
    let event_digest = digest_events(&multi.all_events, ShardScope::Include);
    let replay_digest = digest_events(&replay.all_events, ShardScope::Include);
    if event_digest != replay_digest {
        return Err(format!(
            "seed {seed}: same-seed replay produced a different event log \
             ({event_digest:#010x} vs {replay_digest:#010x})"
        ));
    }
    let blobs = multi
        .final_blobs()
        .map_err(|e| format!("seed {seed}: {e}"))?;
    let replay_blobs = replay
        .final_blobs()
        .map_err(|e| format!("seed {seed} [replay]: {e}"))?;
    if blobs != replay_blobs {
        return Err(format!(
            "seed {seed}: same-seed replay produced different final checkpoint bytes"
        ));
    }

    // Span determinism: the virtual-clock span aggregates the fleet
    // observer recorded must replay bit-identically too.
    let span_digest = digest_spans(&multi.engine.observer().snapshot_spans());
    let replay_spans = digest_spans(&replay.engine.observer().snapshot_spans());
    if span_digest != replay_spans {
        return Err(format!(
            "seed {seed}: same-seed replay produced different span aggregates \
             ({span_digest:#010x} vs {replay_spans:#010x})"
        ));
    }

    let mut concat = Vec::new();
    for (id, blob) in &blobs {
        concat.extend_from_slice(&id.to_le_bytes());
        concat.extend_from_slice(blob);
    }
    let events = (solo.all_events.len() + multi.all_events.len() + replay.all_events.len()) as u64;
    Ok(SeedOutcome {
        seed,
        ops: ops.len(),
        shards,
        faulted: faults.is_some(),
        events,
        event_digest,
        checkpoint_crc: crc32(&concat),
        span_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_stream::DatasetSpec;

    fn scenario() -> Arc<DomainIlScenario> {
        Arc::new(DomainIlScenario::generate(
            &DatasetSpec::core50_tiny(),
            0x51A7E57,
        ))
    }

    #[test]
    fn a_clean_and_a_faulted_seed_pass_and_replay_identically() {
        let scenario = scenario();
        for seed in [0u64, 1] {
            let a = check_seed(&scenario, seed).expect("invariants hold");
            let b = check_seed(&scenario, seed).expect("invariants hold");
            assert_eq!(a, b, "outcome of seed {seed} not reproducible");
            assert_eq!(a.faulted, seed % 2 == 1);
        }
    }

    #[test]
    fn quantized_seeds_replay_deterministically() {
        // The quantized soak slice: int8 sessions must satisfy the same
        // shard-count-invariance and replay-determinism contracts, and
        // must actually change the observable bytes versus f32 (the
        // checkpoints carry packed latents).
        let scenario = scenario();
        for seed in [0u64, 1] {
            let a = check_seed_at(&scenario, seed, Precision::Int8).expect("invariants hold");
            let b = check_seed_at(&scenario, seed, Precision::Int8).expect("invariants hold");
            assert_eq!(a, b, "quantized seed {seed} not reproducible");
            let f32_run = check_seed(&scenario, seed).expect("invariants hold");
            assert_ne!(
                a.checkpoint_crc, f32_run.checkpoint_crc,
                "int8 checkpoints should differ from f32 bytes"
            );
        }
    }

    #[test]
    fn different_seeds_explore_different_interleavings() {
        let scenario = scenario();
        let a = check_seed(&scenario, 2).expect("pass");
        let b = check_seed(&scenario, 4).expect("pass");
        assert_ne!(
            (a.event_digest, a.checkpoint_crc),
            (b.event_digest, b.checkpoint_crc),
            "two distinct seeds produced identical observables — scheduler not seeded?"
        );
    }
}
