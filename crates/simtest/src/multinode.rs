//! The multi-node routing explorer: handoff/kill schedules on a
//! simulated cluster, cross-checked against a single node.
//!
//! One seed pins a cluster of K simulated nodes (each its own
//! [`FleetEngine`] with its own seeded scheduler), an op script, a fault
//! plan, and a *disruption plan* interleaved with the ops:
//!
//! - **Handoff**: an `Export` on the session's current node carries its
//!   `CHAMFLT1` blob to a rendezvous-chosen survivor (the routing tier's
//!   administrative drain).
//! - **Kill**: a node dies without warning; every session placed on it
//!   is re-homed from its *shadow checkpoint* — the blob probed after
//!   the session's last completed op, exactly what `chameleon-route`
//!   caches (a network-partition window looks identical from the
//!   session's perspective: ops stop reaching the node, and recovery
//!   re-homes from the last acknowledged state).
//! - **RouterRestart**: the routing tier itself crashes and restarts.
//!   The cluster's routing state (placement pins + seq-stamped shadows)
//!   is pushed through the real CHAMRTE1 codec from `chameleon-route`
//!   and decoded back, and the schedule only continues if the restarted
//!   view is bit-identical — the in-sim twin of the router's
//!   `--state-dir` recovery path.
//!
//! The invariant proved per seed is **placement invisibility**:
//! checkpoint restore resets transient training state *by design* (see
//! `chameleon-core`), so a moved session is not byte-identical to a
//! never-moved one — but it must be byte-identical to the same command
//! sequence on a **single node with a local evict/restore at the same
//! boundaries**. The explorer replays the multi-node run's interruption
//! trace as plain `Evict` commands on one engine and asserts every
//! per-session observable — each post-op probed `CHAMFLT1` blob, each
//! evaluation, each refusal — and every final checkpoint byte is
//! identical, no matter which nodes the session visited or how many
//! times it moved. A same-seed replay of the whole cluster must also
//! reproduce itself bit for bit.

use std::collections::HashMap;
use std::sync::Arc;

use chameleon_fleet::{FleetConfig, FleetEngine, SessionCommand, SessionEventKind, SessionId};
use chameleon_replay::crc32;
use chameleon_runtime::{splitmix64, SimRng};
use chameleon_stream::DomainIlScenario;

use crate::digest::{encode_event, ShardScope};
use crate::script::{self, Op};

/// One scheduled disruption, applied before the op at its index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disruption {
    /// Drain one session off its current node (export + import).
    Handoff {
        /// Session to move.
        session: SessionId,
    },
    /// Kill a node outright; its sessions re-home from shadows.
    Kill {
        /// Node to kill.
        node: usize,
    },
    /// Crash-and-restart the routing tier: round-trip its state through
    /// the CHAMRTE1 codec and require the recovered view to be
    /// bit-identical.
    RouterRestart,
}

/// Seed-derived disruption plan: `(op_index, disruption)` pairs, applied
/// before the op at `op_index`. Guaranteed non-empty (a plan with no
/// disruptions would not test routing at all) and to never kill the last
/// surviving node.
pub fn disruption_plan(seed: u64, ops: usize, nodes: usize) -> Vec<(usize, Disruption)> {
    let mut rng = SimRng::new(splitmix64(seed ^ 0xD157));
    let mut plan = Vec::new();
    let mut alive = nodes;
    for index in 1..ops {
        if !rng.chance(1, 6) {
            continue;
        }
        if rng.chance(1, 4) {
            plan.push((index, Disruption::RouterRestart));
        } else if alive > 1 && rng.chance(1, 3) {
            // The specific victim is resolved at apply time (first node
            // still alive counting from the drawn index), so the plan
            // stays valid however earlier kills landed.
            plan.push((
                index,
                Disruption::Kill {
                    node: rng.below(nodes as u64) as usize,
                },
            ));
            alive -= 1;
        } else {
            plan.push((
                index,
                Disruption::Handoff {
                    session: rng.below(script::SESSION_POOL),
                },
            ));
        }
    }
    if plan.is_empty() {
        plan.push((
            ops / 2,
            Disruption::Handoff {
                session: rng.below(script::SESSION_POOL),
            },
        ));
    }
    plan
}

/// What one passing routed seed looked like.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteSeedOutcome {
    /// The seed that pins this case.
    pub seed: u64,
    /// Ops in the generated script.
    pub ops: usize,
    /// Simulated nodes in the cluster.
    pub nodes: usize,
    /// Sessions actually moved by handoffs.
    pub handoffs: u64,
    /// Nodes killed (sessions re-homed from shadows).
    pub kills: u64,
    /// Sessions re-homed out of killed nodes.
    pub recovered: u64,
    /// Router crash/restart cycles survived (CHAMRTE1 state round-trips
    /// proven bit-identical).
    pub router_restarts: u64,
    /// Whether the case ran under an injected fault plan.
    pub faulted: bool,
    /// CRC32 over every per-session observable log, in id order.
    pub log_digest: u32,
    /// CRC32 over every session's final `CHAMFLT1` blob, in id order.
    pub checkpoint_crc: u32,
}

/// The interruption trace a multi-node run actually performed:
/// `(op_index, session)` per moved session, in apply order. The
/// single-node reference replays this as `Evict` commands.
type Trace = Vec<(usize, SessionId)>;

/// A simulated cluster: K engines, a placement map, and the shadow
/// checkpoint cache (the routing tier's state, in miniature).
struct Cluster {
    engines: Vec<FleetEngine>,
    alive: Vec<bool>,
    placement: HashMap<SessionId, usize>,
    shadows: HashMap<SessionId, Vec<u8>>,
    /// Per-session shadow refresh count — the op-sequence stamp the
    /// routing tier writes next to each shadow in its CHAMRTE1 log.
    shadow_seqs: HashMap<SessionId, u64>,
    logs: HashMap<SessionId, Vec<u8>>,
    seed: u64,
    trace: Trace,
    handoffs: u64,
    kills: u64,
    recovered: u64,
    router_restarts: u64,
}

impl Cluster {
    fn new(scenario: &Arc<DomainIlScenario>, seed: u64, nodes: usize) -> Self {
        let faults = script::fault_plan(seed);
        let engines = (0..nodes)
            .map(|node| {
                FleetEngine::new_sim(
                    Arc::clone(scenario),
                    FleetConfig {
                        num_shards: 1 + (splitmix64(seed ^ (node as u64 + 1)) % 2) as usize,
                        queue_depth: 4,
                        budget_bytes: u64::MAX,
                        assignment_seed: splitmix64(seed ^ 0xA551 ^ node as u64),
                        faults,
                    },
                    splitmix64(seed ^ 0xB0B ^ (node as u64) << 8),
                )
            })
            .collect();
        Self {
            engines,
            alive: vec![true; nodes],
            placement: HashMap::new(),
            shadows: HashMap::new(),
            shadow_seqs: HashMap::new(),
            logs: HashMap::new(),
            seed,
            trace: Trace::new(),
            handoffs: 0,
            kills: 0,
            recovered: 0,
            router_restarts: 0,
        }
    }

    /// Rendezvous choice among live nodes, optionally excluding one —
    /// the same highest-random-weight scheme `chameleon-route` uses.
    fn rendezvous(&self, session: SessionId, exclude: Option<usize>) -> Option<usize> {
        let key = splitmix64(session ^ self.seed);
        (0..self.engines.len())
            .filter(|&n| self.alive[n] && Some(n) != exclude)
            .max_by_key(|&n| splitmix64(key ^ (n as u64 + 1)))
    }

    fn owner_of(&self, session: SessionId) -> Option<usize> {
        self.placement
            .get(&session)
            .copied()
            .or_else(|| self.rendezvous(session, None))
    }

    /// Drains a node's pending events into the session logs (handoff
    /// machinery calls `drain_to_bin` instead, keeping export/import
    /// noise out of the compared history).
    fn drain_to_logs(&mut self, node: usize) {
        for event in self.engines[node].drain_pending() {
            if let SessionEventKind::Checkpointed(blob) = &event.kind {
                self.shadows.insert(event.session, blob.clone());
                *self.shadow_seqs.entry(event.session).or_insert(0) += 1;
            }
            let log = self.logs.entry(event.session).or_default();
            encode_event(log, &event, ShardScope::Exclude);
        }
    }

    fn drain_to_bin(&mut self, node: usize) -> Vec<chameleon_fleet::SessionEvent> {
        self.engines[node].drain_pending()
    }

    /// Applies one script op on the session's current node, then probes
    /// the touched session with a `Checkpoint` so its post-op state is
    /// both observable history and the shadow for later failovers.
    fn apply(&mut self, op: &Op) -> Result<(), String> {
        let session = op.session();
        let Some(node) = self.owner_of(session) else {
            return Err("no live node left to route to".to_string());
        };
        let submitted = match op {
            Op::Create { session } => self.engines[node]
                .create_blocking(*session, script::session_spec(self.seed, *session)),
            Op::Step { session, batches } => self.engines[node]
                .command_blocking(*session, SessionCommand::Step { batches: *batches }),
            Op::Checkpoint { session } => {
                self.engines[node].command_blocking(*session, SessionCommand::Checkpoint)
            }
            Op::Evict { session } => {
                self.engines[node].command_blocking(*session, SessionCommand::Evict)
            }
            Op::Evaluate { session } => {
                self.engines[node].command_blocking(*session, SessionCommand::Evaluate)
            }
        };
        if let Err(error) = submitted {
            let log = self.logs.entry(session).or_default();
            log.push(0xFF);
            log.extend_from_slice(error.to_string().as_bytes());
        }
        self.drain_to_logs(node);
        if self.engines[node].known(session) {
            self.placement.entry(session).or_insert(node);
            self.engines[node]
                .command_blocking(session, SessionCommand::Checkpoint)
                .map_err(|e| format!("checkpoint probe refused: {e}"))?;
            self.drain_to_logs(node);
        }
        Ok(())
    }

    /// Administrative drain of one session: export on the old node
    /// (capture + forget), import on the rendezvous survivor.
    fn handoff(&mut self, op_index: usize, session: SessionId) -> Result<(), String> {
        let Some(old) = self.placement.get(&session).copied() else {
            return Ok(()); // never created (yet) — nothing to move
        };
        let Some(new) = self.rendezvous(session, Some(old)) else {
            return Ok(()); // nowhere to move it
        };
        if self.engines[old]
            .command_blocking(session, SessionCommand::Export)
            .is_err()
        {
            return Ok(());
        }
        let blob = self
            .drain_to_bin(old)
            .into_iter()
            .find_map(|e| match e.kind {
                SessionEventKind::Exported(blob) => Some(blob),
                _ => None,
            })
            .ok_or_else(|| format!("session {session}: export produced no blob"))?;
        self.engines[new]
            .import_blocking(session, blob.clone())
            .map_err(|e| format!("session {session}: import refused: {e}"))?;
        self.drain_to_bin(new);
        self.placement.insert(session, new);
        self.shadows.insert(session, blob);
        *self.shadow_seqs.entry(session).or_insert(0) += 1;
        self.trace.push((op_index, session));
        self.handoffs += 1;
        Ok(())
    }

    /// Crash-and-restart of the routing tier: serialize the cluster's
    /// routing state (placement pins keyed by a stable node address,
    /// shadows stamped with their refresh sequence) through the real
    /// CHAMRTE1 codec, decode it back, and require the recovered view to
    /// match bit for bit. Placement must survive exactly, or a restarted
    /// router would re-derive different owners and break invisibility.
    fn router_restart(&mut self) -> Result<(), String> {
        use chameleon_route::state;
        let mut log: Vec<u8> = state::STATE_MAGIC.to_vec();
        let mut sessions: Vec<SessionId> = self.placement.keys().copied().collect();
        sessions.sort_unstable();
        for &session in &sessions {
            log.extend_from_slice(&state::encode_pin(
                session,
                &format!("node-{}", self.placement[&session]),
            ));
        }
        let mut shadowed: Vec<SessionId> = self.shadows.keys().copied().collect();
        shadowed.sort_unstable();
        for &session in &shadowed {
            let seq = self.shadow_seqs.get(&session).copied().unwrap_or(0);
            log.extend_from_slice(&state::encode_shadow(session, seq, &self.shadows[&session]));
        }
        let decoded = state::decode_state(&log)
            .map_err(|e| format!("router restart: state log unreadable: {e}"))?;
        if let Some(damage) = decoded.damage {
            return Err(format!("router restart: state log damaged: {damage}"));
        }
        for &session in &sessions {
            let expected = format!("node-{}", self.placement[&session]);
            if decoded.image.pins.get(&session) != Some(&expected) {
                return Err(format!(
                    "router restart: session {session} pin did not survive the \
                     CHAMRTE1 round-trip"
                ));
            }
        }
        if decoded.image.pins.len() != sessions.len() {
            return Err("router restart: recovered pin table has extra entries".to_string());
        }
        for &session in &shadowed {
            let seq = self.shadow_seqs.get(&session).copied().unwrap_or(0);
            match decoded.image.shadows.get(&session) {
                Some((s, blob)) if *s == seq && *blob == self.shadows[&session] => {}
                _ => {
                    return Err(format!(
                        "router restart: session {session} shadow (seq {seq}) did not \
                         survive the CHAMRTE1 round-trip"
                    ));
                }
            }
        }
        self.router_restarts += 1;
        Ok(())
    }

    /// Kills a node outright: no export, every session placed on it is
    /// re-homed from its shadow checkpoint (its state after its last
    /// completed op).
    fn kill(&mut self, op_index: usize, node_hint: usize) -> Result<(), String> {
        let nodes = self.engines.len();
        let Some(victim) = (0..nodes)
            .map(|i| (node_hint + i) % nodes)
            .find(|&n| self.alive[n])
            .filter(|_| self.alive.iter().filter(|&&a| a).count() > 1)
        else {
            return Ok(()); // refuse to kill the last survivor
        };
        self.alive[victim] = false;
        self.kills += 1;
        let mut stranded: Vec<SessionId> = self
            .placement
            .iter()
            .filter(|(_, &n)| n == victim)
            .map(|(&s, _)| s)
            .collect();
        stranded.sort_unstable();
        for session in stranded {
            let Some(blob) = self.shadows.get(&session).cloned() else {
                continue;
            };
            let Some(new) = self.rendezvous(session, None) else {
                continue;
            };
            self.engines[new]
                .import_blocking(session, blob)
                .map_err(|e| format!("session {session}: failover import refused: {e}"))?;
            self.drain_to_bin(new);
            self.placement.insert(session, new);
            self.trace.push((op_index, session));
            self.recovered += 1;
        }
        Ok(())
    }

    /// Final `CHAMFLT1` blob of every session, probed on its current
    /// node, in id order.
    fn final_blobs(&mut self) -> Result<Vec<(SessionId, Vec<u8>)>, String> {
        let mut ids: Vec<SessionId> = self.placement.keys().copied().collect();
        ids.sort_unstable();
        let mut blobs = Vec::with_capacity(ids.len());
        for id in ids {
            let node = self.placement[&id];
            self.engines[node]
                .command_blocking(id, SessionCommand::Checkpoint)
                .map_err(|e| format!("final checkpoint refused: {e}"))?;
            let blob = self
                .drain_to_bin(node)
                .into_iter()
                .find_map(|e| match e.kind {
                    SessionEventKind::Checkpointed(blob) => Some(blob),
                    _ => None,
                })
                .ok_or_else(|| format!("session {id}: final checkpoint produced no blob"))?;
            blobs.push((id, blob));
        }
        Ok(blobs)
    }
}

/// Runs the multi-node schedule for one seed; returns the per-session
/// logs, the interruption trace, and the final blobs.
#[allow(clippy::type_complexity)]
fn run_cluster(
    scenario: &Arc<DomainIlScenario>,
    seed: u64,
    nodes: usize,
    ops: &[Op],
    plan: &[(usize, Disruption)],
) -> Result<(Cluster, Vec<(SessionId, Vec<u8>)>), String> {
    let mut cluster = Cluster::new(scenario, seed, nodes);
    for (index, op) in ops.iter().enumerate() {
        for (at, disruption) in plan.iter().filter(|(at, _)| *at == index) {
            match disruption {
                Disruption::Handoff { session } => cluster.handoff(*at, *session)?,
                Disruption::Kill { node } => cluster.kill(*at, *node)?,
                Disruption::RouterRestart => cluster.router_restart()?,
            }
        }
        cluster
            .apply(op)
            .map_err(|e| format!("op {index} ({op:?}): {e}"))?;
    }
    let blobs = cluster.final_blobs()?;
    Ok((cluster, blobs))
}

/// The single-node reference: the same script on one engine, with the
/// multi-node run's interruption trace replayed as local `Evict`
/// commands at the same boundaries (evict is idempotent when the
/// session is already cold, so traces through cold sessions are safe).
#[allow(clippy::type_complexity)]
fn run_reference(
    scenario: &Arc<DomainIlScenario>,
    seed: u64,
    ops: &[Op],
    trace: &Trace,
) -> Result<(HashMap<SessionId, Vec<u8>>, Vec<(SessionId, Vec<u8>)>), String> {
    let faults = script::fault_plan(seed);
    let mut engine = FleetEngine::new_sim(
        Arc::clone(scenario),
        FleetConfig {
            num_shards: 1,
            queue_depth: 4,
            budget_bytes: u64::MAX,
            assignment_seed: splitmix64(seed ^ 0xA551),
            faults,
        },
        seed,
    );
    let mut logs: HashMap<SessionId, Vec<u8>> = HashMap::new();
    let drain =
        |engine: &mut FleetEngine, logs: &mut HashMap<SessionId, Vec<u8>>, to_logs: bool| {
            for event in engine.drain_pending() {
                if to_logs {
                    let log = logs.entry(event.session).or_default();
                    encode_event(log, &event, ShardScope::Exclude);
                }
            }
        };
    for (index, op) in ops.iter().enumerate() {
        for (_, session) in trace.iter().filter(|(at, _)| *at == index) {
            // The stand-in for a handoff/failover: a local interruption
            // at the same boundary. Machinery events stay out of the
            // compared history on both sides.
            let _ = engine.command_blocking(*session, SessionCommand::Evict);
            drain(&mut engine, &mut logs, false);
        }
        let session = op.session();
        let submitted = match op {
            Op::Create { session } => {
                engine.create_blocking(*session, script::session_spec(seed, *session))
            }
            Op::Step { session, batches } => {
                engine.command_blocking(*session, SessionCommand::Step { batches: *batches })
            }
            Op::Checkpoint { session } => {
                engine.command_blocking(*session, SessionCommand::Checkpoint)
            }
            Op::Evict { session } => engine.command_blocking(*session, SessionCommand::Evict),
            Op::Evaluate { session } => engine.command_blocking(*session, SessionCommand::Evaluate),
        };
        if let Err(error) = submitted {
            let log = logs.entry(session).or_default();
            log.push(0xFF);
            log.extend_from_slice(error.to_string().as_bytes());
        }
        drain(&mut engine, &mut logs, true);
        if engine.known(session) {
            engine
                .command_blocking(session, SessionCommand::Checkpoint)
                .map_err(|e| format!("reference probe refused: {e}"))?;
            drain(&mut engine, &mut logs, true);
        }
    }
    let mut ids: Vec<SessionId> = (0..script::SESSION_POOL)
        .filter(|&id| engine.known(id))
        .collect();
    ids.sort_unstable();
    let mut blobs = Vec::with_capacity(ids.len());
    for id in ids {
        engine
            .command_blocking(id, SessionCommand::Checkpoint)
            .map_err(|e| format!("reference final checkpoint refused: {e}"))?;
        let blob = engine
            .drain_pending()
            .into_iter()
            .find_map(|e| match e.kind {
                SessionEventKind::Checkpointed(blob) => Some(blob),
                _ => None,
            })
            .ok_or_else(|| format!("session {id}: reference produced no final blob"))?;
        blobs.push((id, blob));
    }
    Ok((logs, blobs))
}

/// Runs the full multi-node placement-invisibility + replay-determinism
/// check for one seed.
///
/// # Errors
///
/// A human-readable description of the first violated invariant; the
/// seed reproduces it bit-identically.
pub fn check_route_seed(
    scenario: &Arc<DomainIlScenario>,
    seed: u64,
) -> Result<RouteSeedOutcome, String> {
    let ops = script::generate(seed);
    let nodes = 2 + (splitmix64(seed ^ 0x0DE5) % 2) as usize;
    let plan = disruption_plan(seed, ops.len(), nodes);

    let (cluster, blobs) = run_cluster(scenario, seed, nodes, &ops, &plan)
        .map_err(|e| format!("route seed {seed}: {e}"))?;
    let (replay, replay_blobs) = run_cluster(scenario, seed, nodes, &ops, &plan)
        .map_err(|e| format!("route seed {seed} [replay]: {e}"))?;

    // Replay determinism: the same seed must reproduce the same
    // interruption trace, the same per-session histories, and the same
    // final checkpoint bytes.
    if cluster.trace != replay.trace {
        return Err(format!(
            "route seed {seed}: replay performed a different interruption trace"
        ));
    }
    if cluster.logs != replay.logs || blobs != replay_blobs {
        return Err(format!(
            "route seed {seed}: same-seed cluster replay diverged"
        ));
    }

    // Placement invisibility: the single-node reference with the same
    // interruption boundaries must match every observable byte.
    let (ref_logs, ref_blobs) = run_reference(scenario, seed, &ops, &cluster.trace)
        .map_err(|e| format!("route seed {seed} [reference]: {e}"))?;
    for id in 0..script::SESSION_POOL {
        if cluster.logs.get(&id) != ref_logs.get(&id) {
            return Err(format!(
                "route seed {seed}: session {id} history diverges between the \
                 {nodes}-node cluster and the single-node reference"
            ));
        }
    }
    if blobs != ref_blobs {
        return Err(format!(
            "route seed {seed}: final checkpoint bytes diverge between the \
             {nodes}-node cluster and the single-node reference"
        ));
    }

    let mut log_concat = Vec::new();
    for id in 0..script::SESSION_POOL {
        if let Some(log) = cluster.logs.get(&id) {
            log_concat.extend_from_slice(&id.to_le_bytes());
            log_concat.extend_from_slice(log);
        }
    }
    let mut blob_concat = Vec::new();
    for (id, blob) in &blobs {
        blob_concat.extend_from_slice(&id.to_le_bytes());
        blob_concat.extend_from_slice(blob);
    }
    Ok(RouteSeedOutcome {
        seed,
        ops: ops.len(),
        nodes,
        handoffs: cluster.handoffs,
        kills: cluster.kills,
        recovered: cluster.recovered,
        router_restarts: cluster.router_restarts,
        faulted: script::fault_plan(seed).is_some(),
        log_digest: crc32(&log_concat),
        checkpoint_crc: crc32(&blob_concat),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_stream::DatasetSpec;

    fn scenario() -> Arc<DomainIlScenario> {
        Arc::new(DomainIlScenario::generate(
            &DatasetSpec::core50_tiny(),
            0x51A7E57,
        ))
    }

    #[test]
    fn disruption_plans_are_seeded_and_nonempty() {
        for seed in 0..32u64 {
            let a = disruption_plan(seed, 20, 3);
            let b = disruption_plan(seed, 20, 3);
            assert_eq!(a, b);
            assert!(!a.is_empty());
        }
        assert_ne!(disruption_plan(1, 20, 3), disruption_plan(2, 20, 3));
    }

    #[test]
    fn a_clean_and_a_faulted_route_seed_pass_and_reproduce() {
        let scenario = scenario();
        for seed in [0u64, 1] {
            let a = check_route_seed(&scenario, seed).expect("invariants hold");
            let b = check_route_seed(&scenario, seed).expect("invariants hold");
            assert_eq!(a, b, "outcome of route seed {seed} not reproducible");
            assert_eq!(a.faulted, seed % 2 == 1);
        }
    }

    #[test]
    fn plans_schedule_router_restarts() {
        let restarts = (0..32u64)
            .flat_map(|seed| disruption_plan(seed, 20, 3))
            .filter(|(_, d)| *d == Disruption::RouterRestart)
            .count();
        assert!(restarts > 0, "no seed in 0..32 ever restarts the router");
    }

    #[test]
    fn schedules_actually_disrupt() {
        let scenario = scenario();
        let mut moved = 0u64;
        for seed in 0..4u64 {
            let outcome = check_route_seed(&scenario, seed).expect("pass");
            moved += outcome.handoffs + outcome.recovered;
        }
        assert!(moved > 0, "no seed in 0..4 ever moved a session");
    }
}
