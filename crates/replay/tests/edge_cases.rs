//! Edge-case tests for the two replay containers at degenerate
//! capacities (0 and 1) and under single-class eviction pressure —
//! configurations a paper-default run never touches but a user-supplied
//! `--buffer` value can.

use chameleon_replay::{ClassBalancedBuffer, RingBuffer, StoredSample};
use chameleon_tensor::Prng;

fn sample(class: usize, v: f32) -> StoredSample {
    StoredSample::latent(vec![v], class)
}

#[test]
#[should_panic(expected = "capacity must be positive")]
fn ring_buffer_rejects_capacity_zero() {
    let _ = RingBuffer::new(0);
}

#[test]
#[should_panic(expected = "capacity must be positive")]
fn balanced_buffer_rejects_capacity_zero() {
    let _ = ClassBalancedBuffer::new(0);
}

#[test]
fn capacity_one_ring_holds_exactly_the_newest_sample() {
    let mut rng = Prng::new(11);
    let mut b = RingBuffer::new(1);
    assert!(b.is_empty());
    b.push(sample(0, 1.0));
    assert_eq!(b.len(), 1);
    // Every further FIFO push overwrites the single slot.
    b.push(sample(1, 2.0));
    assert_eq!(b.len(), 1);
    assert_eq!(b.items()[0].features[0], 2.0);
    // Random replacement has only one slot to choose.
    let evicted = b.replace_random(sample(2, 3.0), &mut rng).expect("full");
    assert_eq!(evicted.features[0], 2.0);
    assert_eq!(b.len(), 1);
    assert_eq!(b.items()[0].label, 2);
    // Draining the slot resets to empty, and refilling works.
    let taken = b.take(0);
    assert_eq!(taken.label, 2);
    assert!(b.is_empty());
    b.push(sample(3, 4.0));
    assert_eq!(b.read_all().len(), 1);
}

#[test]
fn capacity_one_balanced_buffer_swaps_between_classes() {
    let mut rng = Prng::new(12);
    let mut b = ClassBalancedBuffer::new(1);
    assert!(b.insert(sample(0, 1.0), &mut rng).is_none());
    assert_eq!(b.len(), 1);
    // A different class displaces the resident one: with a single slot
    // the incoming class is always under-represented.
    let evicted = b.insert(sample(1, 2.0), &mut rng).expect("full");
    assert_eq!(evicted.label, 0);
    assert_eq!(b.len(), 1);
    assert_eq!(b.classes(), vec![1]);
    // Same-class offers go through reservoir acceptance; whatever the
    // draw, the buffer keeps exactly one class-1 sample.
    for i in 0..50 {
        if let Some(out) = b.insert(sample(1, 10.0 + i as f32), &mut rng) {
            assert_eq!(out.label, 1);
        }
        assert_eq!(b.len(), 1);
        assert_eq!(b.classes(), vec![1]);
    }
}

#[test]
fn single_class_eviction_pressure_keeps_the_buffer_sound() {
    // Every stored sample and every candidate shares one class: the
    // "largest class" is also the incoming class, so eviction can only
    // do same-class reservoir replacement and the count must stay
    // pinned at capacity.
    let mut rng = Prng::new(13);
    let mut b = ClassBalancedBuffer::new(4);
    let mut evictions = 0;
    for i in 0..200 {
        if let Some(out) = b.insert(sample(7, i as f32), &mut rng) {
            assert_eq!(out.label, 7, "evicted a sample of a class never stored");
            evictions += 1;
        }
        assert!(b.len() <= 4);
    }
    assert_eq!(b.len(), 4);
    assert_eq!(b.classes(), vec![7]);
    assert_eq!(b.class_count(7), 4);
    assert!(evictions > 0, "200 single-class offers never replaced");
    // Reservoir acceptance must also have declined some offers.
    assert!(evictions < 196, "every offer accepted — reservoir inactive");
}

#[test]
fn ring_purge_on_a_fully_corrupt_buffer_empties_it_cleanly() {
    let mut rng = Prng::new(14);
    let mut b = RingBuffer::new(1);
    b.push(sample(0, 1.0));
    for s in b.samples_mut() {
        s.features[0] += 100.0; // break the seal
    }
    assert_eq!(b.purge_corrupt(), 1);
    assert!(b.is_empty());
    assert_eq!(b.stats().corrupt_evictions, 1);
    // The emptied buffer accepts new samples again at FIFO position 0.
    assert!(b.replace_random(sample(1, 2.0), &mut rng).is_none());
    assert_eq!(b.len(), 1);
}

#[test]
fn balanced_purge_on_a_fully_corrupt_single_class_buffer() {
    let mut rng = Prng::new(15);
    let mut b = ClassBalancedBuffer::new(3);
    for i in 0..3 {
        b.insert(sample(5, i as f32), &mut rng);
    }
    for s in b.samples_mut() {
        s.features[0] += 100.0;
    }
    assert_eq!(b.purge_corrupt(), 3);
    assert!(b.is_empty());
    assert!(b.classes().is_empty());
    assert_eq!(b.stats().corrupt_evictions, 3);
    // Refilling after a total purge behaves like a fresh buffer.
    assert!(b.insert(sample(6, 9.0), &mut rng).is_none());
    assert_eq!(b.len(), 1);
}
