//! CRC32 (IEEE) checksums for sample and checkpoint integrity.
//!
//! Replay stores on an edge device live in SRAM/DRAM for the whole
//! deployment lifetime and are exposed to single-event upsets; checkpoints
//! cross a power cycle on flash. Both paths use the same 32-bit CRC so a
//! flipped bit anywhere in the protected payload is detected with
//! probability `1 - 2^-32`.

/// Generates the reflected CRC32 lookup table at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Streaming CRC32 hasher (IEEE polynomial, reflected).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ CRC32_TABLE[idx];
        }
    }

    /// Finishes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Reference values for the IEEE CRC32 ("crc32" in zlib/python).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Crc32::new();
        h.update(b"1234");
        h.update(b"56789");
        assert_eq!(h.finish(), crc32(b"123456789"));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = vec![0u8; 64];
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
