//! Uniform reservoir-sampling buffer.

use chameleon_stream::ConfigError;
use chameleon_tensor::Prng;

use crate::{AccessStats, StoredSample};

/// A bounded buffer holding a uniform random subset of everything offered
/// to it — Vitter's reservoir sampling, the insertion rule of ER, DER, and
/// Latent Replay.
///
/// After `n ≥ capacity` offers, each offered sample is retained with
/// probability `capacity / n`, independent of arrival order; this is what
/// keeps a single replay buffer representative of the whole stream without
/// knowing its length in advance.
#[derive(Clone, Debug)]
pub struct ReservoirBuffer {
    items: Vec<StoredSample>,
    capacity: usize,
    seen: u64,
    stats: AccessStats,
}

impl ReservoirBuffer {
    /// Creates an empty buffer that will hold at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`; use [`ReservoirBuffer::try_new`] for a
    /// `Result`-based validator.
    pub fn new(capacity: usize) -> Self {
        Self::try_new(capacity).expect("buffer capacity must be positive")
    }

    /// Creates an empty buffer, rejecting `capacity == 0` with a
    /// [`ConfigError`] in the same shape as the stream/dataset
    /// validators.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `capacity == 0`.
    pub fn try_new(capacity: usize) -> Result<Self, ConfigError> {
        if capacity == 0 {
            return Err(ConfigError {
                field: "capacity",
                requirement: "must be positive",
            });
        }
        Ok(Self {
            items: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            stats: AccessStats::new(),
        })
    }

    /// Offers a sample to the reservoir. Returns `true` if it was stored
    /// (always, until the buffer is full; with probability `capacity/seen`
    /// afterwards).
    pub fn offer(&mut self, sample: StoredSample, rng: &mut Prng) -> bool {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(sample);
            self.stats.sample_writes += 1;
            return true;
        }
        // Draw in the u64 domain: `seen` is a lifetime counter, and
        // `below(seen as usize)` silently truncates past 2³² offers on
        // 32-bit targets, skewing acceptance odds.
        let j = rng.below_u64(self.seen);
        if j < self.capacity as u64 {
            self.items[j as usize] = sample;
            self.stats.sample_writes += 1;
            true
        } else {
            false
        }
    }

    /// Draws up to `k` distinct stored samples uniformly at random.
    pub fn sample_batch(&mut self, k: usize, rng: &mut Prng) -> Vec<StoredSample> {
        let idx = rng.sample_without_replacement(self.items.len(), k);
        self.stats.sample_reads += idx.len() as u64;
        idx.into_iter().map(|i| self.items[i].clone()).collect()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total samples offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Borrow the stored samples (does not count as a replay read).
    pub fn items(&self) -> &[StoredSample] {
        &self.items
    }

    /// Mutable access to stored samples, for in-place fault injection.
    /// Does not count replay reads or writes.
    pub fn samples_mut(&mut self) -> impl Iterator<Item = &mut StoredSample> {
        self.items.iter_mut()
    }

    /// Removes every sample failing its integrity check, returning how many
    /// were evicted and recording them in the corrupt-eviction counter.
    /// `seen` is left untouched so future acceptance odds are unchanged.
    pub fn purge_corrupt(&mut self) -> usize {
        let before = self.items.len();
        self.items.retain(|s| s.integrity_ok());
        let evicted = before - self.items.len();
        self.stats.corrupt_evictions += evicted as u64;
        evicted
    }

    /// Access counters accumulated so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize) -> StoredSample {
        StoredSample::latent(vec![i as f32], i % 5)
    }

    #[test]
    fn fills_to_capacity_then_stays_bounded() {
        let mut rng = Prng::new(0);
        let mut b = ReservoirBuffer::new(8);
        for i in 0..100 {
            b.offer(sample(i), &mut rng);
            assert!(b.len() <= 8);
        }
        assert_eq!(b.len(), 8);
        assert_eq!(b.seen(), 100);
    }

    #[test]
    fn first_capacity_offers_are_always_kept() {
        let mut rng = Prng::new(1);
        let mut b = ReservoirBuffer::new(4);
        for i in 0..4 {
            assert!(b.offer(sample(i), &mut rng));
        }
    }

    #[test]
    fn retention_is_approximately_uniform() {
        // Offer 0..200 to a capacity-20 reservoir many times; each item
        // should be retained with probability ~0.1.
        let trials = 400;
        let mut early = 0usize; // retention of item 5
        let mut late = 0usize; // retention of item 195
        for t in 0..trials {
            let mut rng = Prng::new(t as u64);
            let mut b = ReservoirBuffer::new(20);
            for i in 0..200 {
                b.offer(sample(i), &mut rng);
            }
            if b.items().iter().any(|s| s.features[0] == 5.0) {
                early += 1;
            }
            if b.items().iter().any(|s| s.features[0] == 195.0) {
                late += 1;
            }
        }
        let p_early = early as f32 / trials as f32;
        let p_late = late as f32 / trials as f32;
        assert!((p_early - 0.1).abs() < 0.05, "early retention {p_early}");
        assert!((p_late - 0.1).abs() < 0.05, "late retention {p_late}");
    }

    #[test]
    fn sample_batch_returns_distinct_items() {
        let mut rng = Prng::new(2);
        let mut b = ReservoirBuffer::new(10);
        for i in 0..10 {
            b.offer(sample(i), &mut rng);
        }
        let batch = b.sample_batch(5, &mut rng);
        assert_eq!(batch.len(), 5);
        let mut keys: Vec<i64> = batch.iter().map(|s| s.features[0] as i64).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 5);
    }

    #[test]
    fn sample_batch_clamps_to_len() {
        let mut rng = Prng::new(3);
        let mut b = ReservoirBuffer::new(10);
        b.offer(sample(0), &mut rng);
        assert_eq!(b.sample_batch(5, &mut rng).len(), 1);
        assert!(ReservoirBuffer::new(4).sample_batch(3, &mut rng).is_empty());
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let mut rng = Prng::new(4);
        let mut b = ReservoirBuffer::new(4);
        for i in 0..4 {
            b.offer(sample(i), &mut rng);
        }
        let _ = b.sample_batch(2, &mut rng);
        let s = b.stats();
        assert_eq!(s.sample_writes, 4);
        assert_eq!(s.sample_reads, 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = ReservoirBuffer::new(0);
    }

    #[test]
    fn try_new_rejects_zero_capacity_with_config_error() {
        let err = ReservoirBuffer::try_new(0).unwrap_err();
        assert_eq!(err.field, "capacity");
        assert!(ReservoirBuffer::try_new(1).is_ok());
    }
}
