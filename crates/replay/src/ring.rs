//! Bounded FIFO buffer with random replacement support.

use chameleon_tensor::Prng;

use crate::{AccessStats, StoredSample};

/// A small bounded buffer supporting FIFO insertion *and* replace-at-random
/// — the container for Chameleon's short-term store `M_s`.
///
/// The paper's Algorithm 1 line 10 replaces a *uniformly random* short-term
/// slot with the selected incoming element once the store is full
/// (`replace(m_s, b_t)`), which [`RingBuffer::replace_random`] implements;
/// before that, plain pushes fill the store.
#[derive(Clone, Debug)]
pub struct RingBuffer {
    items: Vec<StoredSample>,
    capacity: usize,
    next_fifo: usize,
    stats: AccessStats,
}

impl RingBuffer {
    /// Creates an empty buffer of at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            items: Vec::with_capacity(capacity),
            capacity,
            next_fifo: 0,
            stats: AccessStats::new(),
        }
    }

    /// Pushes a sample FIFO-style: appends while below capacity, then
    /// overwrites the oldest slot.
    pub fn push(&mut self, sample: StoredSample) {
        self.stats.sample_writes += 1;
        if self.items.len() < self.capacity {
            self.items.push(sample);
        } else {
            self.items[self.next_fifo] = sample;
            self.next_fifo = (self.next_fifo + 1) % self.capacity;
        }
    }

    /// Replaces a uniformly random stored sample with `sample`, returning
    /// the evicted one; appends instead while below capacity (returning
    /// `None`).
    pub fn replace_random(&mut self, sample: StoredSample, rng: &mut Prng) -> Option<StoredSample> {
        self.stats.sample_writes += 1;
        if self.items.len() < self.capacity {
            self.items.push(sample);
            return None;
        }
        let i = rng.below(self.items.len());
        Some(std::mem::replace(&mut self.items[i], sample))
    }

    /// Removes and returns the sample at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn take(&mut self, index: usize) -> StoredSample {
        assert!(index < self.items.len(), "index {index} out of bounds");
        self.stats.sample_reads += 1;
        let s = self.items.swap_remove(index);
        self.next_fifo = 0;
        s
    }

    /// Reads the entire buffer contents (Chameleon sweeps the whole
    /// short-term store for every new sample).
    pub fn read_all(&mut self) -> Vec<StoredSample> {
        self.stats.sample_reads += self.items.len() as u64;
        self.items.clone()
    }

    /// Reads the buffer like [`RingBuffer::read_all`], but first evicts
    /// every sample whose integrity checksum no longer matches its contents
    /// (memory-upset quarantine). Evictions are counted in
    /// [`AccessStats::corrupt_evictions`]; only surviving samples count as
    /// reads.
    pub fn read_all_verified(&mut self) -> Vec<StoredSample> {
        self.purge_corrupt();
        self.read_all()
    }

    /// Removes every sample failing its integrity check, returning how many
    /// were evicted and recording them in the corrupt-eviction counter.
    pub fn purge_corrupt(&mut self) -> usize {
        let before = self.items.len();
        self.items.retain(|s| s.integrity_ok());
        let evicted = before - self.items.len();
        self.stats.corrupt_evictions += evicted as u64;
        if evicted > 0 {
            self.next_fifo = 0;
        }
        evicted
    }

    /// Borrow stored samples without counting a replay read.
    pub fn items(&self) -> &[StoredSample] {
        &self.items
    }

    /// Mutable access to stored samples, for in-place fault injection.
    /// Does not count replay reads or writes.
    pub fn samples_mut(&mut self) -> impl Iterator<Item = &mut StoredSample> {
        self.items.iter_mut()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Access counters accumulated so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Overwrites the access counters — used when restoring a checkpointed
    /// session so lifetime traffic/quarantine counts survive eviction.
    pub fn restore_stats(&mut self, stats: AccessStats) {
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize) -> StoredSample {
        StoredSample::latent(vec![i as f32], 0)
    }

    #[test]
    fn push_fifo_overwrites_oldest() {
        let mut b = RingBuffer::new(3);
        for i in 0..5 {
            b.push(sample(i));
        }
        let vals: Vec<f32> = b.items().iter().map(|s| s.features[0]).collect();
        // 0,1,2 then 3 overwrites slot0, 4 overwrites slot1 → [3,4,2].
        assert_eq!(vals, vec![3.0, 4.0, 2.0]);
    }

    #[test]
    fn replace_random_keeps_size_and_returns_evicted() {
        let mut rng = Prng::new(0);
        let mut b = RingBuffer::new(4);
        for i in 0..4 {
            assert!(b.replace_random(sample(i), &mut rng).is_none());
        }
        let evicted = b.replace_random(sample(99), &mut rng);
        assert!(evicted.is_some());
        assert_eq!(b.len(), 4);
        assert!(b.items().iter().any(|s| s.features[0] == 99.0));
    }

    #[test]
    fn replace_random_hits_every_slot_eventually() {
        let mut rng = Prng::new(1);
        let mut b = RingBuffer::new(4);
        for i in 0..4 {
            b.push(sample(i));
        }
        for i in 100..200 {
            b.replace_random(sample(i), &mut rng);
        }
        assert!(b.items().iter().all(|s| s.features[0] >= 100.0));
    }

    #[test]
    fn read_all_counts_reads() {
        let mut b = RingBuffer::new(3);
        b.push(sample(0));
        b.push(sample(1));
        let all = b.read_all();
        assert_eq!(all.len(), 2);
        assert_eq!(b.stats().sample_reads, 2);
        assert_eq!(b.stats().sample_writes, 2);
    }

    #[test]
    fn take_removes_sample() {
        let mut b = RingBuffer::new(3);
        b.push(sample(0));
        b.push(sample(1));
        let t = b.take(0);
        assert_eq!(t.features[0], 0.0);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn read_all_verified_quarantines_corruption() {
        let mut b = RingBuffer::new(4);
        for i in 0..3 {
            b.push(sample(i));
        }
        // Corrupt one slot in place without resealing.
        for (i, s) in b.samples_mut().enumerate() {
            if i == 1 {
                s.features[0] = f32::from_bits(s.features[0].to_bits() ^ 1);
            }
        }
        let survivors = b.read_all_verified();
        assert_eq!(survivors.len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.stats().corrupt_evictions, 1);
        assert!(survivors.iter().all(|s| s.integrity_ok()));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn take_out_of_bounds_panics() {
        let mut b = RingBuffer::new(2);
        b.push(sample(0));
        let _ = b.take(5);
    }
}
