//! Physical placement of a replay store in the memory hierarchy.

/// Where a replay store physically resides on the target device.
///
/// This mirrors the placement split in `chameleon-hw`'s memory simulator:
/// Chameleon's 10-sample short-term store fits in the ZCU102's on-chip
/// scratchpad, while the long-term store (and every baseline's single large
/// buffer) spills to off-chip DRAM. The distinction matters for fault
/// injection because DRAM retention upsets occur at a much higher rate than
/// flip-flop/SRAM upsets, so the two stores see different bit-error rates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StorePlacement {
    /// On-chip SRAM/BRAM scratchpad (Chameleon's short-term store).
    OnChipSram,
    /// Off-chip DRAM (long-term store, baseline replay buffers).
    OffChipDram,
}

impl StorePlacement {
    /// Short human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            StorePlacement::OnChipSram => "on-chip-sram",
            StorePlacement::OffChipDram => "off-chip-dram",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        assert_ne!(
            StorePlacement::OnChipSram.name(),
            StorePlacement::OffChipDram.name()
        );
    }
}
