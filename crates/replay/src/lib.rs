//! Replay-buffer primitives for the Chameleon reproduction.
//!
//! Every replay-based continual-learning method in the paper is built on a
//! bounded sample store with an insertion policy and a retrieval policy.
//! This crate provides the storage layer:
//!
//! * [`StoredSample`] — a replayable sample with the optional payloads the
//!   baselines attach (DER's logits, GSS's gradient direction),
//! * [`ReservoirBuffer`] — uniform reservoir sampling over the stream
//!   (ER/DER/Latent Replay's insertion rule),
//! * [`RingBuffer`] — FIFO store (Chameleon's short-term buffer *container*;
//!   its probabilistic insertion rule lives in `chameleon-core`),
//! * [`ClassBalancedBuffer`] — an equal-per-class store (Chameleon's
//!   long-term buffer container),
//! * [`AccessStats`] — read/write counters every buffer maintains, which the
//!   hardware model converts into on-chip/off-chip traffic for Table II.
//!
//! Resilience support: every [`StoredSample`] is sealed with a [`crc32`]
//! checksum at construction, buffers can quarantine corrupted slots
//! (`purge_corrupt`), and [`StorePlacement`] records whether a store lives
//! in on-chip SRAM or off-chip DRAM — the split `chameleon-faults` uses to
//! scale bit-upset rates.
//!
//! # Example
//!
//! ```
//! use chameleon_replay::{ReservoirBuffer, StoredSample};
//! use chameleon_tensor::Prng;
//!
//! let mut rng = Prng::new(0);
//! let mut buffer = ReservoirBuffer::new(3);
//! for i in 0..10 {
//!     buffer.offer(StoredSample::latent(vec![i as f32], i % 2), &mut rng);
//! }
//! assert_eq!(buffer.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balanced;
pub mod codec;
mod integrity;
mod placement;
mod reservoir;
mod ring;
mod sample;
mod stats;

pub use balanced::ClassBalancedBuffer;
pub use codec::{decode_latent, decode_latent_into, encode_latent, CodecError, Precision};
pub use integrity::{crc32, Crc32};
pub use placement::StorePlacement;
pub use reservoir::ReservoirBuffer;
pub use ring::RingBuffer;
pub use sample::StoredSample;
pub use stats::AccessStats;
