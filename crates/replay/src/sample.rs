//! The unit of replay storage.

use crate::integrity::Crc32;

/// One stored replay sample.
///
/// `features` holds whatever representation the owning method stores — raw
/// input for ER/DER/GSS, a latent activation for Latent Replay and
/// Chameleon. Optional payloads carry the extra state some baselines
/// require. Memory accounting for the tables is done with the *nominal*
/// shapes in [`chameleon_stream::shapes`], not the simulated vector sizes.
///
/// Every sample carries a CRC32 over its contents, sealed at construction
/// time. Replay stores are long-lived and exposed to memory upsets, so
/// readers can call [`StoredSample::integrity_ok`] to detect silent
/// corruption before training on a sample. Code that *legitimately* mutates
/// a sample must call [`StoredSample::reseal`] afterwards; fault injection
/// deliberately does not.
///
/// [`chameleon_stream::shapes`]: https://docs.rs/chameleon-stream
#[derive(Clone, Debug, PartialEq)]
pub struct StoredSample {
    /// Stored representation (raw or latent, method-dependent).
    pub features: Vec<f32>,
    /// Ground-truth class label.
    pub label: usize,
    /// Teacher logits recorded at insertion time (DER).
    pub logits: Option<Vec<f32>>,
    /// Flattened gradient direction recorded at insertion time (GSS).
    pub gradient: Option<Vec<f32>>,
    /// CRC32 over the fields above, sealed at construction.
    checksum: u32,
}

impl StoredSample {
    fn sealed(
        features: Vec<f32>,
        label: usize,
        logits: Option<Vec<f32>>,
        gradient: Option<Vec<f32>>,
    ) -> Self {
        let mut sample = Self {
            features,
            label,
            logits,
            gradient,
            checksum: 0,
        };
        sample.reseal();
        sample
    }

    /// A latent-representation sample (Latent Replay, Chameleon).
    pub fn latent(features: Vec<f32>, label: usize) -> Self {
        Self::sealed(features, label, None, None)
    }

    /// A raw-input sample (ER).
    pub fn raw(features: Vec<f32>, label: usize) -> Self {
        Self::sealed(features, label, None, None)
    }

    /// A raw sample with recorded teacher logits (DER).
    pub fn with_logits(features: Vec<f32>, label: usize, logits: Vec<f32>) -> Self {
        Self::sealed(features, label, Some(logits), None)
    }

    /// A raw sample with a recorded gradient direction (GSS).
    pub fn with_gradient(features: Vec<f32>, label: usize, gradient: Vec<f32>) -> Self {
        Self::sealed(features, label, None, Some(gradient))
    }

    /// Reconstructs a sample with an *already recorded* checksum — used by
    /// checkpoint loading so corruption that happened before a save is still
    /// detected after the restore.
    pub fn from_parts(
        features: Vec<f32>,
        label: usize,
        logits: Option<Vec<f32>>,
        gradient: Option<Vec<f32>>,
        checksum: u32,
    ) -> Self {
        Self {
            features,
            label,
            logits,
            gradient,
            checksum,
        }
    }

    /// Dimension of the stored representation.
    pub fn dim(&self) -> usize {
        self.features.len()
    }

    /// The checksum sealed over this sample's contents.
    pub fn checksum(&self) -> u32 {
        self.checksum
    }

    /// CRC32 of the sample's *current* contents.
    fn content_checksum(&self) -> u32 {
        let mut h = Crc32::new();
        h.update(&(self.label as u64).to_le_bytes());
        h.update(&(self.features.len() as u64).to_le_bytes());
        for &v in &self.features {
            h.update(&v.to_bits().to_le_bytes());
        }
        for payload in [&self.logits, &self.gradient] {
            match payload {
                Some(values) => {
                    h.update(&[1]);
                    h.update(&(values.len() as u64).to_le_bytes());
                    for &v in values {
                        h.update(&v.to_bits().to_le_bytes());
                    }
                }
                None => h.update(&[0]),
            }
        }
        h.finish()
    }

    /// Whether the sealed checksum still matches the contents.
    pub fn integrity_ok(&self) -> bool {
        self.checksum == self.content_checksum()
    }

    /// Recomputes the checksum after a legitimate mutation.
    pub fn reseal(&mut self) {
        self.checksum = self.content_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_payloads() {
        let s = StoredSample::latent(vec![1.0, 2.0], 3);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.label, 3);
        assert!(s.logits.is_none() && s.gradient.is_none());

        let d = StoredSample::with_logits(vec![0.0], 1, vec![0.5, 0.5]);
        assert_eq!(d.logits.as_deref(), Some(&[0.5, 0.5][..]));

        let g = StoredSample::with_gradient(vec![0.0], 0, vec![1.0]);
        assert_eq!(g.gradient.as_deref(), Some(&[1.0][..]));
    }

    #[test]
    fn fresh_samples_pass_integrity() {
        assert!(StoredSample::latent(vec![0.5; 8], 2).integrity_ok());
        assert!(StoredSample::with_logits(vec![1.0], 0, vec![0.1]).integrity_ok());
    }

    #[test]
    fn bit_flip_breaks_integrity_and_reseal_restores_it() {
        let mut s = StoredSample::latent(vec![1.0, -2.0, 3.0], 1);
        s.features[1] = f32::from_bits(s.features[1].to_bits() ^ (1 << 17));
        assert!(!s.integrity_ok());
        s.reseal();
        assert!(s.integrity_ok());
    }

    #[test]
    fn label_corruption_is_detected() {
        let mut s = StoredSample::latent(vec![0.0; 4], 3);
        s.label = 4;
        assert!(!s.integrity_ok());
    }

    #[test]
    fn from_parts_preserves_recorded_checksum() {
        let mut s = StoredSample::latent(vec![1.0], 0);
        let good = s.checksum();
        s.features[0] = 2.0; // corrupt in place, do not reseal
        let restored = StoredSample::from_parts(s.features.clone(), s.label, None, None, good);
        assert!(
            !restored.integrity_ok(),
            "pre-save corruption must survive a roundtrip"
        );
        let clean = StoredSample::from_parts(vec![1.0], 0, None, None, good);
        assert!(clean.integrity_ok());
    }
}
