//! The unit of replay storage.

use crate::codec::{self, CodecError, Precision};
use crate::integrity::Crc32;

/// One stored replay sample.
///
/// `features` holds whatever representation the owning method stores — raw
/// input for ER/DER/GSS, a latent activation for Latent Replay and
/// Chameleon. Optional payloads carry the extra state some baselines
/// require. Memory accounting for the tables is done with the *nominal*
/// shapes in [`chameleon_stream::shapes`], not the simulated vector sizes.
///
/// Every sample carries a CRC32 over its contents, sealed at construction
/// time. Replay stores are long-lived and exposed to memory upsets, so
/// readers can call [`StoredSample::integrity_ok`] to detect silent
/// corruption before training on a sample. Code that *legitimately* mutates
/// a sample must call [`StoredSample::reseal`] afterwards; fault injection
/// deliberately does not.
///
/// [`chameleon_stream::shapes`]: https://docs.rs/chameleon-stream
#[derive(Clone, Debug, PartialEq)]
pub struct StoredSample {
    /// Stored representation (raw or latent, method-dependent).
    pub features: Vec<f32>,
    /// Ground-truth class label.
    pub label: usize,
    /// Teacher logits recorded at insertion time (DER).
    pub logits: Option<Vec<f32>>,
    /// Flattened gradient direction recorded at insertion time (GSS).
    pub gradient: Option<Vec<f32>>,
    /// CRC32 over the fields above, sealed at construction.
    checksum: u32,
    /// Quantized encoding of `features`, present iff the sample was
    /// stored through the latent codec. The packed bytes are the durable
    /// truth — checkpoints serialize them verbatim and restores decode
    /// `features` from them — so the dequantized floats round-trip
    /// bit-identically and the insertion-time CRC stays valid across
    /// any number of evict/restore cycles.
    packed: Option<Vec<u8>>,
}

impl StoredSample {
    fn sealed(
        features: Vec<f32>,
        label: usize,
        logits: Option<Vec<f32>>,
        gradient: Option<Vec<f32>>,
    ) -> Self {
        let mut sample = Self {
            features,
            label,
            logits,
            gradient,
            checksum: 0,
            packed: None,
        };
        sample.checksum = sample.content_checksum();
        sample
    }

    /// A latent-representation sample (Latent Replay, Chameleon).
    pub fn latent(features: Vec<f32>, label: usize) -> Self {
        Self::sealed(features, label, None, None)
    }

    /// A latent sample stored through the quantized codec: `features`
    /// are encoded at `precision`, the packed bytes are kept, and the
    /// in-RAM floats become the *decoded* (on-grid) values — so what
    /// training reads is exactly what a checkpoint restore will read.
    /// At [`Precision::F32`] this is identical to [`StoredSample::latent`].
    pub fn latent_quantized(features: Vec<f32>, label: usize, precision: Precision) -> Self {
        if precision == Precision::F32 {
            return Self::latent(features, label);
        }
        let packed = codec::encode_latent(precision, &features);
        let (_, on_grid) =
            codec::decode_latent(&packed).expect("a freshly encoded latent always decodes");
        let mut sample = Self::sealed(on_grid, label, None, None);
        sample.packed = Some(packed);
        sample
    }

    /// Reconstructs a quantized sample from its packed bytes and an
    /// *already recorded* checksum (the quantized twin of
    /// [`StoredSample::from_parts`]): `features` are decoded from the
    /// blob, so a clean save/restore reproduces the exact floats the
    /// checksum was sealed over, while pre-save corruption (re-encoded
    /// from damaged floats) still fails [`StoredSample::integrity_ok`].
    pub fn from_packed_parts(
        packed: Vec<u8>,
        label: usize,
        checksum: u32,
    ) -> Result<Self, CodecError> {
        let (_, features) = codec::decode_latent(&packed)?;
        Ok(Self {
            features,
            label,
            logits: None,
            gradient: None,
            checksum,
            packed: Some(packed),
        })
    }

    /// The packed codec bytes, if this sample was stored quantized.
    pub fn packed(&self) -> Option<&[u8]> {
        self.packed.as_deref()
    }

    /// The packed bytes a checkpoint should serialize for this sample.
    ///
    /// An intact sample hands out its stored blob verbatim (bit-stable
    /// across capture→restore→capture). A sample whose floats no longer
    /// match its CRC — an unrepaired memory upset — is re-encoded from
    /// the damaged floats instead, so the corruption persists *and
    /// stays detectable*: the decoded restore won't match the recorded
    /// checksum either.
    pub fn packed_for_write(&self, precision: Precision) -> Vec<u8> {
        match &self.packed {
            Some(blob) if self.integrity_ok() => blob.clone(),
            _ => codec::encode_latent(precision, &self.features),
        }
    }

    /// Re-projects an f32 sample onto the `precision` grid and reseals
    /// it — the v2→v3 migration path for checkpoints written before the
    /// codec existed. Corrupted samples are left untouched so the
    /// quarantine machinery still sees them.
    pub fn requantize(&mut self, precision: Precision) {
        if precision == Precision::F32 || !self.integrity_ok() {
            return;
        }
        let packed = codec::encode_latent(precision, &self.features);
        let (_, on_grid) =
            codec::decode_latent(&packed).expect("a freshly encoded latent always decodes");
        self.features = on_grid;
        self.packed = Some(packed);
        self.checksum = self.content_checksum();
    }

    /// A raw-input sample (ER).
    pub fn raw(features: Vec<f32>, label: usize) -> Self {
        Self::sealed(features, label, None, None)
    }

    /// A raw sample with recorded teacher logits (DER).
    pub fn with_logits(features: Vec<f32>, label: usize, logits: Vec<f32>) -> Self {
        Self::sealed(features, label, Some(logits), None)
    }

    /// A raw sample with a recorded gradient direction (GSS).
    pub fn with_gradient(features: Vec<f32>, label: usize, gradient: Vec<f32>) -> Self {
        Self::sealed(features, label, None, Some(gradient))
    }

    /// Reconstructs a sample with an *already recorded* checksum — used by
    /// checkpoint loading so corruption that happened before a save is still
    /// detected after the restore.
    pub fn from_parts(
        features: Vec<f32>,
        label: usize,
        logits: Option<Vec<f32>>,
        gradient: Option<Vec<f32>>,
        checksum: u32,
    ) -> Self {
        Self {
            features,
            label,
            logits,
            gradient,
            checksum,
            packed: None,
        }
    }

    /// Dimension of the stored representation.
    pub fn dim(&self) -> usize {
        self.features.len()
    }

    /// The checksum sealed over this sample's contents.
    pub fn checksum(&self) -> u32 {
        self.checksum
    }

    /// CRC32 of the sample's *current* contents.
    fn content_checksum(&self) -> u32 {
        let mut h = Crc32::new();
        h.update(&(self.label as u64).to_le_bytes());
        h.update(&(self.features.len() as u64).to_le_bytes());
        for &v in &self.features {
            h.update(&v.to_bits().to_le_bytes());
        }
        for payload in [&self.logits, &self.gradient] {
            match payload {
                Some(values) => {
                    h.update(&[1]);
                    h.update(&(values.len() as u64).to_le_bytes());
                    for &v in values {
                        h.update(&v.to_bits().to_le_bytes());
                    }
                }
                None => h.update(&[0]),
            }
        }
        h.finish()
    }

    /// Whether the sealed checksum still matches the contents.
    pub fn integrity_ok(&self) -> bool {
        self.checksum == self.content_checksum()
    }

    /// Recomputes the checksum after a legitimate mutation. Any stale
    /// packed encoding is dropped — the mutated floats are the truth now
    /// and will be re-encoded at the next checkpoint.
    pub fn reseal(&mut self) {
        self.packed = None;
        self.checksum = self.content_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_payloads() {
        let s = StoredSample::latent(vec![1.0, 2.0], 3);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.label, 3);
        assert!(s.logits.is_none() && s.gradient.is_none());

        let d = StoredSample::with_logits(vec![0.0], 1, vec![0.5, 0.5]);
        assert_eq!(d.logits.as_deref(), Some(&[0.5, 0.5][..]));

        let g = StoredSample::with_gradient(vec![0.0], 0, vec![1.0]);
        assert_eq!(g.gradient.as_deref(), Some(&[1.0][..]));
    }

    #[test]
    fn fresh_samples_pass_integrity() {
        assert!(StoredSample::latent(vec![0.5; 8], 2).integrity_ok());
        assert!(StoredSample::with_logits(vec![1.0], 0, vec![0.1]).integrity_ok());
    }

    #[test]
    fn bit_flip_breaks_integrity_and_reseal_restores_it() {
        let mut s = StoredSample::latent(vec![1.0, -2.0, 3.0], 1);
        s.features[1] = f32::from_bits(s.features[1].to_bits() ^ (1 << 17));
        assert!(!s.integrity_ok());
        s.reseal();
        assert!(s.integrity_ok());
    }

    #[test]
    fn label_corruption_is_detected() {
        let mut s = StoredSample::latent(vec![0.0; 4], 3);
        s.label = 4;
        assert!(!s.integrity_ok());
    }

    #[test]
    fn quantized_samples_hold_on_grid_floats_and_pass_integrity() {
        let raw = vec![0.113_f32, -2.7, 5.5, 0.0];
        let s = StoredSample::latent_quantized(raw.clone(), 2, Precision::Int8);
        assert!(s.integrity_ok());
        let packed = s.packed().expect("int8 samples keep their packed bytes");
        let (_, decoded) = codec::decode_latent(packed).expect("decode");
        assert_eq!(
            s.features.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            decoded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "in-RAM floats must be exactly the decoded grid values"
        );
        assert_ne!(s.features, raw, "int8 projection moves off-grid values");
        // F32 degenerates to the plain constructor: no packed bytes.
        let f = StoredSample::latent_quantized(raw.clone(), 2, Precision::F32);
        assert_eq!(f, StoredSample::latent(raw, 2));
        assert!(f.packed().is_none());
    }

    #[test]
    fn packed_roundtrip_reproduces_the_sample_exactly() {
        let s = StoredSample::latent_quantized(vec![1.0, 2.25, -9.5], 4, Precision::F16);
        let blob = s.packed_for_write(Precision::F16);
        let restored =
            StoredSample::from_packed_parts(blob, s.label, s.checksum()).expect("restore");
        assert_eq!(restored, s);
        assert!(restored.integrity_ok());
        // And the write side is a fixed point: capture→restore→capture.
        assert_eq!(
            restored.packed_for_write(Precision::F16),
            s.packed_for_write(Precision::F16)
        );
    }

    #[test]
    fn corrupted_quantized_sample_is_reencoded_and_stays_detectable() {
        let mut s = StoredSample::latent_quantized(vec![1.0, 2.0, 3.0], 0, Precision::Int8);
        s.features[0] += 40.0; // upset, deliberately not resealed
        assert!(!s.integrity_ok());
        let blob = s.packed_for_write(Precision::Int8);
        assert_ne!(
            Some(blob.as_slice()),
            s.packed(),
            "a corrupt sample must not serialize its stale packed bytes"
        );
        let restored =
            StoredSample::from_packed_parts(blob, s.label, s.checksum()).expect("restore");
        assert!(
            !restored.integrity_ok(),
            "pre-save corruption must survive a quantized roundtrip"
        );
    }

    #[test]
    fn reseal_drops_stale_packed_bytes() {
        let mut s = StoredSample::latent_quantized(vec![1.0, 2.0], 1, Precision::Int8);
        s.features[0] = 7.0;
        s.reseal();
        assert!(s.integrity_ok());
        assert!(s.packed().is_none());
    }

    #[test]
    fn requantize_projects_and_reseals_clean_samples_only() {
        let mut s = StoredSample::latent(vec![0.1234, 5.6789, -3.21], 2);
        s.requantize(Precision::Int8);
        assert!(s.integrity_ok());
        assert!(s.packed().is_some());
        let mut corrupt = StoredSample::latent(vec![1.0, 2.0], 0);
        corrupt.features[0] = 9.0;
        s.requantize(Precision::F32);
        corrupt.requantize(Precision::Int8);
        assert!(
            !corrupt.integrity_ok(),
            "corrupt samples stay quarantinable"
        );
        assert!(corrupt.packed().is_none());
    }

    #[test]
    fn from_parts_preserves_recorded_checksum() {
        let mut s = StoredSample::latent(vec![1.0], 0);
        let good = s.checksum();
        s.features[0] = 2.0; // corrupt in place, do not reseal
        let restored = StoredSample::from_parts(s.features.clone(), s.label, None, None, good);
        assert!(
            !restored.integrity_ok(),
            "pre-save corruption must survive a roundtrip"
        );
        let clean = StoredSample::from_parts(vec![1.0], 0, None, None, good);
        assert!(clean.integrity_ok());
    }
}
