//! The unit of replay storage.

/// One stored replay sample.
///
/// `features` holds whatever representation the owning method stores — raw
/// input for ER/DER/GSS, a latent activation for Latent Replay and
/// Chameleon. Optional payloads carry the extra state some baselines
/// require. Memory accounting for the tables is done with the *nominal*
/// shapes in [`chameleon_stream::shapes`], not the simulated vector sizes.
///
/// [`chameleon_stream::shapes`]: https://docs.rs/chameleon-stream
#[derive(Clone, Debug, PartialEq)]
pub struct StoredSample {
    /// Stored representation (raw or latent, method-dependent).
    pub features: Vec<f32>,
    /// Ground-truth class label.
    pub label: usize,
    /// Teacher logits recorded at insertion time (DER).
    pub logits: Option<Vec<f32>>,
    /// Flattened gradient direction recorded at insertion time (GSS).
    pub gradient: Option<Vec<f32>>,
}

impl StoredSample {
    /// A latent-representation sample (Latent Replay, Chameleon).
    pub fn latent(features: Vec<f32>, label: usize) -> Self {
        Self {
            features,
            label,
            logits: None,
            gradient: None,
        }
    }

    /// A raw-input sample (ER).
    pub fn raw(features: Vec<f32>, label: usize) -> Self {
        Self {
            features,
            label,
            logits: None,
            gradient: None,
        }
    }

    /// A raw sample with recorded teacher logits (DER).
    pub fn with_logits(features: Vec<f32>, label: usize, logits: Vec<f32>) -> Self {
        Self {
            features,
            label,
            logits: Some(logits),
            gradient: None,
        }
    }

    /// A raw sample with a recorded gradient direction (GSS).
    pub fn with_gradient(features: Vec<f32>, label: usize, gradient: Vec<f32>) -> Self {
        Self {
            features,
            label,
            logits: None,
            gradient: Some(gradient),
        }
    }

    /// Dimension of the stored representation.
    pub fn dim(&self) -> usize {
        self.features.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_payloads() {
        let s = StoredSample::latent(vec![1.0, 2.0], 3);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.label, 3);
        assert!(s.logits.is_none() && s.gradient.is_none());

        let d = StoredSample::with_logits(vec![0.0], 1, vec![0.5, 0.5]);
        assert_eq!(d.logits.as_deref(), Some(&[0.5, 0.5][..]));

        let g = StoredSample::with_gradient(vec![0.0], 0, vec![1.0]);
        assert_eq!(g.gradient.as_deref(), Some(&[1.0][..]));
    }
}
