//! Buffer access accounting.

/// Read/write counters maintained by every buffer.
///
/// The hardware model (crate `chameleon-hw`) multiplies these counts by the
/// nominal per-sample byte size and the buffer's placement (on-chip SRAM for
/// Chameleon's short-term store, off-chip DRAM for everything large) to
/// obtain the memory-traffic component of Table II's latency/energy numbers
/// — the paper attributes Latent Replay's 7× energy gap almost entirely to
/// this traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Samples read out of the buffer (for replay training).
    pub sample_reads: u64,
    /// Samples written into the buffer (insertions/replacements).
    pub sample_writes: u64,
    /// Samples evicted because their integrity checksum no longer matched
    /// (quarantine of memory-upset corruption).
    pub corrupt_evictions: u64,
}

impl AccessStats {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter's totals into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.sample_reads += other.sample_reads;
        self.sample_writes += other.sample_writes;
        self.corrupt_evictions += other.corrupt_evictions;
    }

    /// Total accesses of either kind.
    pub fn total(&self) -> u64 {
        self.sample_reads + self.sample_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts() {
        let mut a = AccessStats {
            sample_reads: 2,
            sample_writes: 3,
            corrupt_evictions: 1,
        };
        a.merge(&AccessStats {
            sample_reads: 10,
            sample_writes: 1,
            corrupt_evictions: 2,
        });
        assert_eq!(
            a,
            AccessStats {
                sample_reads: 12,
                sample_writes: 4,
                corrupt_evictions: 3,
            }
        );
        assert_eq!(a.total(), 16);
    }
}
