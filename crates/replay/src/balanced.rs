//! Class-balanced buffer (Chameleon's long-term store container).

use std::collections::BTreeMap;

use chameleon_stream::ConfigError;
use chameleon_tensor::Prng;

use crate::{AccessStats, StoredSample};

/// A bounded buffer that keeps an (approximately) equal number of samples
/// per class — the paper's long-term store `M_l` stores "an equal number of
/// samples for each class" to preserve a holistic snapshot of the whole
/// class distribution.
///
/// Insertion policy when full:
///
/// * if the incoming sample's class is *under-represented* (below the
///   per-class quota), a slot is freed by evicting a random sample from the
///   currently *largest* class,
/// * otherwise a random sample **of the same class** is replaced
///   (Algorithm 1 line 14, `replace(m_l^c, m_s^c)`) — *with reservoir
///   acceptance*: the replacement happens with probability
///   `slots_c / offers_c`, so each class's slots remain a uniform sample
///   of everything that class ever offered. Unconditional replacement
///   would bias the store exponentially toward recent domains, defeating
///   its stated purpose of "retaining cumulative information of all
///   classes" (§II); see DESIGN.md for this fidelity note.
#[derive(Clone, Debug)]
pub struct ClassBalancedBuffer {
    /// Per-class sample lists; `BTreeMap` keeps iteration deterministic.
    by_class: BTreeMap<usize, Vec<StoredSample>>,
    /// Per-class lifetime offer counts (reservoir denominators).
    offers: BTreeMap<usize, u64>,
    capacity: usize,
    len: usize,
    stats: AccessStats,
}

impl ClassBalancedBuffer {
    /// Creates an empty buffer of at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`; use [`ClassBalancedBuffer::try_new`]
    /// for a `Result`-based validator.
    pub fn new(capacity: usize) -> Self {
        Self::try_new(capacity).expect("buffer capacity must be positive")
    }

    /// Creates an empty buffer, rejecting `capacity == 0` with a
    /// [`ConfigError`] in the same shape as the stream/dataset
    /// validators.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `capacity == 0`.
    pub fn try_new(capacity: usize) -> Result<Self, ConfigError> {
        if capacity == 0 {
            return Err(ConfigError {
                field: "capacity",
                requirement: "must be positive",
            });
        }
        Ok(Self {
            by_class: BTreeMap::new(),
            offers: BTreeMap::new(),
            capacity,
            len: 0,
            stats: AccessStats::new(),
        })
    }

    /// Offers a sample under the class-balancing policy, returning the
    /// evicted sample if a replacement happened. Once the buffer is full
    /// and the class is at quota, acceptance follows per-class reservoir
    /// probabilities (see the type docs).
    pub fn insert(&mut self, sample: StoredSample, rng: &mut Prng) -> Option<StoredSample> {
        let class = sample.label;
        *self.offers.entry(class).or_insert(0) += 1;
        if self.len < self.capacity {
            self.by_class.entry(class).or_default().push(sample);
            self.len += 1;
            self.stats.sample_writes += 1;
            return None;
        }

        let class_count = self.by_class.get(&class).map_or(0, Vec::len);
        let largest = self.largest_class().expect("buffer is non-empty when full");
        let evicted = if class_count < self.by_class[&largest].len() && largest != class {
            // Under-represented class: free a slot from the largest class.
            let list = self.by_class.get_mut(&largest).expect("largest exists");
            let i = rng.below(list.len());
            let out = list.swap_remove(i);
            if list.is_empty() {
                self.by_class.remove(&largest);
            }
            self.by_class.entry(class).or_default().push(sample);
            self.stats.sample_writes += 1;
            out
        } else if class_count > 0 {
            // Same-class replacement with reservoir acceptance: keep each
            // class's slots a uniform sample of its offer history.
            // `offers` is a lifetime counter: draw in the u64 domain so
            // 32-bit targets do not truncate past 2³² offers.
            let offers = self.offers[&class];
            let accept = rng.below_u64(offers) < class_count as u64;
            if !accept {
                return None;
            }
            let list = self.by_class.get_mut(&class).expect("class has samples");
            let i = rng.below(list.len());
            self.stats.sample_writes += 1;
            std::mem::replace(&mut list[i], sample)
        } else {
            // Degenerate tiny buffer: evict from the largest class.
            let list = self.by_class.get_mut(&largest).expect("largest exists");
            let i = rng.below(list.len());
            let out = list.swap_remove(i);
            if list.is_empty() {
                self.by_class.remove(&largest);
            }
            self.by_class.entry(class).or_default().push(sample);
            self.stats.sample_writes += 1;
            out
        };
        Some(evicted)
    }

    /// Draws up to `k` samples uniformly at random across the whole buffer.
    pub fn sample_batch(&mut self, k: usize, rng: &mut Prng) -> Vec<StoredSample> {
        let flat: Vec<&StoredSample> = self.by_class.values().flatten().collect();
        let idx = rng.sample_without_replacement(flat.len(), k);
        self.stats.sample_reads += idx.len() as u64;
        idx.into_iter().map(|i| flat[i].clone()).collect()
    }

    /// Removes every sample failing its integrity check, returning how many
    /// were evicted and recording them in the corrupt-eviction counter.
    /// Reservoir offer counts are left untouched: a quarantined slot was a
    /// legitimate reservoir member until the upset destroyed it.
    pub fn purge_corrupt(&mut self) -> usize {
        let mut evicted = 0;
        self.by_class.retain(|_, list| {
            let before = list.len();
            list.retain(|s| s.integrity_ok());
            evicted += before - list.len();
            !list.is_empty()
        });
        self.len -= evicted;
        self.stats.corrupt_evictions += evicted as u64;
        evicted
    }

    /// Fraction of stored samples whose integrity checksum still matches
    /// (1.0 for an empty buffer). Does not count replay reads.
    pub fn integrity_fraction(&self) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        let valid = self.iter().filter(|s| s.integrity_ok()).count();
        valid as f64 / self.len as f64
    }

    /// Mutable access to stored samples, for in-place fault injection.
    /// Does not count replay reads or writes.
    pub fn samples_mut(&mut self) -> impl Iterator<Item = &mut StoredSample> {
        self.by_class.values_mut().flatten()
    }

    /// Borrow the samples of one class (empty slice if none).
    pub fn samples_of_class(&self, class: usize) -> &[StoredSample] {
        self.by_class.get(&class).map_or(&[], Vec::as_slice)
    }

    /// Classes currently present, in ascending order.
    pub fn classes(&self) -> Vec<usize> {
        self.by_class.keys().copied().collect()
    }

    /// Per-class sample count.
    pub fn class_count(&self, class: usize) -> usize {
        self.by_class.get(&class).map_or(0, Vec::len)
    }

    /// The class holding the most samples.
    pub fn largest_class(&self) -> Option<usize> {
        self.by_class
            .iter()
            .max_by_key(|(_, v)| v.len())
            .map(|(&c, _)| c)
    }

    /// Total stored samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate over all stored samples (deterministic class order).
    pub fn iter(&self) -> impl Iterator<Item = &StoredSample> {
        self.by_class.values().flatten()
    }

    /// Access counters accumulated so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Overwrites the access counters — used when restoring a checkpointed
    /// session so lifetime traffic/quarantine counts survive eviction.
    pub fn restore_stats(&mut self, stats: AccessStats) {
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(class: usize, v: f32) -> StoredSample {
        StoredSample::latent(vec![v], class)
    }

    #[test]
    fn fills_below_capacity_without_eviction() {
        let mut rng = Prng::new(0);
        let mut b = ClassBalancedBuffer::new(10);
        for i in 0..10 {
            assert!(b.insert(sample(i % 3, i as f32), &mut rng).is_none());
        }
        assert_eq!(b.len(), 10);
    }

    #[test]
    fn stays_bounded_and_balanced_under_skewed_input() {
        let mut rng = Prng::new(1);
        let mut b = ClassBalancedBuffer::new(12);
        // Feed 90% class 0, 10% spread over classes 1..=3.
        for i in 0..400 {
            let class = if i % 10 == 0 { 1 + (i / 10) % 3 } else { 0 };
            b.insert(sample(class, i as f32), &mut rng);
        }
        assert_eq!(b.len(), 12);
        // Despite the skew, no class should dominate: each of the four
        // classes observed should hold ≥ 1 and ≤ 6 slots.
        for class in 0..4 {
            let c = b.class_count(class);
            assert!(c >= 1, "class {class} starved: {c}");
            assert!(c <= 6, "class {class} dominates: {c}");
        }
    }

    #[test]
    fn same_class_replacement_keeps_other_classes_intact() {
        let mut rng = Prng::new(2);
        let mut b = ClassBalancedBuffer::new(4);
        b.insert(sample(0, 1.0), &mut rng);
        b.insert(sample(0, 2.0), &mut rng);
        b.insert(sample(1, 3.0), &mut rng);
        b.insert(sample(1, 4.0), &mut rng);
        // Buffer full and balanced; offering class 0 may only ever evict
        // class 0, and the per-class counts never change.
        let mut replaced = 0;
        for i in 0..20 {
            if let Some(evicted) = b.insert(sample(0, 10.0 + i as f32), &mut rng) {
                assert_eq!(evicted.label, 0);
                replaced += 1;
            }
            assert_eq!(b.class_count(0), 2);
            assert_eq!(b.class_count(1), 2);
        }
        assert!(
            replaced > 0,
            "reservoir acceptance never fired in 20 offers"
        );
    }

    #[test]
    fn within_class_content_is_reservoir_uniform() {
        // Offer 100 class-0 samples to a 2-slot class; early samples should
        // survive with probability ≈ 2/100 — i.e. sometimes, not never.
        let trials = 300;
        let mut early_survivals = 0;
        for t in 0..trials {
            let mut rng = Prng::new(t);
            let mut b = ClassBalancedBuffer::new(2);
            for i in 0..100 {
                b.insert(sample(0, i as f32), &mut rng);
            }
            if b.samples_of_class(0).iter().any(|s| s.features[0] < 10.0) {
                early_survivals += 1;
            }
        }
        // P(early sample among the 2 kept) ≈ 1 − C(90,2)/C(100,2) ≈ 0.19.
        let p = early_survivals as f32 / trials as f32;
        assert!(p > 0.08 && p < 0.35, "early survival rate {p}");
    }

    #[test]
    fn under_represented_class_steals_from_largest() {
        let mut rng = Prng::new(3);
        let mut b = ClassBalancedBuffer::new(4);
        for i in 0..4 {
            b.insert(sample(0, i as f32), &mut rng);
        }
        let evicted = b.insert(sample(1, 100.0), &mut rng).expect("full");
        assert_eq!(evicted.label, 0);
        assert_eq!(b.class_count(1), 1);
        assert_eq!(b.class_count(0), 3);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn sample_batch_draws_across_classes() {
        let mut rng = Prng::new(4);
        let mut b = ClassBalancedBuffer::new(9);
        for class in 0..3 {
            for v in 0..3 {
                b.insert(sample(class, v as f32), &mut rng);
            }
        }
        let batch = b.sample_batch(9, &mut rng);
        assert_eq!(batch.len(), 9);
        for class in 0..3 {
            assert_eq!(batch.iter().filter(|s| s.label == class).count(), 3);
        }
    }

    #[test]
    fn len_invariant_holds_under_random_workload() {
        let mut rng = Prng::new(5);
        let mut b = ClassBalancedBuffer::new(7);
        for i in 0..500 {
            let class = rng.below(5);
            b.insert(sample(class, i as f32), &mut rng);
            let total: usize = b.classes().iter().map(|&c| b.class_count(c)).sum();
            assert_eq!(total, b.len());
            assert!(b.len() <= 7);
        }
        assert_eq!(b.len(), 7);
    }

    #[test]
    fn purge_corrupt_evicts_only_damaged_slots() {
        let mut rng = Prng::new(7);
        let mut b = ClassBalancedBuffer::new(6);
        for class in 0..3 {
            for v in 0..2 {
                b.insert(sample(class, v as f32), &mut rng);
            }
        }
        assert_eq!(b.integrity_fraction(), 1.0);
        // Corrupt both samples of class 1 without resealing.
        for s in b.samples_mut() {
            if s.label == 1 {
                s.features[0] += 1000.0;
            }
        }
        assert!(b.integrity_fraction() < 1.0);
        let evicted = b.purge_corrupt();
        assert_eq!(evicted, 2);
        assert_eq!(b.len(), 4);
        assert_eq!(b.class_count(1), 0);
        assert_eq!(b.classes(), vec![0, 2]);
        assert_eq!(b.stats().corrupt_evictions, 2);
        assert_eq!(b.integrity_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = ClassBalancedBuffer::new(0);
    }

    #[test]
    fn try_new_rejects_zero_capacity_with_config_error() {
        let err = ClassBalancedBuffer::try_new(0).unwrap_err();
        assert_eq!(err.field, "capacity");
        assert!(ClassBalancedBuffer::try_new(1).is_ok());
    }

    #[test]
    fn stats_track_access() {
        let mut rng = Prng::new(6);
        let mut b = ClassBalancedBuffer::new(3);
        b.insert(sample(0, 0.0), &mut rng);
        b.insert(sample(1, 1.0), &mut rng);
        let _ = b.sample_batch(2, &mut rng);
        assert_eq!(b.stats().sample_writes, 2);
        assert_eq!(b.stats().sample_reads, 2);
    }
}
