//! Bit-packed latent codec: per-tensor affine int8 and fp16 encodings.
//!
//! Replay latents dominate `session_bytes` in the fleet (the eviction
//! cost in `results/fleet_throughput.json`), and the TinyML latent-replay
//! literature shows they tolerate aggressive quantization. This module
//! packs a latent vector into a self-describing blob:
//!
//! ```text
//! [tag: u8] [count: u32 LE] [int8 only: scale f32 LE, min f32 LE] payload
//! ```
//!
//! * tag 0 (`f32`)  — payload is `count` f32 LE words (lossless),
//! * tag 1 (`f16`)  — payload is `count` IEEE 754 binary16 LE halfwords,
//! * tag 2 (`int8`) — payload is `count` bytes; value `q` decodes to
//!   `min + q * scale` with `scale = (max - min) / 255` computed per
//!   tensor at encode time (per-tensor affine quantization).
//!
//! The codec itself carries **no checksum**: every packed blob in this
//! codebase travels inside an envelope that already seals it (the
//! `StoredSample` content CRC, the `CHAMLN03` checkpoint footer, the
//! `CHAMSEG1` record CRC), so corruption detection is the envelope's
//! job. What the codec guarantees is that *decoding never panics*:
//! truncated, oversized, or garbage input yields a typed [`CodecError`],
//! and an oversized count is rejected before any allocation.
//!
//! Determinism contract: `decode(encode(x))` is a pure function of the
//! packed bytes — two decodes of the same blob are bit-identical, which
//! is what lets quantized samples keep the insertion-time CRC across
//! checkpoint round-trips (the packed bytes are the durable truth; the
//! f32 features are a dequantized read-through cache).

use std::fmt;

/// Storage precision for replay latents — the knob that flows from
/// `ChameleonConfig` through the fleet, serve, and the CLI.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Lossless f32 storage — the legacy format; byte-identical to the
    /// pre-codec encoding everywhere (checkpoints, wire, store).
    #[default]
    F32,
    /// IEEE 754 binary16 storage: 2 bytes/element, ~3 decimal digits.
    F16,
    /// Per-tensor affine int8: 1 byte/element plus an 8-byte header.
    Int8,
}

impl Precision {
    /// Wire/checkpoint tag for this precision (also the codec blob tag).
    pub fn tag(self) -> u8 {
        match self {
            Precision::F32 => 0,
            Precision::F16 => 1,
            Precision::Int8 => 2,
        }
    }

    /// Inverse of [`Precision::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Precision::F32),
            1 => Some(Precision::F16),
            2 => Some(Precision::Int8),
            _ => None,
        }
    }

    /// Bytes per stored element (excluding the per-tensor header).
    pub fn bytes_per_element(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F16 => 2,
            Precision::Int8 => 1,
        }
    }

    /// Per-tensor header bytes beyond the common `tag + count` prefix.
    pub fn header_bytes(self) -> usize {
        match self {
            Precision::F32 | Precision::F16 => 0,
            Precision::Int8 => 8,
        }
    }

    /// Serialized size of a packed `count`-element latent.
    pub fn packed_len(self, count: usize) -> usize {
        5 + self.header_bytes() + count * self.bytes_per_element()
    }

    /// Canonical lowercase name (`f32` / `f16` / `int8`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }

    /// Parses a CLI spelling; accepts the aliases `fp16` and `i8`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "f32" | "fp32" => Ok(Precision::F32),
            "f16" | "fp16" => Ok(Precision::F16),
            "int8" | "i8" => Ok(Precision::Int8),
            other => Err(format!(
                "unknown precision {other:?} (expected f32, f16, or int8)"
            )),
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Largest element count a packed blob may declare. Checked before any
/// allocation so a corrupted count cannot balloon memory.
pub const MAX_PACKED_ELEMS: usize = 1 << 20;

/// Typed decode failure — decoding never panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The blob ends before the declared payload does.
    Truncated {
        /// Bytes the declared layout requires.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The leading tag byte names no known precision.
    BadTag(u8),
    /// The declared element count exceeds [`MAX_PACKED_ELEMS`].
    Oversized(usize),
    /// Bytes remain after the declared payload.
    Trailing(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodecError::Truncated { needed, have } => {
                write!(
                    f,
                    "packed latent truncated: need {needed} bytes, have {have}"
                )
            }
            CodecError::BadTag(tag) => write!(f, "unknown precision tag {tag}"),
            CodecError::Oversized(count) => write!(
                f,
                "declared element count {count} exceeds the {MAX_PACKED_ELEMS} cap"
            ),
            CodecError::Trailing(extra) => {
                write!(f, "{extra} trailing bytes after the packed payload")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Converts an f32 to IEEE 754 binary16 bits, rounding to nearest even.
/// Infinities and NaNs are preserved (NaN payload truncated, quiet bit
/// forced); values beyond the f16 range overflow to infinity.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Inf stays inf; NaN keeps its top payload bits with the quiet
        // bit forced so the result is still a NaN after truncation.
        let payload = if mant != 0 {
            0x0200 | ((mant >> 13) as u16 & 0x03FF)
        } else {
            0
        };
        return sign | 0x7C00 | payload;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal half: drop 13 mantissa bits with round-to-nearest-even.
        // A mantissa carry propagates into the exponent arithmetically
        // (1.111.. rounds up to the next power of two), and a carry out
        // of the top exponent value lands exactly on the inf encoding.
        let rem = mant & 0x1FFF;
        let mut half = (((unbiased + 15) as u32) << 10) | (mant >> 13);
        if rem > 0x1000 || (rem == 0x1000 && (half & 1) == 1) {
            half += 1;
        }
        return sign | half as u16;
    }
    if unbiased < -25 {
        return sign; // underflows even the smallest subnormal → ±0
    }
    // Subnormal half: value = q * 2^-24 with q = round(mant_full * 2^(unbiased+1)).
    let mant_full = mant | 0x0080_0000;
    let shift = (-unbiased - 1) as u32; // 14..=24
    let halfway = 1u32 << (shift - 1);
    let rem = mant_full & ((1u32 << shift) - 1);
    let mut q = mant_full >> shift;
    if rem > halfway || (rem == halfway && (q & 1) == 1) {
        q += 1;
    }
    sign | q as u16
}

/// Converts IEEE 754 binary16 bits back to f32 (exact — every f16 value
/// is representable in f32).
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits & 0x8000) << 16;
    let exp = u32::from(bits >> 10) & 0x1F;
    let mant = u32::from(bits & 0x03FF);
    let out = if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13)
    } else if exp != 0 {
        sign | ((exp + 112) << 23) | (mant << 13)
    } else if mant != 0 {
        // Subnormal half: normalize into an f32 exponent.
        let mut e = 113u32;
        let mut m = mant;
        while m & 0x0400 == 0 {
            m <<= 1;
            e -= 1;
        }
        sign | (e << 23) | ((m & 0x03FF) << 13)
    } else {
        sign // ±0
    };
    f32::from_bits(out)
}

/// Per-tensor affine parameters for int8: `(scale, min)` such that code
/// `q` decodes to `min + q * scale`. The range is computed in f64 so an
/// extreme `max - min` cannot overflow; non-finite inputs are ignored
/// when ranging (they clamp to the nearest grid edge at encode time).
fn int8_params(values: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (1.0, 0.0);
    }
    if hi > lo {
        (((f64::from(hi) - f64::from(lo)) / 255.0) as f32, lo)
    } else {
        (1.0, lo)
    }
}

/// Packs `values` at `precision` into a self-describing blob.
pub fn encode_latent(precision: Precision, values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(precision.packed_len(values.len()));
    out.push(precision.tag());
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    match precision {
        Precision::F32 => {
            for &v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Precision::F16 => {
            for &v in values {
                out.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
            }
        }
        Precision::Int8 => {
            let (scale, min) = int8_params(values);
            out.extend_from_slice(&scale.to_le_bytes());
            out.extend_from_slice(&min.to_le_bytes());
            let inv = 1.0 / f64::from(scale);
            for &v in values {
                // f64 staging keeps the rounding exact for every finite
                // input; NaN falls through `clamp` and saturates to 0
                // via the `as` cast — never a panic.
                let q = ((f64::from(v) - f64::from(min)) * inv)
                    .round()
                    .clamp(0.0, 255.0);
                out.push(q as u8);
            }
        }
    }
    out
}

/// Decodes a packed blob, appending the values to `out` (the fused
/// dequantize-on-read path: callers decoding replay batches reuse one
/// buffer instead of allocating per sample). Returns the precision the
/// blob was packed at. `out` is untouched on error.
pub fn decode_latent_into(blob: &[u8], out: &mut Vec<f32>) -> Result<Precision, CodecError> {
    if blob.len() < 5 {
        return Err(CodecError::Truncated {
            needed: 5,
            have: blob.len(),
        });
    }
    let precision = Precision::from_tag(blob[0]).ok_or(CodecError::BadTag(blob[0]))?;
    let count = u32::from_le_bytes([blob[1], blob[2], blob[3], blob[4]]) as usize;
    if count > MAX_PACKED_ELEMS {
        return Err(CodecError::Oversized(count));
    }
    let needed = precision.packed_len(count);
    if blob.len() < needed {
        return Err(CodecError::Truncated {
            needed,
            have: blob.len(),
        });
    }
    if blob.len() > needed {
        return Err(CodecError::Trailing(blob.len() - needed));
    }
    let payload = &blob[5 + precision.header_bytes()..];
    out.reserve(count);
    match precision {
        Precision::F32 => {
            for chunk in payload.chunks_exact(4) {
                out.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
            }
        }
        Precision::F16 => {
            for chunk in payload.chunks_exact(2) {
                out.push(f16_bits_to_f32(u16::from_le_bytes([chunk[0], chunk[1]])));
            }
        }
        Precision::Int8 => {
            let scale = f32::from_le_bytes([blob[5], blob[6], blob[7], blob[8]]);
            let min = f32::from_le_bytes([blob[9], blob[10], blob[11], blob[12]]);
            for &q in payload {
                out.push(min + f32::from(q) * scale);
            }
        }
    }
    Ok(precision)
}

/// Decodes a packed blob into a fresh vector.
pub fn decode_latent(blob: &[u8]) -> Result<(Precision, Vec<f32>), CodecError> {
    let mut out = Vec::new();
    let precision = decode_latent_into(blob, &mut out)?;
    Ok((precision, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip_is_bitexact() {
        let values = vec![0.0, -1.5, 3.25e-12, f32::MAX, -0.0];
        let blob = encode_latent(Precision::F32, &values);
        let (p, decoded) = decode_latent(&blob).expect("decode");
        assert_eq!(p, Precision::F32);
        assert_eq!(
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            decoded.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f16_roundtrip_matches_half_precision() {
        for v in [0.0f32, 1.0, -2.5, 65504.0, 6.1e-5, 5.96e-8, 1.0e-8] {
            let blob = encode_latent(Precision::F16, &[v]);
            let (_, decoded) = decode_latent(&blob).expect("decode");
            let rt = decoded[0];
            if v.abs() >= 6.2e-5 {
                // Normal range: relative error bounded by half an ulp
                // of a 10-bit mantissa.
                assert!(
                    ((rt - v) / v).abs() <= 1.0 / 2048.0,
                    "f16 roundtrip of {v} gave {rt}"
                );
            }
            // Double roundtrip is a fixed point.
            let blob2 = encode_latent(Precision::F16, &decoded);
            assert_eq!(blob, blob2, "f16 grid values must re-encode identically");
        }
    }

    #[test]
    fn f16_preserves_specials() {
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)),
            f32::INFINITY
        );
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        assert_eq!(f32_to_f16_bits(1.0e9), 0x7C00, "overflow goes to +inf");
        assert_eq!(f32_to_f16_bits(-0.0).to_le_bytes(), [0x00, 0x80]);
    }

    #[test]
    fn int8_roundtrip_within_half_step() {
        let values: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin() * 5.0).collect();
        let blob = encode_latent(Precision::Int8, &values);
        let (_, decoded) = decode_latent(&blob).expect("decode");
        let scale = f32::from_le_bytes([blob[5], blob[6], blob[7], blob[8]]);
        for (v, d) in values.iter().zip(&decoded) {
            assert!(
                (v - d).abs() <= scale * 0.5 + scale * 1e-3,
                "int8 roundtrip of {v} gave {d} (scale {scale})"
            );
        }
    }

    #[test]
    fn int8_constant_and_empty_tensors() {
        let blob = encode_latent(Precision::Int8, &[3.5; 7]);
        let (_, decoded) = decode_latent(&blob).expect("decode");
        assert_eq!(decoded, vec![3.5; 7], "constant tensors decode exactly");
        let empty = encode_latent(Precision::Int8, &[]);
        assert_eq!(decode_latent(&empty).expect("decode").1, Vec::<f32>::new());
    }

    #[test]
    fn int8_nonfinite_inputs_never_panic() {
        let values = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0, 2.0];
        let blob = encode_latent(Precision::Int8, &values);
        let (_, decoded) = decode_latent(&blob).expect("decode");
        assert_eq!(decoded.len(), values.len());
        // Finite values still land within their half-step.
        assert!((decoded[3] - 1.0).abs() <= 0.01);
    }

    #[test]
    fn truncated_blobs_yield_typed_errors() {
        let blob = encode_latent(Precision::Int8, &[1.0, 2.0, 3.0]);
        for cut in 0..blob.len() {
            match decode_latent(&blob[..cut]) {
                Err(CodecError::Truncated { .. }) => {}
                other => panic!("cut {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn bad_tag_and_trailing_are_rejected() {
        let mut blob = encode_latent(Precision::F16, &[1.0]);
        blob[0] = 9;
        assert_eq!(decode_latent(&blob), Err(CodecError::BadTag(9)));
        let mut blob = encode_latent(Precision::F32, &[1.0]);
        blob.push(0);
        assert_eq!(decode_latent(&blob), Err(CodecError::Trailing(1)));
    }

    #[test]
    fn oversized_count_rejected_before_allocation() {
        let mut blob = vec![0u8]; // f32 tag
        blob.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_latent(&blob),
            Err(CodecError::Oversized(u32::MAX as usize))
        );
    }

    #[test]
    fn precision_parse_and_tags_roundtrip() {
        for p in [Precision::F32, Precision::F16, Precision::Int8] {
            assert_eq!(Precision::from_tag(p.tag()), Some(p));
            assert_eq!(Precision::parse(p.name()), Ok(p));
        }
        assert_eq!(Precision::parse("fp16"), Ok(Precision::F16));
        assert_eq!(Precision::parse("i8"), Ok(Precision::Int8));
        assert!(Precision::parse("bf16").is_err());
        assert_eq!(Precision::from_tag(3), None);
        assert_eq!(Precision::default(), Precision::F32);
    }

    #[test]
    fn packed_len_matches_encoded_len() {
        for p in [Precision::F32, Precision::F16, Precision::Int8] {
            for n in [0, 1, 7, 64] {
                let blob = encode_latent(p, &vec![0.25; n]);
                assert_eq!(blob.len(), p.packed_len(n), "{p} n={n}");
            }
        }
    }
}
