//! The pure `CHAMSEG1` segment codec: byte layout only, no I/O.
//!
//! A segment file is the 8-byte magic `"CHAMSEG1"` followed by zero or
//! more records. Each record is:
//!
//! ```text
//! len:u32 LE | body | crc32(body):u32 LE
//! body = session:u64 LE | seq:u64 LE | payload
//! ```
//!
//! `len` counts the body bytes only, so a record occupies
//! `len + RECORD_FRAME_BYTES` bytes on disk. The CRC seals the body; a
//! record whose checksum verifies is *sealed* and is the unit of
//! durability the store's fsync contract speaks about. Decoding is
//! defensive: hostile length prefixes are rejected before any allocation,
//! every truncation point is a typed [`RecordError`], and no input can
//! panic the decoder (see `tests/store_fuzz.rs`).

use chameleon_replay::crc32;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"CHAMSEG1";

/// Bytes a record adds around its body: length prefix + CRC trailer.
pub const RECORD_FRAME_BYTES: usize = 4 + 4;

/// Body bytes before the payload: session id + sequence number.
pub const RECORD_HEADER_BYTES: usize = 8 + 8;

/// Upper bound on one record body (header + payload). Checkpoints are a
/// few hundred KiB; 64 MiB leaves two orders of magnitude headroom while
/// keeping a corrupt length prefix from driving a giant allocation.
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// One decoded segment record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Session the checkpoint belongs to.
    pub session: u64,
    /// Monotone per-session sequence number (0 for the first append).
    pub seq: u64,
    /// The sealed payload (a `CHAMFLT1` checkpoint blob in production).
    pub payload: Vec<u8>,
}

/// Typed decode failures for segment headers and records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer bytes than the structure requires (torn tail, short read).
    Truncated,
    /// Segment does not open with [`SEGMENT_MAGIC`].
    BadMagic,
    /// Length prefix exceeds [`MAX_RECORD_BYTES`] — rejected before any
    /// allocation is sized by it.
    Oversized {
        /// The hostile length prefix.
        len: u64,
        /// The cap it violated.
        max: u64,
    },
    /// Length prefix smaller than the fixed body header — cannot be a
    /// well-formed record.
    BadLength {
        /// The impossible length prefix.
        len: u64,
    },
    /// Body bytes do not match the CRC trailer.
    BadChecksum {
        /// CRC computed over the body as read.
        found: u32,
        /// CRC recorded in the trailer.
        expected: u32,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "segment record truncated"),
            RecordError::BadMagic => write!(f, "segment magic mismatch"),
            RecordError::Oversized { len, max } => {
                write!(f, "record length {len} exceeds cap {max}")
            }
            RecordError::BadLength { len } => {
                write!(f, "record length {len} below fixed header size")
            }
            RecordError::BadChecksum { found, expected } => {
                write!(
                    f,
                    "record checksum {found:#010x} != sealed {expected:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Encodes one record: length-prefixed body sealed with a CRC32 trailer.
///
/// # Panics
/// Panics if `payload` would push the body over [`MAX_RECORD_BYTES`];
/// callers control payload sizes and never approach the cap.
pub fn encode_record(session: u64, seq: u64, payload: &[u8]) -> Vec<u8> {
    let body_len = RECORD_HEADER_BYTES + payload.len();
    assert!(body_len <= MAX_RECORD_BYTES, "record payload over cap");
    let mut out = Vec::with_capacity(RECORD_FRAME_BYTES + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&session.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes the record starting at the front of `bytes`, returning it with
/// the number of bytes consumed.
///
/// # Errors
/// [`RecordError::Truncated`] when `bytes` ends mid-record,
/// [`RecordError::Oversized`]/[`RecordError::BadLength`] for impossible
/// length prefixes (checked before any slicing or allocation), and
/// [`RecordError::BadChecksum`] when the sealed CRC does not match.
pub fn decode_record(bytes: &[u8]) -> Result<(Record, usize), RecordError> {
    if bytes.len() < 4 {
        return Err(RecordError::Truncated);
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if len > MAX_RECORD_BYTES {
        return Err(RecordError::Oversized {
            len: len as u64,
            max: MAX_RECORD_BYTES as u64,
        });
    }
    if len < RECORD_HEADER_BYTES {
        return Err(RecordError::BadLength { len: len as u64 });
    }
    let total = RECORD_FRAME_BYTES + len;
    if bytes.len() < total {
        return Err(RecordError::Truncated);
    }
    let body = &bytes[4..4 + len];
    let expected = u32::from_le_bytes([
        bytes[4 + len],
        bytes[5 + len],
        bytes[6 + len],
        bytes[7 + len],
    ]);
    let found = crc32(body);
    if found != expected {
        return Err(RecordError::BadChecksum { found, expected });
    }
    let mut session_bytes = [0u8; 8];
    session_bytes.copy_from_slice(&body[0..8]);
    let mut seq_bytes = [0u8; 8];
    seq_bytes.copy_from_slice(&body[8..16]);
    Ok((
        Record {
            session: u64::from_le_bytes(session_bytes),
            seq: u64::from_le_bytes(seq_bytes),
            payload: body[RECORD_HEADER_BYTES..].to_vec(),
        },
        total,
    ))
}

/// Checks that `bytes` opens with the segment magic.
///
/// # Errors
/// [`RecordError::Truncated`] if fewer than 8 bytes are present,
/// [`RecordError::BadMagic`] if they are not `"CHAMSEG1"`.
pub fn check_segment_header(bytes: &[u8]) -> Result<(), RecordError> {
    if bytes.len() < SEGMENT_MAGIC.len() {
        return Err(RecordError::Truncated);
    }
    if &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(RecordError::BadMagic);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_identity() {
        let payload = vec![7u8, 0, 255, 42];
        let encoded = encode_record(9, 3, &payload);
        let (record, used) = decode_record(&encoded).expect("roundtrip");
        assert_eq!(used, encoded.len());
        assert_eq!(record.session, 9);
        assert_eq!(record.seq, 3);
        assert_eq!(record.payload, payload);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let encoded = encode_record(0, 0, &[]);
        let (record, used) = decode_record(&encoded).expect("empty payload");
        assert_eq!(used, RECORD_FRAME_BYTES + RECORD_HEADER_BYTES);
        assert!(record.payload.is_empty());
    }

    #[test]
    fn every_truncation_is_truncated() {
        let encoded = encode_record(1, 2, b"abcdef");
        for cut in 0..encoded.len() {
            assert_eq!(
                decode_record(&encoded[..cut]).unwrap_err(),
                RecordError::Truncated,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn oversized_prefix_rejected_before_body() {
        let mut bytes = ((MAX_RECORD_BYTES as u32) + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_record(&bytes).unwrap_err(),
            RecordError::Oversized { .. }
        ));
    }

    #[test]
    fn undersized_prefix_is_bad_length() {
        let mut bytes = 3u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            decode_record(&bytes).unwrap_err(),
            RecordError::BadLength { len: 3 }
        );
    }

    #[test]
    fn flipped_body_bit_is_a_checksum_error() {
        let mut encoded = encode_record(4, 5, b"payload");
        let i = encoded.len() / 2;
        encoded[i] ^= 0x10;
        assert!(matches!(
            decode_record(&encoded).unwrap_err(),
            RecordError::BadChecksum { .. }
        ));
    }

    #[test]
    fn header_check_accepts_magic_and_rejects_noise() {
        let mut bytes = SEGMENT_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_record(1, 0, b"x"));
        assert!(check_segment_header(&bytes).is_ok());
        assert_eq!(check_segment_header(b"CHAM"), Err(RecordError::Truncated));
        assert_eq!(
            check_segment_header(b"CHAMWIRE"),
            Err(RecordError::BadMagic)
        );
    }
}
