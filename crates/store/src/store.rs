//! The durable session store: segment files, manifest, index, recovery.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use chameleon_faults::{FaultInjector, FaultPlan};

use crate::segment::{
    check_segment_header, decode_record, encode_record, Record, RecordError, SEGMENT_MAGIC,
};

/// Manifest file name inside the store directory.
const MANIFEST_NAME: &str = "MANIFEST";
/// First line of every manifest file.
const MANIFEST_MAGIC: &str = "CHAMMAN1";
/// Segment header length (the magic).
const HEADER_LEN: u64 = SEGMENT_MAGIC.len() as u64;

/// Configuration for opening a [`SessionStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Directory holding the manifest and segment files (created if
    /// missing).
    pub dir: PathBuf,
    /// Active-segment size that triggers rotation to a fresh segment.
    pub segment_bytes: u64,
    /// Minimum dead (superseded) record bytes before compaction is
    /// considered.
    pub compact_min_bytes: u64,
    /// Dead fraction of total record bytes that triggers compaction once
    /// the minimum is met.
    pub compact_dead_ratio: f64,
    /// Optional file-fault campaign driving the I/O seam (crash
    /// schedules); `None` in production.
    pub faults: Option<FaultPlan>,
}

impl StoreConfig {
    /// Production defaults rooted at `dir`: 8 MiB segments, compaction at
    /// ≥1 MiB dead bytes forming ≥50% of the log, no injected faults.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: 8 * 1024 * 1024,
            compact_min_bytes: 1024 * 1024,
            compact_dead_ratio: 0.5,
            faults: None,
        }
    }
}

/// Monotone counters describing everything the store has done, plus a
/// point-in-time view of log shape. Exposed through
/// `FleetEngine::store_counters` into `Observation` and the CLI JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Records sealed and acknowledged.
    pub appends: u64,
    /// Total on-disk bytes of acknowledged records.
    pub append_bytes: u64,
    /// Fsyncs issued on segment files.
    pub fsyncs: u64,
    /// Active-segment rotations.
    pub rotations: u64,
    /// Compactions completed.
    pub compactions: u64,
    /// Torn tails truncated away during open.
    pub torn_truncations: u64,
    /// Bytes discarded by torn-tail truncation.
    pub truncated_bytes: u64,
    /// Records that failed CRC/structure checks (scan or read).
    pub decode_rejects: u64,
    /// Short reads detected and retried.
    pub short_reads: u64,
    /// Sessions indexed from disk at the last open.
    pub sessions_recovered: u64,
    /// Segment files currently in the manifest.
    pub segments: u64,
    /// Sessions with a live (latest-sealed) record.
    pub live_records: u64,
    /// Superseded record bytes awaiting compaction.
    pub dead_bytes: u64,
}

/// Failures of store operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An OS file operation failed.
    Io {
        /// What the store was doing.
        op: &'static str,
        /// Path involved.
        path: String,
        /// OS error text.
        error: String,
    },
    /// A sealed record failed its structure/CRC check.
    Corrupt {
        /// Segment id holding the record.
        segment: u64,
        /// Byte offset of the record in that segment.
        offset: u64,
        /// The codec-level failure.
        error: RecordError,
    },
    /// A record decoded cleanly but disagrees with the index (wrong
    /// session or sequence at the indexed offset).
    IndexMismatch {
        /// Session the index expected.
        session: u64,
        /// Segment id read.
        segment: u64,
        /// Offset read.
        offset: u64,
    },
    /// The manifest file is missing, unreadable, or malformed.
    Manifest {
        /// Manifest path.
        path: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The store simulated a crash; drop it and reopen the directory.
    Crashed,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, error } => {
                write!(f, "store {op} on {path}: {error}")
            }
            StoreError::Corrupt {
                segment,
                offset,
                error,
            } => write!(f, "segment {segment} offset {offset}: {error}"),
            StoreError::IndexMismatch {
                session,
                segment,
                offset,
            } => write!(
                f,
                "segment {segment} offset {offset}: record does not match index entry for session {session}"
            ),
            StoreError::Manifest { path, reason } => {
                write!(f, "manifest {path}: {reason}")
            }
            StoreError::Crashed => write!(f, "store crashed (simulated); reopen the directory"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Index entry: where a session's latest sealed record lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct IndexEntry {
    segment: u64,
    offset: u64,
    len: u64,
    seq: u64,
}

/// A log-structured durable store of per-session checkpoint blobs.
///
/// Writes are append-only into the active `CHAMSEG1` segment and are
/// fsynced *before* [`SessionStore::append`] returns — the returned
/// sequence number is the durability acknowledgement the fleet's eviction
/// path relies on. An in-memory index maps each session to its latest
/// sealed record; open rebuilds the index by scanning the manifest's
/// segments, truncating any torn tail on the last one. Superseded records
/// are garbage; once they dominate the log a compaction rewrites live
/// records into a fresh segment and atomically swaps the manifest.
#[derive(Debug)]
pub struct SessionStore {
    config: StoreConfig,
    manifest: Vec<u64>,
    active: File,
    active_id: u64,
    /// Bytes written to the active segment (including header).
    active_len: u64,
    /// Bytes of the active segment actually durable at the last fsync.
    /// Equal to `active_len` unless a partial-fsync fault lied.
    durable_len: u64,
    index: HashMap<u64, IndexEntry>,
    /// Total record-frame bytes across all segments (live + dead).
    record_bytes_total: u64,
    /// Record-frame bytes referenced by the index.
    live_bytes: u64,
    injector: Option<FaultInjector>,
    counters: StoreCounters,
    crashed: bool,
}

fn io_err<'a>(op: &'static str, path: &'a Path) -> impl FnOnce(std::io::Error) -> StoreError + 'a {
    move |e| StoreError::Io {
        op,
        path: path.display().to_string(),
        error: e.to_string(),
    }
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.chamseg"))
}

/// Writes `manifest` atomically: temp sibling, fsync, rename over
/// `MANIFEST`, then fsync the directory so the rename itself is durable.
fn write_manifest(dir: &Path, manifest: &[u64]) -> Result<(), StoreError> {
    let tmp = dir.join(format!(".{MANIFEST_NAME}.tmp"));
    let target = dir.join(MANIFEST_NAME);
    let mut text = String::from(MANIFEST_MAGIC);
    text.push('\n');
    for id in manifest {
        text.push_str(&id.to_string());
        text.push('\n');
    }
    let mut file = File::create(&tmp).map_err(io_err("create manifest temp", &tmp))?;
    file.write_all(text.as_bytes())
        .map_err(io_err("write manifest temp", &tmp))?;
    file.sync_data()
        .map_err(io_err("sync manifest temp", &tmp))?;
    fs::rename(&tmp, &target).map_err(io_err("swap manifest", &target))?;
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(io_err("sync store directory", dir))?;
    Ok(())
}

fn read_manifest(dir: &Path) -> Result<Option<Vec<u64>>, StoreError> {
    let path = dir.join(MANIFEST_NAME);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read manifest", &path)(e)),
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(StoreError::Manifest {
            path: path.display().to_string(),
            reason: "missing CHAMMAN1 header".into(),
        });
    }
    let mut ids = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let id = line.parse::<u64>().map_err(|_| StoreError::Manifest {
            path: path.display().to_string(),
            reason: format!("bad segment id line {line:?}"),
        })?;
        ids.push(id);
    }
    if ids.is_empty() {
        return Err(StoreError::Manifest {
            path: path.display().to_string(),
            reason: "lists no segments".into(),
        });
    }
    Ok(Some(ids))
}

/// Creates a fresh segment file: magic written and fsynced before the
/// segment may be referenced by a manifest.
fn create_segment(dir: &Path, id: u64) -> Result<File, StoreError> {
    let path = segment_path(dir, id);
    let mut file = File::create(&path).map_err(io_err("create segment", &path))?;
    file.write_all(SEGMENT_MAGIC)
        .map_err(io_err("write segment header", &path))?;
    file.sync_data()
        .map_err(io_err("sync segment header", &path))?;
    Ok(file)
}

impl SessionStore {
    /// Opens (or initializes) the store at `config.dir`, rebuilding the
    /// index from disk: scan every manifest segment in order, keep each
    /// session's highest-sequence sealed record, and truncate the torn
    /// tail of the last segment if a crash left one.
    ///
    /// # Errors
    /// I/O failures, a malformed manifest, or corruption in a sealed
    /// (non-last) segment.
    pub fn open(config: StoreConfig) -> Result<Self, StoreError> {
        fs::create_dir_all(&config.dir).map_err(io_err("create store dir", &config.dir))?;
        // A temp left by a manifest swap interrupted before rename is dead.
        let _ = fs::remove_file(config.dir.join(format!(".{MANIFEST_NAME}.tmp")));
        let mut counters = StoreCounters::default();
        let manifest = match read_manifest(&config.dir)? {
            Some(ids) => ids,
            None => {
                drop(create_segment(&config.dir, 0)?);
                write_manifest(&config.dir, &[0])?;
                vec![0]
            }
        };

        let mut index: HashMap<u64, IndexEntry> = HashMap::new();
        let mut record_bytes_total = 0u64;
        for (pos, &id) in manifest.iter().enumerate() {
            let is_last = pos + 1 == manifest.len();
            let path = segment_path(&config.dir, id);
            let bytes = fs::read(&path).map_err(io_err("read segment", &path))?;
            if let Err(error) = check_segment_header(&bytes) {
                if is_last {
                    // The active segment never got a durable header; it
                    // holds nothing sealed. Reset it to an empty segment.
                    counters.torn_truncations += 1;
                    counters.truncated_bytes += bytes.len() as u64;
                    drop(create_segment(&config.dir, id)?);
                    continue;
                }
                return Err(StoreError::Corrupt {
                    segment: id,
                    offset: 0,
                    error,
                });
            }
            let mut offset = HEADER_LEN as usize;
            while offset < bytes.len() {
                match decode_record(&bytes[offset..]) {
                    Ok((record, used)) => {
                        let entry = IndexEntry {
                            segment: id,
                            offset: offset as u64,
                            len: used as u64,
                            seq: record.seq,
                        };
                        match index.get(&record.session) {
                            Some(existing) if existing.seq > record.seq => {}
                            _ => {
                                index.insert(record.session, entry);
                            }
                        }
                        record_bytes_total += used as u64;
                        offset += used;
                    }
                    Err(error) => {
                        // Torn or garbled tail: everything sealed before it
                        // survives; the tail is discarded. A clean
                        // `Truncated` is the expected crash shape; anything
                        // else means the torn region was also garbled.
                        if !matches!(error, RecordError::Truncated) {
                            counters.decode_rejects += 1;
                        }
                        counters.torn_truncations += 1;
                        counters.truncated_bytes += (bytes.len() - offset) as u64;
                        let file = OpenOptions::new()
                            .write(true)
                            .open(&path)
                            .map_err(io_err("open segment for truncation", &path))?;
                        file.set_len(offset as u64)
                            .map_err(io_err("truncate torn tail", &path))?;
                        file.sync_data().map_err(io_err("sync truncation", &path))?;
                        break;
                    }
                }
            }
        }

        let active_id = *manifest.last().expect("manifest is never empty");
        let active_path = segment_path(&config.dir, active_id);
        let active = OpenOptions::new()
            .append(true)
            .open(&active_path)
            .map_err(io_err("open active segment", &active_path))?;
        let active_len = active
            .metadata()
            .map_err(io_err("stat active segment", &active_path))?
            .len();
        counters.sessions_recovered = index.len() as u64;
        let live_bytes = index.values().map(|e| e.len).sum();
        let injector = config.faults.map(FaultInjector::new);
        Ok(Self {
            config,
            manifest,
            active,
            active_id,
            active_len,
            durable_len: active_len,
            index,
            record_bytes_total,
            live_bytes,
            injector,
            counters,
            crashed: false,
        })
    }

    fn check_alive(&self) -> Result<(), StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed);
        }
        Ok(())
    }

    /// Fsyncs the active segment and advances the durability watermark —
    /// all the way, unless a partial-fsync fault makes the hardware lie.
    fn fsync_active(&mut self) -> Result<(), StoreError> {
        let path = segment_path(&self.config.dir, self.active_id);
        self.active
            .sync_data()
            .map_err(io_err("fsync active segment", &path))?;
        self.counters.fsyncs += 1;
        let pending = (self.active_len - self.durable_len) as usize;
        let lie = self
            .injector
            .as_mut()
            .and_then(|injector| injector.partial_fsync(pending));
        match lie {
            Some(partial) => self.durable_len += partial as u64,
            None => self.durable_len = self.active_len,
        }
        Ok(())
    }

    /// Rotates to a fresh active segment and swaps the manifest.
    fn rotate(&mut self) -> Result<(), StoreError> {
        let id = self.manifest.iter().max().expect("non-empty") + 1;
        let file = create_segment(&self.config.dir, id)?;
        self.manifest.push(id);
        write_manifest(&self.config.dir, &self.manifest)?;
        self.active = file;
        self.active_id = id;
        self.active_len = HEADER_LEN;
        self.durable_len = HEADER_LEN;
        self.counters.rotations += 1;
        Ok(())
    }

    /// Appends `payload` as the next sealed record for `session` and
    /// returns its sequence number. The record is CRC-sealed and fsynced
    /// before this returns: a returned `Ok(seq)` is the write-ahead
    /// acknowledgement — the caller may discard its in-RAM copy.
    ///
    /// # Errors
    /// I/O failures, or [`StoreError::Crashed`] after a simulated crash.
    pub fn append(&mut self, session: u64, payload: &[u8]) -> Result<u64, StoreError> {
        self.check_alive()?;
        let seq = self.index.get(&session).map_or(0, |e| e.seq + 1);
        let record = encode_record(session, seq, payload);
        if self.active_len + record.len() as u64 > self.config.segment_bytes
            && self.active_len > HEADER_LEN
        {
            self.rotate()?;
        }
        let offset = self.active_len;
        let path = segment_path(&self.config.dir, self.active_id);
        self.active
            .write_all(&record)
            .map_err(io_err("append record", &path))?;
        self.active_len += record.len() as u64;
        self.fsync_active()?;
        let len = record.len() as u64;
        let entry = IndexEntry {
            segment: self.active_id,
            offset,
            len,
            seq,
        };
        if let Some(old) = self.index.insert(session, entry) {
            self.live_bytes -= old.len;
        }
        self.live_bytes += len;
        self.record_bytes_total += len;
        self.counters.appends += 1;
        self.counters.append_bytes += len;
        self.maybe_compact()?;
        Ok(seq)
    }

    /// Reads `entry.len` raw bytes at the indexed location, detecting and
    /// retrying injected short reads.
    fn read_entry_bytes(&mut self, entry: IndexEntry) -> Result<Vec<u8>, StoreError> {
        let path = segment_path(&self.config.dir, entry.segment);
        let mut file = File::open(&path).map_err(io_err("open segment for read", &path))?;
        file.seek(SeekFrom::Start(entry.offset))
            .map_err(io_err("seek record", &path))?;
        if let Some(short) = self
            .injector
            .as_mut()
            .and_then(|injector| injector.short_read(entry.len as usize))
        {
            // Transient short read: a prefix arrived; detect, rewind, retry.
            let mut partial = vec![0u8; short];
            file.read_exact(&mut partial)
                .map_err(io_err("short read", &path))?;
            self.counters.short_reads += 1;
            file.seek(SeekFrom::Start(entry.offset))
                .map_err(io_err("seek record retry", &path))?;
        }
        let mut bytes = vec![0u8; entry.len as usize];
        file.read_exact(&mut bytes)
            .map_err(io_err("read record", &path))?;
        Ok(bytes)
    }

    /// Reads the latest sealed payload for `session` (`None` if the
    /// session has never been appended).
    ///
    /// # Errors
    /// I/O failures, [`StoreError::Corrupt`]/[`StoreError::IndexMismatch`]
    /// if the sealed bytes fail verification, or [`StoreError::Crashed`].
    pub fn get(&mut self, session: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.check_alive()?;
        let Some(entry) = self.index.get(&session).copied() else {
            return Ok(None);
        };
        let bytes = self.read_entry_bytes(entry)?;
        match decode_record(&bytes) {
            Ok((record, _)) if record.session == session && record.seq == entry.seq => {
                Ok(Some(record.payload))
            }
            Ok(_) => {
                self.counters.decode_rejects += 1;
                Err(StoreError::IndexMismatch {
                    session,
                    segment: entry.segment,
                    offset: entry.offset,
                })
            }
            Err(error) => {
                self.counters.decode_rejects += 1;
                Err(StoreError::Corrupt {
                    segment: entry.segment,
                    offset: entry.offset,
                    error,
                })
            }
        }
    }

    /// Sessions with a live record, ascending.
    pub fn sessions(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.index.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Latest acknowledged sequence number for `session`.
    pub fn latest_seq(&self, session: u64) -> Option<u64> {
        self.index.get(&session).map(|e| e.seq)
    }

    /// Every sealed record currently on disk, in log order (diagnostic /
    /// test surface; not fault-injected). Stops a segment's scan at the
    /// first undecodable byte, mirroring recovery.
    ///
    /// # Errors
    /// I/O failures or [`StoreError::Crashed`].
    pub fn records(&self) -> Result<Vec<Record>, StoreError> {
        self.check_alive()?;
        let mut out = Vec::new();
        for &id in &self.manifest {
            let path = segment_path(&self.config.dir, id);
            let bytes = fs::read(&path).map_err(io_err("read segment", &path))?;
            if check_segment_header(&bytes).is_err() {
                continue;
            }
            let mut offset = HEADER_LEN as usize;
            while offset < bytes.len() {
                match decode_record(&bytes[offset..]) {
                    Ok((record, used)) => {
                        out.push(record);
                        offset += used;
                    }
                    Err(_) => break,
                }
            }
        }
        Ok(out)
    }

    fn maybe_compact(&mut self) -> Result<(), StoreError> {
        let dead = self.record_bytes_total - self.live_bytes;
        if dead < self.config.compact_min_bytes {
            return Ok(());
        }
        if (dead as f64) < self.config.compact_dead_ratio * self.record_bytes_total as f64 {
            return Ok(());
        }
        self.compact()
    }

    /// Rewrites every live record into one fresh segment, atomically swaps
    /// the manifest to reference only it, and deletes the old segments.
    /// The new segment becomes the active one.
    ///
    /// # Errors
    /// I/O failures or [`StoreError::Crashed`].
    pub fn compact(&mut self) -> Result<(), StoreError> {
        self.check_alive()?;
        let id = self.manifest.iter().max().expect("non-empty") + 1;
        let path = segment_path(&self.config.dir, id);
        let mut file = create_segment(&self.config.dir, id)?;
        let mut sessions: Vec<u64> = self.index.keys().copied().collect();
        sessions.sort_unstable();
        let mut new_index = HashMap::with_capacity(sessions.len());
        let mut offset = HEADER_LEN;
        for session in sessions {
            let entry = self.index[&session];
            // Raw byte copy: the record was CRC-verified when indexed, and
            // its seal travels with it.
            let bytes = self.read_entry_bytes(entry)?;
            file.write_all(&bytes)
                .map_err(io_err("write compacted record", &path))?;
            new_index.insert(
                session,
                IndexEntry {
                    segment: id,
                    offset,
                    len: entry.len,
                    seq: entry.seq,
                },
            );
            offset += entry.len;
        }
        file.sync_data()
            .map_err(io_err("sync compacted segment", &path))?;
        self.counters.fsyncs += 1;
        let old = std::mem::replace(&mut self.manifest, vec![id]);
        write_manifest(&self.config.dir, &self.manifest)?;
        for old_id in old {
            let _ = fs::remove_file(segment_path(&self.config.dir, old_id));
        }
        self.index = new_index;
        self.active = file;
        self.active_id = id;
        self.active_len = offset;
        self.durable_len = offset;
        self.record_bytes_total = offset - HEADER_LEN;
        self.live_bytes = offset - HEADER_LEN;
        self.counters.compactions += 1;
        Ok(())
    }

    /// Point-in-time counters (monotone event counts plus current log
    /// shape).
    pub fn counters(&self) -> StoreCounters {
        let mut c = self.counters;
        c.segments = self.manifest.len() as u64;
        c.live_records = self.index.len() as u64;
        c.dead_bytes = self.record_bytes_total - self.live_bytes;
        c
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Simulates power loss at this instant: everything past the durable
    /// watermark of the active segment is rewritten as whatever the fault
    /// model says survives (torn prefix, possibly with a flipped bit).
    /// Without file faults the non-durable suffix is dropped entirely —
    /// the conservative reading of "fsync did not return".
    ///
    /// After this call the in-memory state no longer matches disk; every
    /// further operation fails with [`StoreError::Crashed`]. Reopen the
    /// directory to recover.
    ///
    /// # Errors
    /// I/O failures or [`StoreError::Crashed`] if already crashed.
    pub fn simulate_crash(&mut self) -> Result<(), StoreError> {
        self.check_alive()?;
        self.crashed = true;
        let path = segment_path(&self.config.dir, self.active_id);
        let mut tail = Vec::new();
        if self.active_len > self.durable_len {
            let mut file = File::open(&path).map_err(io_err("open segment for crash", &path))?;
            file.seek(SeekFrom::Start(self.durable_len))
                .map_err(io_err("seek crash tail", &path))?;
            tail = vec![0u8; (self.active_len - self.durable_len) as usize];
            file.read_exact(&mut tail)
                .map_err(io_err("read crash tail", &path))?;
            if let Some(injector) = self.injector.as_mut() {
                injector.crash_damage(&mut tail);
            } else {
                tail.clear();
            }
        }
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(io_err("open segment for crash rewrite", &path))?;
        file.set_len(self.durable_len)
            .map_err(io_err("drop non-durable tail", &path))?;
        let mut file = file;
        file.seek(SeekFrom::Start(self.durable_len))
            .map_err(io_err("seek crash rewrite", &path))?;
        file.write_all(&tail)
            .map_err(io_err("write surviving tail", &path))?;
        file.sync_data()
            .map_err(io_err("sync crash rewrite", &path))?;
        Ok(())
    }
}

/// Clonable, thread-safe handle to one [`SessionStore`], shared between
/// shard workers and the engine. Lock poisoning is tolerated: the store's
/// on-disk state is always consistent (records seal atomically), so a
/// panicking peer does not invalidate it.
#[derive(Clone, Debug)]
pub struct SharedStore {
    inner: Arc<Mutex<SessionStore>>,
}

impl SharedStore {
    /// Wraps an already-open store.
    pub fn new(store: SessionStore) -> Self {
        Self {
            inner: Arc::new(Mutex::new(store)),
        }
    }

    /// Opens the store at `config.dir` and wraps it.
    ///
    /// # Errors
    /// Same as [`SessionStore::open`].
    pub fn open(config: StoreConfig) -> Result<Self, StoreError> {
        SessionStore::open(config).map(Self::new)
    }

    fn lock(&self) -> MutexGuard<'_, SessionStore> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// See [`SessionStore::append`].
    ///
    /// # Errors
    /// Same as [`SessionStore::append`].
    pub fn append(&self, session: u64, payload: &[u8]) -> Result<u64, StoreError> {
        self.lock().append(session, payload)
    }

    /// See [`SessionStore::get`].
    ///
    /// # Errors
    /// Same as [`SessionStore::get`].
    pub fn get(&self, session: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.lock().get(session)
    }

    /// See [`SessionStore::sessions`].
    pub fn sessions(&self) -> Vec<u64> {
        self.lock().sessions()
    }

    /// See [`SessionStore::latest_seq`].
    pub fn latest_seq(&self, session: u64) -> Option<u64> {
        self.lock().latest_seq(session)
    }

    /// See [`SessionStore::records`].
    ///
    /// # Errors
    /// Same as [`SessionStore::records`].
    pub fn records(&self) -> Result<Vec<Record>, StoreError> {
        self.lock().records()
    }

    /// See [`SessionStore::compact`].
    ///
    /// # Errors
    /// Same as [`SessionStore::compact`].
    pub fn compact(&self) -> Result<(), StoreError> {
        self.lock().compact()
    }

    /// See [`SessionStore::counters`].
    pub fn counters(&self) -> StoreCounters {
        self.lock().counters()
    }

    /// See [`SessionStore::simulate_crash`].
    ///
    /// # Errors
    /// Same as [`SessionStore::simulate_crash`].
    pub fn simulate_crash(&self) -> Result<(), StoreError> {
        self.lock().simulate_crash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_faults::FileFaultModel;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chameleon-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_config(dir: &Path) -> StoreConfig {
        StoreConfig {
            segment_bytes: 256,
            compact_min_bytes: 512,
            compact_dead_ratio: 0.5,
            ..StoreConfig::new(dir)
        }
    }

    #[test]
    fn append_get_roundtrip_with_monotone_seq() {
        let dir = scratch("roundtrip");
        let mut store = SessionStore::open(StoreConfig::new(&dir)).expect("open");
        assert_eq!(store.append(7, b"alpha").expect("append"), 0);
        assert_eq!(store.append(7, b"beta").expect("append"), 1);
        assert_eq!(store.append(9, b"gamma").expect("append"), 0);
        assert_eq!(store.get(7).expect("get"), Some(b"beta".to_vec()));
        assert_eq!(store.get(9).expect("get"), Some(b"gamma".to_vec()));
        assert_eq!(store.get(1).expect("get"), None);
        assert_eq!(store.sessions(), vec![7, 9]);
        let c = store.counters();
        assert_eq!(c.appends, 3);
        assert_eq!(c.fsyncs, 3);
        assert_eq!(c.live_records, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_rebuilds_the_index() {
        let dir = scratch("reopen");
        {
            let mut store = SessionStore::open(StoreConfig::new(&dir)).expect("open");
            store.append(1, b"one-a").expect("append");
            store.append(2, b"two").expect("append");
            store.append(1, b"one-b").expect("append");
        }
        let mut store = SessionStore::open(StoreConfig::new(&dir)).expect("reopen");
        assert_eq!(store.counters().sessions_recovered, 2);
        assert_eq!(store.get(1).expect("get"), Some(b"one-b".to_vec()));
        assert_eq!(store.latest_seq(1), Some(1));
        assert_eq!(store.get(2).expect("get"), Some(b"two".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = scratch("torn");
        {
            let mut store = SessionStore::open(StoreConfig::new(&dir)).expect("open");
            store.append(1, b"sealed").expect("append");
        }
        // A crash mid-append: half a record's worth of garbage at the tail.
        let path = segment_path(&dir, 0);
        let mut file = OpenOptions::new().append(true).open(&path).expect("open");
        file.write_all(&[0xAB; 11]).expect("tear");
        drop(file);
        let before = fs::metadata(&path).expect("stat").len();

        let mut store = SessionStore::open(StoreConfig::new(&dir)).expect("recover");
        let c = store.counters();
        assert_eq!(c.torn_truncations, 1);
        assert_eq!(c.truncated_bytes, 11);
        assert_eq!(c.sessions_recovered, 1);
        assert_eq!(store.get(1).expect("get"), Some(b"sealed".to_vec()));
        assert_eq!(fs::metadata(&path).expect("stat").len(), before - 11);
        // The log keeps working after repair.
        assert_eq!(store.append(1, b"after").expect("append"), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let dir = scratch("rotate");
        let mut store = SessionStore::open(tiny_config(&dir)).expect("open");
        for round in 0..12u64 {
            store.append(round % 4, &[round as u8; 64]).expect("append");
        }
        let c = store.counters();
        assert!(c.rotations > 0, "{c:?}");
        assert!(c.segments > 1, "{c:?}");
        for session in 0..4u64 {
            assert!(store.get(session).expect("get").is_some());
        }
        // Reopen sees the same sessions through the multi-segment manifest.
        drop(store);
        let store = SessionStore::open(tiny_config(&dir)).expect("reopen");
        assert_eq!(store.sessions(), vec![0, 1, 2, 3]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_rewrites_live_records_and_drops_dead_ones() {
        let dir = scratch("compact");
        let mut store = SessionStore::open(tiny_config(&dir)).expect("open");
        for round in 0..40u64 {
            store.append(round % 2, &[round as u8; 48]).expect("append");
        }
        let c = store.counters();
        assert!(c.compactions > 0, "compaction never triggered: {c:?}");
        assert!(
            c.dead_bytes < 512 + 2 * (48 + 24),
            "dead bytes not reclaimed: {c:?}"
        );
        assert_eq!(store.get(0).expect("get"), Some(vec![38u8; 48]));
        assert_eq!(store.get(1).expect("get"), Some(vec![39u8; 48]));
        assert_eq!(store.latest_seq(0), Some(19));
        // Old segment files are gone from disk, not just the manifest.
        let files = fs::read_dir(&dir).expect("dir").count();
        let expected = store.counters().segments as usize + 1; // + MANIFEST
        assert_eq!(files, expected);
        drop(store);
        let mut store = SessionStore::open(tiny_config(&dir)).expect("reopen");
        assert_eq!(store.get(0).expect("get"), Some(vec![38u8; 48]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_without_faults_keeps_everything_acknowledged() {
        let dir = scratch("crash-clean");
        let mut store = SessionStore::open(StoreConfig::new(&dir)).expect("open");
        store.append(3, b"survives").expect("append");
        store.simulate_crash().expect("crash");
        assert_eq!(store.append(3, b"x").unwrap_err(), StoreError::Crashed);
        assert_eq!(store.get(3).unwrap_err(), StoreError::Crashed);
        drop(store);
        let mut store = SessionStore::open(StoreConfig::new(&dir)).expect("recover");
        assert_eq!(store.get(3).expect("get"), Some(b"survives".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_with_lying_fsyncs_recovers_to_the_durable_prefix() {
        let dir = scratch("crash-faulty");
        let plan = FaultPlan::file_faults(
            41,
            FileFaultModel {
                torn_write_prob: 0.8,
                partial_fsync_prob: 0.9,
                short_read_prob: 0.0,
                bit_flip_prob: 0.6,
            },
        );
        let config = StoreConfig {
            faults: Some(plan),
            ..StoreConfig::new(&dir)
        };
        let mut store = SessionStore::open(config.clone()).expect("open");
        let mut acked = Vec::new();
        for round in 0..30u64 {
            let payload = vec![round as u8; 100];
            let seq = store.append(round % 5, &payload).expect("append");
            acked.push((round % 5, seq, payload));
        }
        store.simulate_crash().expect("crash");
        drop(store);

        // Reopen WITHOUT faults: recovery itself runs on honest I/O here.
        let mut store = SessionStore::open(StoreConfig::new(&dir)).expect("recover");
        // Whatever survived must be a sealed prefix of what was acked:
        // every indexed record decodes to exactly the payload acked at
        // that (session, seq).
        for session in store.sessions() {
            let seq = store.latest_seq(session).expect("indexed");
            let payload = store.get(session).expect("get").expect("payload");
            let acked_payload = acked
                .iter()
                .find(|(s, q, _)| *s == session && *q == seq)
                .map(|(_, _, p)| p.clone())
                .expect("recovered record was never acknowledged");
            assert_eq!(payload, acked_payload, "session {session} seq {seq}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_reads_are_detected_and_retried() {
        let dir = scratch("short-read");
        let plan = FaultPlan::file_faults(
            17,
            FileFaultModel {
                torn_write_prob: 0.0,
                partial_fsync_prob: 0.0,
                short_read_prob: 1.0,
                bit_flip_prob: 0.0,
            },
        );
        let config = StoreConfig {
            faults: Some(plan),
            ..StoreConfig::new(&dir)
        };
        let mut store = SessionStore::open(config).expect("open");
        store
            .append(1, b"readable despite short reads")
            .expect("append");
        for _ in 0..10 {
            assert_eq!(
                store.get(1).expect("get"),
                Some(b"readable despite short reads".to_vec())
            );
        }
        assert_eq!(store.counters().short_reads, 10);
        assert_eq!(store.counters().decode_rejects, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_store_is_clonable_and_consistent() {
        let dir = scratch("shared");
        let store = SharedStore::open(StoreConfig::new(&dir)).expect("open");
        let clone = store.clone();
        clone.append(5, b"via clone").expect("append");
        assert_eq!(store.get(5).expect("get"), Some(b"via clone".to_vec()));
        assert_eq!(store.counters().appends, 1);
        fs::remove_dir_all(&dir).ok();
    }
}
