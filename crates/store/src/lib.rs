//! Durable log-structured session store for the Chameleon fleet.
//!
//! The north star is millions of resident users, but a learner whose
//! state lives only in RAM loses all continual-learning progress at the
//! first power cycle — the opposite of what an edge deployment needs.
//! This crate persists the fleet's unit of session state, the `CHAMFLT1`
//! checkpoint blob, in an append-only segment log:
//!
//! * **Segments** — files opening with the `"CHAMSEG1"` magic followed by
//!   length-prefixed, CRC32-sealed records carrying `(session, seq,
//!   payload)`. Records are immutable once written; updates append a
//!   higher sequence number.
//! * **Write-ahead discipline** — [`SessionStore::append`] seals the
//!   record and fsyncs it *before* returning: the returned sequence
//!   number is the durability acknowledgement the fleet's eviction path
//!   waits on before dropping its in-RAM copy.
//! * **Index** — an in-memory map from session to its latest sealed
//!   record, rebuilt on open by scanning the manifest's segments. A torn
//!   tail (crash mid-append) is truncated away; everything sealed before
//!   it survives.
//! * **Compaction** — once superseded records dominate the log, live
//!   records are rewritten into a fresh segment and the `MANIFEST` is
//!   swapped atomically (temp file, fsync, rename, directory fsync).
//!
//! Storage failure modes are injectable through `chameleon-faults`
//! ([`chameleon_faults::FileFaultModel`]): lying partial fsyncs, torn
//! writes and tail bit flips at simulated power loss
//! ([`SessionStore::simulate_crash`]), and transient short reads — so
//! crash schedules are seeded, replayable, and explorable by
//! `chameleon-simtest`.
//!
//! # Example
//!
//! ```no_run
//! use chameleon_store::{SessionStore, StoreConfig};
//!
//! let mut store = SessionStore::open(StoreConfig::new("/tmp/sessions")).unwrap();
//! let seq = store.append(42, b"checkpoint blob").unwrap();
//! assert_eq!(seq, 0);
//! // ...crash, restart...
//! let mut store = SessionStore::open(StoreConfig::new("/tmp/sessions")).unwrap();
//! assert_eq!(store.get(42).unwrap(), Some(b"checkpoint blob".to_vec()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod segment;
mod store;

pub use segment::{
    check_segment_header, decode_record, encode_record, Record, RecordError, MAX_RECORD_BYTES,
    RECORD_FRAME_BYTES, RECORD_HEADER_BYTES, SEGMENT_MAGIC,
};
pub use store::{SessionStore, SharedStore, StoreConfig, StoreCounters, StoreError};
