//! Serving-layer metrics: per-server counters and a log₂ latency
//! histogram, kept as atomics on the hot path and snapshotted into plain
//! structs for the wire and for reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of histogram buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is a catch-all.
pub const LATENCY_BUCKETS: usize = 20;

/// A power-of-two-microsecond latency histogram (bucket 0 is `< 2 µs`,
/// the last bucket absorbs everything from `2^19 µs` ≈ 0.5 s up).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Counts per bucket.
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Records one observation, in nanoseconds.
    pub fn record_nanos(&mut self, nanos: u64) {
        let micros = nanos / 1_000;
        let index = (64 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[index] += 1;
    }

    /// Records one observation.
    pub fn record(&mut self, elapsed: Duration) {
        self.record_nanos(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), or 0 when empty. Bucket resolution, not exact.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return 1u64 << i;
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }
}

/// Plain-struct snapshot of a server's counters, shipped inside
/// [`crate::wire::StatsSnapshot`] and printed by the CLI.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Connections the acceptor admitted.
    pub connections_accepted: u64,
    /// Connections fully closed (handled to completion, reaped idle, or
    /// turned away by the saturated acceptor).
    pub connections_closed: u64,
    /// CRC-valid frames read.
    pub frames_in: u64,
    /// Frames written.
    pub frames_out: u64,
    /// Bytes read off sockets (payloads plus framing overhead).
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Frames or payloads rejected by the decoder (bad magic, bad CRC,
    /// oversized prefix, malformed body).
    pub decode_rejects: u64,
    /// `RetryAfter` replies sent (fleet backpressure surfaced to clients,
    /// plus turn-aways from a saturated acceptor).
    pub backpressure_replies: u64,
    /// Requests answered with a success response.
    pub requests_ok: u64,
    /// Requests answered with a typed error.
    pub requests_failed: u64,
    /// End-to-end request latency (decode → response written).
    pub latency: LatencyHistogram,
}

/// Shared, thread-safe counter block the acceptor, connection workers, and
/// engine thread all update.
#[derive(Debug, Default)]
pub(crate) struct ServeMetrics {
    pub connections_accepted: AtomicU64,
    pub connections_closed: AtomicU64,
    pub frames_in: AtomicU64,
    pub frames_out: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    pub decode_rejects: AtomicU64,
    pub backpressure_replies: AtomicU64,
    pub requests_ok: AtomicU64,
    pub requests_failed: AtomicU64,
    pub latency: Mutex<LatencyHistogram>,
}

impl ServeMetrics {
    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn record_latency(&self, elapsed: Duration) {
        if let Ok(mut histogram) = self.latency.lock() {
            histogram.record(elapsed);
        }
    }

    pub(crate) fn snapshot(&self) -> ServeCounters {
        ServeCounters {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            decode_rejects: self.decode_rejects.load(Ordering::Relaxed),
            backpressure_replies: self.backpressure_replies.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            latency: self.latency.lock().map(|h| h.clone()).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let mut h = LatencyHistogram::default();
        h.record_nanos(500); // <1 µs → bucket 0
        h.record_nanos(1_000); // 1 µs → bucket 1
        h.record_nanos(3_000); // 3 µs → bucket 2
        h.record_nanos(1_000_000); // 1 ms → bucket 10
        h.record_nanos(u64::MAX); // clamped to the catch-all
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[LATENCY_BUCKETS - 1], 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile_upper_us(0.5), 0);
        for _ in 0..98 {
            h.record_nanos(2_000); // bucket 2 (2 µs)
        }
        h.record_nanos(40_000_000); // 40 ms
        h.record_nanos(40_000_000);
        assert_eq!(h.quantile_upper_us(0.5), 4);
        assert!(h.quantile_upper_us(0.999) >= 32_768);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record_nanos(1_000);
        b.record_nanos(1_000);
        b.record_nanos(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }
}
