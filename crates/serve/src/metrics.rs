//! Serving-layer metrics: per-server counters and a log₂ latency
//! histogram, kept as atomics on the hot path and snapshotted into plain
//! structs for the wire and for reports.
//!
//! The histogram itself lives in `chameleon-obs` (one bucketing rule for
//! request latencies and span aggregates alike) and is re-exported here
//! for wire and client code.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

pub use chameleon_obs::{LatencyHistogram, LATENCY_BUCKETS};

/// Plain-struct snapshot of a server's counters, shipped inside
/// [`crate::wire::StatsSnapshot`] and printed by the CLI.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Connections the acceptor admitted.
    pub connections_accepted: u64,
    /// Connections fully closed (handled to completion, reaped idle, or
    /// turned away by the saturated acceptor).
    pub connections_closed: u64,
    /// CRC-valid frames read.
    pub frames_in: u64,
    /// Frames written.
    pub frames_out: u64,
    /// Bytes read off sockets (payloads plus framing overhead).
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Frames or payloads rejected by the decoder (bad magic, bad CRC,
    /// oversized prefix, malformed body).
    pub decode_rejects: u64,
    /// `RetryAfter` replies sent (fleet backpressure surfaced to clients,
    /// plus turn-aways from a saturated acceptor).
    pub backpressure_replies: u64,
    /// Requests answered with a success response.
    pub requests_ok: u64,
    /// Requests answered with a typed error.
    pub requests_failed: u64,
    /// End-to-end request latency (decode → response written).
    pub latency: LatencyHistogram,
}

/// Shared, thread-safe counter block the acceptor, connection workers, and
/// engine thread all update.
#[derive(Debug, Default)]
pub(crate) struct ServeMetrics {
    pub connections_accepted: AtomicU64,
    pub connections_closed: AtomicU64,
    pub frames_in: AtomicU64,
    pub frames_out: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    pub decode_rejects: AtomicU64,
    pub backpressure_replies: AtomicU64,
    pub requests_ok: AtomicU64,
    pub requests_failed: AtomicU64,
    pub latency: Mutex<LatencyHistogram>,
}

impl ServeMetrics {
    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn record_latency(&self, elapsed: Duration) {
        if let Ok(mut histogram) = self.latency.lock() {
            histogram.record(elapsed);
        }
    }

    pub(crate) fn snapshot(&self) -> ServeCounters {
        ServeCounters {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            decode_rejects: self.decode_rejects.load(Ordering::Relaxed),
            backpressure_replies: self.backpressure_replies.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            latency: self.latency.lock().map(|h| h.clone()).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The histogram's own boundary/quantile/merge tests live with its
    // implementation in `chameleon-obs`; here we only pin that the
    // serving layer records end-to-end latencies through the shared
    // (fixed) bucketing rule.
    #[test]
    fn record_latency_uses_the_shared_log2_mapping() {
        let metrics = ServeMetrics::default();
        metrics.record_latency(Duration::from_micros(1)); // bucket 0: < 2 µs
        metrics.record_latency(Duration::from_micros(2)); // bucket 1: [2, 4) µs
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.latency.buckets[0], 1);
        assert_eq!(snapshot.latency.buckets[1], 1);
        assert_eq!(snapshot.latency.count(), 2);
        const { assert!(LATENCY_BUCKETS >= 2) };
    }
}
